#!/usr/bin/env bash
# Black-box smoke test for the query service: starts a real ebi_serve
# process, fires concurrent mixed-protocol traffic from both frontends,
# asserts the two protocols answer bit-identically and deterministically,
# checks /metrics parses, exercises every /debug/* telemetry endpoint
# (trace ring, slow log, Chrome export, vars) plus trace propagation,
# validates the structured JSONL log and trace dumps against their
# schemas, then exercises graceful shutdown with requests still in
# flight. Run from the workspace root (CI: service-smoke job).
set -euo pipefail

BIN=./target/release/ebi_serve
if [ ! -x "$BIN" ]; then
  cargo build --release -p ebi-service --bin ebi_serve
fi

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Force the fan-out path even for this small table so the smoke
# exercises the worker pool, not just the serial fallback. A 0ms slow
# threshold classifies every query slow (worst-case tail-sampling), and
# EBI_LOG routes the structured JSONL log to a file we validate below.
EBI_SERVICE_MIN_DISPATCH_WORDS=0 EBI_SLOW_QUERY_MS=0 \
  EBI_LOG="$workdir/service_log.jsonl" EBI_LOG_LEVEL=debug \
  "$BIN" --rows 20000 --shards 5 --max-inflight 6 >"$workdir/stdout" 2>"$workdir/stderr" &
pid=$!

# Wait for the machine-parseable ready line.
ready=""
for _ in $(seq 1 100); do
  ready=$(grep -m1 '^EBI_SERVICE ' "$workdir/stdout" || true)
  [ -n "$ready" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died during startup"; cat "$workdir/stderr"; exit 1; }
  sleep 0.1
done
[ -n "$ready" ] || { echo "server never printed its ready line"; cat "$workdir/stderr"; exit 1; }

tcp=${ready#*tcp=}; tcp=${tcp%% *}
http=${ready#*http=}
echo "service up: tcp=$tcp http=$http"

python3 - "$tcp" "$http" "$workdir" <<'PYEOF'
import json
import os
import re
import socket
import sys
import threading
import urllib.request
import urllib.parse

tcp_host, tcp_port = sys.argv[1].rsplit(":", 1)
http_base = f"http://{sys.argv[2]}"
workdir = sys.argv[3]

QUERIES = [
    "a=1",
    "a=0 AND b=1",
    "a IN 1,3,5 OR c IN 0,2",
    "c BETWEEN 1 9 AND b BETWEEN 0 4",
    "b=0 OR a=2 AND c=3",
]


def tcp_line(line):
    with socket.create_connection((tcp_host, int(tcp_port)), timeout=10) as s:
        s.sendall((line + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return buf.decode().rstrip("\n")


def http_get(path, ok_codes=(200,)):
    try:
        with urllib.request.urlopen(http_base + path, timeout=10) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        assert e.code in ok_codes, f"{path}: HTTP {e.code}"
        return e.code, e.read().decode()


def tcp_answer(query):
    resp = tcp_line(f"QUERY {query} LIMIT 25")
    assert resp.startswith("OK {"), f"TCP refused {query!r}: {resp}"
    return json.loads(resp[3:])


def http_answer(query):
    q = urllib.parse.quote(query)
    status, body = http_get(f"/query?q={q}&limit=25")
    assert status == 200, f"HTTP refused {query!r}: {body}"
    return json.loads(body)


# --- concurrent mixed-protocol storm, both frontends, checked answers ---
reference = {}
for query in QUERIES:
    t = tcp_answer(query)
    h = http_answer(query)
    assert t["matches"] == h["matches"], f"{query!r}: TCP {t['matches']} != HTTP {h['matches']}"
    assert t["rows"] == h["rows"], f"{query!r}: row lists diverge between protocols"
    reference[query] = (t["matches"], t["rows"])

errors = []


def worker(proto, n):
    try:
        for i in range(n):
            query = QUERIES[i % len(QUERIES)]
            want_matches, want_rows = reference[query]
            a = tcp_answer(query) if proto == "tcp" else http_answer(query)
            assert a["matches"] == want_matches, f"{proto} {query!r}: matches drifted"
            assert a["rows"] == want_rows, f"{proto} {query!r}: rows drifted"
    except Exception as e:  # noqa: BLE001 - collected and reported below
        errors.append(f"{proto}: {e}")


threads = [threading.Thread(target=worker, args=(p, 25)) for p in ("tcp", "http") for _ in range(3)]
for t in threads:
    t.start()
for t in threads:
    t.join()
assert not errors, "concurrent storm failed: " + "; ".join(errors)
print(f"mixed-protocol storm ok: {len(threads)} clients x 25 requests, answers stable")

# --- protocol odds and ends ---
assert tcp_line("PING") == "PONG"
assert tcp_line("COUNT nosuch=1").startswith("ERR")
status, _ = http_get("/nosuch", ok_codes=(404,))
assert status == 404
explain = tcp_line(f"EXPLAIN {QUERIES[1]}")
assert "eval.worker" in explain, f"EXPLAIN lost the per-shard spans: {explain[:200]}"
stats = json.loads(tcp_line("STATS")[3:])
assert stats["shards"] == 5 and stats["max_inflight"] == 6

# --- telemetry: trace propagation + every /debug/* endpoint ---
TP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
TRACE32 = "4bf92f3577b34da6a3ce929d0e0e4736"

resp = tcp_line(f"TRACEPARENT {TP} COUNT {QUERIES[0]}")
assert resp.startswith("OK {"), f"traceparent request refused: {resp}"
echoed = json.loads(resp[3:])["trace"]
assert echoed.startswith(f"00-{TRACE32}-"), f"TCP did not adopt the inbound trace: {echoed}"

req = urllib.request.Request(http_base + "/count?q=" + urllib.parse.quote(QUERIES[0]))
req.add_header("traceparent", TP)
with urllib.request.urlopen(req, timeout=10) as r:
    hdr = r.headers.get("traceparent", "")
    assert hdr.startswith(f"00-{TRACE32}-"), f"HTTP echo missing/wrong: {hdr!r}"
    assert json.loads(r.read().decode())["trace"] == hdr

status, traces = http_get("/debug/traces")
assert status == 200
trace_lines = [json.loads(l) for l in traces.splitlines() if l.strip()]
assert trace_lines, "/debug/traces is empty"
for doc in trace_lines:
    assert doc["schema"] == "ebi.trace.v1", doc
    assert re.fullmatch(r"[0-9a-f]{32}", doc["trace"]), doc["trace"]
    assert doc["report"]["schema"] == "ebi.query_report.v1", doc
assert any(d["trace"] == TRACE32 for d in trace_lines), "inbound trace not retained"

status, slow = http_get("/debug/slow")
assert status == 200
slow_lines = [json.loads(l) for l in slow.splitlines() if l.strip()]
assert slow_lines, "/debug/slow empty despite EBI_SLOW_QUERY_MS=0"
assert all(d["slow"] for d in slow_lines)

status, chrome = http_get(f"/debug/trace/{TRACE32}")
assert status == 200
chrome_doc = json.loads(chrome)
names = {e.get("name") for e in chrome_doc["traceEvents"]}
assert "eval.worker" in names, f"Chrome export lost worker spans: {sorted(names)[:10]}"
status, _ = http_get("/debug/trace/ffffffffffffffffffffffffffffffff", ok_codes=(404,))
assert status == 404

status, vars_body = http_get("/debug/vars")
assert status == 200
vars_doc = json.loads(vars_body)
for key in ("uptime_ms", "served", "slow_queries", "traces_recorded", "metrics"):
    assert key in vars_doc, f"/debug/vars missing {key}"
assert vars_doc["slow_queries"] > 0

with socket.create_connection((tcp_host, int(tcp_port)), timeout=10) as s:
    s.sendall(b"TRACES 3\n")
    buf = b""
    while not buf.rstrip(b"\n").endswith(b"\n.") and not buf.startswith(b"ERR"):
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
page = buf.decode().splitlines()
n = int(page[0].split()[1])
body = [l for l in page[1:] if l and l != "."]
assert n == len(body) == 3, f"TRACES paging broken: head={page[0]!r} body={len(body)}"
for line in body:
    assert json.loads(line)["schema"] == "ebi.trace.v1"
print(f"telemetry ok: {len(trace_lines)} traces, {len(slow_lines)} slow, chrome export loads")

with open(os.path.join(workdir, "service_traces.jsonl"), "w", encoding="utf-8") as f:
    f.write(traces)

# --- stats parity between frontends, with the telemetry counters ---
tcp_stats = json.loads(tcp_line("STATS")[3:])
_, http_stats_body = http_get("/stats")
http_stats = json.loads(http_stats_body)
assert set(tcp_stats) == set(http_stats), (
    f"stats schemas diverged: {sorted(set(tcp_stats) ^ set(http_stats))}"
)
for key in ("uptime_ms", "inflight", "rejected_busy", "rejected_draining", "slow_queries"):
    assert key in tcp_stats, f"STATS missing {key}"
print("stats parity ok:", sorted(tcp_stats))

# --- /metrics must parse as Prometheus text ---
status, metrics = http_get("/metrics")
assert status == 200
assert "ebi_service_requests_total" in metrics
assert 'ebi_service_shard_evals_total{shard="0"}' in metrics, "per-shard counters missing"
assert "ebi_service_request_ns_bucket" in metrics
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    float(line.rsplit(" ", 1)[1])
print("metrics ok:", sum(1 for l in metrics.splitlines() if l and not l.startswith("#")), "samples")

# --- graceful shutdown with requests in flight ---
def storm():
    for i in range(60):
        try:
            resp = tcp_line(f"COUNT {QUERIES[i % len(QUERIES)]}")
        except OSError:
            break  # listener gone: drain finished
        assert (
            resp.startswith("OK {") or resp == "BUSY"
            or resp.startswith("ERR draining") or resp == ""
        ), f"torn response during drain: {resp!r}"


stormers = [threading.Thread(target=storm) for _ in range(3)]
for t in stormers:
    t.start()
req = urllib.request.Request(http_base + "/shutdown", data=b"", method="POST")
with urllib.request.urlopen(req, timeout=10) as r:
    body = r.read().decode()
    assert "draining" in body, f"shutdown answered: {body}"
for t in stormers:
    t.join()
print("graceful shutdown ok: drain acknowledged mid-storm, no torn responses")
PYEOF

# The server must exit cleanly and report its drain summary.
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "server did not exit after drain"; exit 1
fi
wait "$pid"
grep -q '"msg":"service drained"' "$workdir/service_log.jsonl" || {
  echo "missing drain summary in structured log"; cat "$workdir/service_log.jsonl"; exit 1;
}

# The structured log and the trace dump must validate against their
# schemas (ebi.log.v1 / ebi.trace.v1 with embedded query reports).
python3 scripts/validate_obs_schema.py "$workdir/service_log.jsonl"
python3 scripts/validate_obs_schema.py "$workdir/service_traces.jsonl"
echo "service smoke passed: $(grep '"msg":"service drained"' "$workdir/service_log.jsonl")"
