#!/usr/bin/env bash
# Black-box smoke test for the query service: starts a real ebi_serve
# process, fires concurrent mixed-protocol traffic from both frontends,
# asserts the two protocols answer bit-identically and deterministically,
# checks /metrics parses, then exercises graceful shutdown with requests
# still in flight. Run from the workspace root (CI: service-smoke job).
set -euo pipefail

BIN=./target/release/ebi_serve
if [ ! -x "$BIN" ]; then
  cargo build --release -p ebi-service --bin ebi_serve
fi

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Force the fan-out path even for this small table so the smoke
# exercises the worker pool, not just the serial fallback.
EBI_SERVICE_MIN_DISPATCH_WORDS=0 \
  "$BIN" --rows 20000 --shards 5 --max-inflight 6 >"$workdir/stdout" 2>"$workdir/stderr" &
pid=$!

# Wait for the machine-parseable ready line.
ready=""
for _ in $(seq 1 100); do
  ready=$(grep -m1 '^EBI_SERVICE ' "$workdir/stdout" || true)
  [ -n "$ready" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died during startup"; cat "$workdir/stderr"; exit 1; }
  sleep 0.1
done
[ -n "$ready" ] || { echo "server never printed its ready line"; cat "$workdir/stderr"; exit 1; }

tcp=${ready#*tcp=}; tcp=${tcp%% *}
http=${ready#*http=}
echo "service up: tcp=$tcp http=$http"

python3 - "$tcp" "$http" <<'PYEOF'
import json
import socket
import sys
import threading
import urllib.request
import urllib.parse

tcp_host, tcp_port = sys.argv[1].rsplit(":", 1)
http_base = f"http://{sys.argv[2]}"

QUERIES = [
    "a=1",
    "a=0 AND b=1",
    "a IN 1,3,5 OR c IN 0,2",
    "c BETWEEN 1 9 AND b BETWEEN 0 4",
    "b=0 OR a=2 AND c=3",
]


def tcp_line(line):
    with socket.create_connection((tcp_host, int(tcp_port)), timeout=10) as s:
        s.sendall((line + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return buf.decode().rstrip("\n")


def http_get(path, ok_codes=(200,)):
    try:
        with urllib.request.urlopen(http_base + path, timeout=10) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        assert e.code in ok_codes, f"{path}: HTTP {e.code}"
        return e.code, e.read().decode()


def tcp_answer(query):
    resp = tcp_line(f"QUERY {query} LIMIT 25")
    assert resp.startswith("OK {"), f"TCP refused {query!r}: {resp}"
    return json.loads(resp[3:])


def http_answer(query):
    q = urllib.parse.quote(query)
    status, body = http_get(f"/query?q={q}&limit=25")
    assert status == 200, f"HTTP refused {query!r}: {body}"
    return json.loads(body)


# --- concurrent mixed-protocol storm, both frontends, checked answers ---
reference = {}
for query in QUERIES:
    t = tcp_answer(query)
    h = http_answer(query)
    assert t["matches"] == h["matches"], f"{query!r}: TCP {t['matches']} != HTTP {h['matches']}"
    assert t["rows"] == h["rows"], f"{query!r}: row lists diverge between protocols"
    reference[query] = (t["matches"], t["rows"])

errors = []


def worker(proto, n):
    try:
        for i in range(n):
            query = QUERIES[i % len(QUERIES)]
            want_matches, want_rows = reference[query]
            a = tcp_answer(query) if proto == "tcp" else http_answer(query)
            assert a["matches"] == want_matches, f"{proto} {query!r}: matches drifted"
            assert a["rows"] == want_rows, f"{proto} {query!r}: rows drifted"
    except Exception as e:  # noqa: BLE001 - collected and reported below
        errors.append(f"{proto}: {e}")


threads = [threading.Thread(target=worker, args=(p, 25)) for p in ("tcp", "http") for _ in range(3)]
for t in threads:
    t.start()
for t in threads:
    t.join()
assert not errors, "concurrent storm failed: " + "; ".join(errors)
print(f"mixed-protocol storm ok: {len(threads)} clients x 25 requests, answers stable")

# --- protocol odds and ends ---
assert tcp_line("PING") == "PONG"
assert tcp_line("COUNT nosuch=1").startswith("ERR")
status, _ = http_get("/nosuch", ok_codes=(404,))
assert status == 404
explain = tcp_line(f"EXPLAIN {QUERIES[1]}")
assert "eval.worker" in explain, f"EXPLAIN lost the per-shard spans: {explain[:200]}"
stats = json.loads(tcp_line("STATS")[3:])
assert stats["shards"] == 5 and stats["max_inflight"] == 6

# --- /metrics must parse as Prometheus text ---
status, metrics = http_get("/metrics")
assert status == 200
assert "ebi_service_requests_total" in metrics
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    float(line.rsplit(" ", 1)[1])
print("metrics ok:", sum(1 for l in metrics.splitlines() if l and not l.startswith("#")), "samples")

# --- graceful shutdown with requests in flight ---
def storm():
    for i in range(60):
        try:
            resp = tcp_line(f"COUNT {QUERIES[i % len(QUERIES)]}")
        except OSError:
            break  # listener gone: drain finished
        assert (
            resp.startswith("OK {") or resp == "BUSY"
            or resp.startswith("ERR draining") or resp == ""
        ), f"torn response during drain: {resp!r}"


stormers = [threading.Thread(target=storm) for _ in range(3)]
for t in stormers:
    t.start()
req = urllib.request.Request(http_base + "/shutdown", data=b"", method="POST")
with urllib.request.urlopen(req, timeout=10) as r:
    body = r.read().decode()
    assert "draining" in body, f"shutdown answered: {body}"
for t in stormers:
    t.join()
print("graceful shutdown ok: drain acknowledged mid-storm, no torn responses")
PYEOF

# The server must exit cleanly and report its drain summary.
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "server did not exit after drain"; exit 1
fi
wait "$pid"
grep -q 'drained; served=' "$workdir/stderr" || { echo "missing drain summary"; cat "$workdir/stderr"; exit 1; }
echo "service smoke passed: $(grep 'drained;' "$workdir/stderr")"
