#!/usr/bin/env python3
"""Validate bench_results/obs_queries.jsonl against ebi.query_report.v1.

The schema is documented in DESIGN.md §8. Exits non-zero on the first
malformed line so CI fails loudly.

Usage: validate_obs_schema.py [path/to/obs_queries.jsonl]
"""

import json
import sys

SCHEMA = "ebi.query_report.v1"

TOP_LEVEL = {
    "schema": str,
    "query_id": int,
    "label": str,
    "rows": int,
    "matches": int,
    "wall_ns": int,
    "expressions": list,
    "cost": dict,
    "storage": dict,
    "phases": list,
}

COST = [
    "vectors_accessed",
    "literal_ops",
    "cube_evals",
    "words_scanned",
    "bytes_touched",
    "compressed_chunks_skipped",
    "segments_pruned",
    "segments_short_circuited",
]

STORAGE = [
    "pager_reads",
    "pager_writes",
    "buffer_hits",
    "buffer_misses",
    "buffer_evictions",
    "buffer_hit_ratio",
]

PHASE = {
    "name": str,
    "start_ns": int,
    "wall_ns": int,
    "attrs": dict,
    "children": list,
}


def fail(lineno, msg):
    print(f"obs_queries.jsonl:{lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_phase(lineno, node, path):
    for key, typ in PHASE.items():
        if key not in node:
            fail(lineno, f"{path}: missing phase key {key!r}")
        if not isinstance(node[key], typ):
            fail(lineno, f"{path}.{key}: expected {typ.__name__}")
    for k, v in node["attrs"].items():
        if not isinstance(v, int) or v < 0:
            fail(lineno, f"{path}.attrs[{k!r}]: expected non-negative int")
    for i, child in enumerate(node["children"]):
        check_phase(lineno, child, f"{path}.children[{i}]")


def check_line(lineno, line):
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as e:
        fail(lineno, f"invalid JSON: {e}")
    for key, typ in TOP_LEVEL.items():
        if key not in doc:
            fail(lineno, f"missing key {key!r}")
        if not isinstance(doc[key], typ):
            fail(lineno, f"{key}: expected {typ.__name__}, got {type(doc[key]).__name__}")
    if doc["schema"] != SCHEMA:
        fail(lineno, f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    for key in COST:
        v = doc["cost"].get(key)
        if not isinstance(v, int) or v < 0:
            fail(lineno, f"cost.{key}: expected non-negative int, got {v!r}")
    for key in STORAGE:
        if key not in doc["storage"]:
            fail(lineno, f"storage: missing key {key!r}")
    ratio = doc["storage"]["buffer_hit_ratio"]
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
        fail(lineno, f"storage.buffer_hit_ratio: expected number in [0,1], got {ratio!r}")
    if not all(isinstance(e, str) for e in doc["expressions"]):
        fail(lineno, "expressions: expected list of strings")
    for i, phase in enumerate(doc["phases"]):
        check_phase(lineno, phase, f"phases[{i}]")
    if doc["phases"]:
        roots = [p["name"] for p in doc["phases"]]
        if "query" not in roots:
            fail(lineno, f"phase roots {roots} lack the 'query' span")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_results/obs_queries.jsonl"
    with open(path, encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        print(f"{path}: no report lines", file=sys.stderr)
        sys.exit(1)
    for lineno, line in enumerate(lines, 1):
        check_line(lineno, line)
    print(f"{path}: {len(lines)} report(s) valid against {SCHEMA}")


if __name__ == "__main__":
    main()
