#!/usr/bin/env python3
"""Validate observability JSONL artefacts.

Dispatches per line on the "schema" field:

* ebi.query_report.v1 — profiled query reports (DESIGN.md §8)
* ebi.trace.v1        — retained traces from the service tail-sampling
                        ring, each embedding a full query report
                        (DESIGN.md §13)
* ebi.log.v1          — structured service log records (DESIGN.md §13)

A file may mix schemas (e.g. a service log interleaved with nothing
else, or a trace dump). Exits non-zero on the first malformed line so
CI fails loudly.

Usage: validate_obs_schema.py [path/to/file.jsonl]
"""

import json
import re
import sys

QUERY_SCHEMA = "ebi.query_report.v1"
TRACE_SCHEMA = "ebi.trace.v1"
LOG_SCHEMA = "ebi.log.v1"

TOP_LEVEL = {
    "schema": str,
    "query_id": int,
    "label": str,
    "rows": int,
    "matches": int,
    "wall_ns": int,
    "expressions": list,
    "cost": dict,
    "storage": dict,
    "phases": list,
}

COST = [
    "vectors_accessed",
    "literal_ops",
    "cube_evals",
    "words_scanned",
    "bytes_touched",
    "compressed_chunks_skipped",
    "segments_pruned",
    "segments_short_circuited",
]

STORAGE = [
    "pager_reads",
    "pager_writes",
    "buffer_hits",
    "buffer_misses",
    "buffer_evictions",
    "buffer_hit_ratio",
]

PHASE = {
    "name": str,
    "start_ns": int,
    "wall_ns": int,
    "attrs": dict,
    "children": list,
}

TRACE_TOP = {
    "schema": str,
    "trace": str,
    "traceparent": str,
    "seq": int,
    "query_id": int,
    "wall_ns": int,
    "slow": bool,
    "threshold_ns": int,
    "report": dict,
}

LOG_TOP = {
    "schema": str,
    "ts_ns": int,
    "level": str,
    "target": str,
    "msg": str,
    "fields": dict,
}

LOG_LEVELS = {"debug", "info", "warn", "error"}

TRACEPARENT_RE = re.compile(r"^00-[0-9a-f]{32}-[0-9a-f]{16}-[0-9a-f]{2}$")

_path = "<input>"


def fail(lineno, msg):
    print(f"{_path}:{lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(lineno, doc, spec, what):
    for key, typ in spec.items():
        if key not in doc:
            fail(lineno, f"{what}: missing key {key!r}")
        if not isinstance(doc[key], typ) or (typ is int and isinstance(doc[key], bool)):
            fail(lineno, f"{what}.{key}: expected {typ.__name__}, got {type(doc[key]).__name__}")


def check_phase(lineno, node, path):
    for key, typ in PHASE.items():
        if key not in node:
            fail(lineno, f"{path}: missing phase key {key!r}")
        if not isinstance(node[key], typ):
            fail(lineno, f"{path}.{key}: expected {typ.__name__}")
    for k, v in node["attrs"].items():
        if not isinstance(v, int) or v < 0:
            fail(lineno, f"{path}.attrs[{k!r}]: expected non-negative int")
    for i, child in enumerate(node["children"]):
        check_phase(lineno, child, f"{path}.children[{i}]")


def check_query_report(lineno, doc, require_phases=True):
    check_keys(lineno, doc, TOP_LEVEL, "report")
    for key in COST:
        v = doc["cost"].get(key)
        if not isinstance(v, int) or v < 0:
            fail(lineno, f"cost.{key}: expected non-negative int, got {v!r}")
    for key in STORAGE:
        if key not in doc["storage"]:
            fail(lineno, f"storage: missing key {key!r}")
    ratio = doc["storage"]["buffer_hit_ratio"]
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
        fail(lineno, f"storage.buffer_hit_ratio: expected number in [0,1], got {ratio!r}")
    if not all(isinstance(e, str) for e in doc["expressions"]):
        fail(lineno, "expressions: expected list of strings")
    for i, phase in enumerate(doc["phases"]):
        check_phase(lineno, phase, f"phases[{i}]")
    if doc["phases"]:
        roots = [p["name"] for p in doc["phases"]]
        if "query" not in roots:
            fail(lineno, f"phase roots {roots} lack the 'query' span")
    elif require_phases:
        fail(lineno, "phases: empty (was the subscriber off?)")


def check_trace(lineno, doc):
    check_keys(lineno, doc, TRACE_TOP, "trace")
    if not re.fullmatch(r"[0-9a-f]{32}", doc["trace"]):
        fail(lineno, f"trace: expected 32 lowercase hex chars, got {doc['trace']!r}")
    if not TRACEPARENT_RE.match(doc["traceparent"]):
        fail(lineno, f"traceparent: malformed {doc['traceparent']!r}")
    if doc["trace"] not in doc["traceparent"]:
        fail(lineno, "traceparent does not carry the trace id")
    # The embedded report is a complete query report; retained traces
    # recorded with the subscriber off legitimately have no phase tree.
    check_query_report(lineno, doc["report"], require_phases=False)
    if doc["report"]["query_id"] != doc["query_id"]:
        fail(lineno, "query_id disagrees with the embedded report")


def check_log(lineno, doc):
    check_keys(lineno, doc, LOG_TOP, "log")
    if doc["level"] not in LOG_LEVELS:
        fail(lineno, f"level: {doc['level']!r} not in {sorted(LOG_LEVELS)}")
    if "trace" in doc and not re.fullmatch(r"[0-9a-f]{32}", doc["trace"]):
        fail(lineno, f"trace: expected 32 lowercase hex chars, got {doc['trace']!r}")


CHECKERS = {
    QUERY_SCHEMA: check_query_report,
    TRACE_SCHEMA: check_trace,
    LOG_SCHEMA: check_log,
}


def check_line(lineno, line):
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as e:
        fail(lineno, f"invalid JSON: {e}")
    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        fail(lineno, f"unknown schema {schema!r} (known: {sorted(CHECKERS)})")
    checker(lineno, doc)
    return schema


def main():
    global _path
    _path = sys.argv[1] if len(sys.argv) > 1 else "bench_results/obs_queries.jsonl"
    with open(_path, encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        print(f"{_path}: no report lines", file=sys.stderr)
        sys.exit(1)
    seen = {}
    for lineno, line in enumerate(lines, 1):
        schema = check_line(lineno, line)
        seen[schema] = seen.get(schema, 0) + 1
    breakdown = ", ".join(f"{n} x {s}" for s, n in sorted(seen.items()))
    print(f"{_path}: {len(lines)} line(s) valid ({breakdown})")


if __name__ == "__main__":
    main()
