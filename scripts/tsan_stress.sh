#!/usr/bin/env bash
# ThreadSanitizer stress run over the concurrency-heavy service crate:
# the worker-pool submit/claim/steal paths and the sharded query
# service. Needs a nightly toolchain with the rust-src component
# (-Zbuild-std rebuilds std with TSan instrumentation).
#
# Usage: scripts/tsan_stress.sh [extra cargo test args]
set -euo pipefail

TARGET="${TSAN_TARGET:-x86_64-unknown-linux-gnu}"

if ! cargo +nightly --version >/dev/null 2>&1; then
  echo "tsan_stress: no nightly toolchain installed (rustup toolchain install nightly)" >&2
  exit 2
fi

# TSan has false positives on some std synchronization internals it
# cannot see into; second_deadlock_stack improves reports on real ones.
export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1}"
export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
# Instrumented tests interleave aggressively; keep runtimes bounded.
export RUST_TEST_THREADS="${RUST_TEST_THREADS:-4}"

exec cargo +nightly test -p ebi-service \
  -Zbuild-std \
  --target "$TARGET" \
  --release \
  "$@"
