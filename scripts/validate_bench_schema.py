#!/usr/bin/env python3
"""Validate the BENCH_*.json artefacts against their schemas.

Consolidated check used by scripts/regen_all.sh and the CI
bench-regression job. Each file declares its schema in a top-level
"schema" key; this script knows the expected shape for:

  ebi.bench_eval.v1        (BENCH_eval.json)
  ebi.bench_compressed.v2  (BENCH_compressed.json; v1 = no reorder section)
  ebi.bench_scaling.v1     (BENCH_scaling.json)
  ebi.bench_service.v1     (BENCH_service.json)

Exits non-zero on the first malformed file so CI fails loudly.

Usage: validate_bench_schema.py FILE [FILE ...]
"""

import json
import sys

NUM = (int, float)

# schema id -> (required top-level keys, rows key -> required row keys)
SPECS = {
    "ebi.bench_eval.v1": (
        {
            "workload": str,
            "engines": list,
            "unit": str,
            "threads": int,
            "cores_available": int,
            "smoke": bool,
            "invariants": dict,
            "results": list,
        },
        {
            "results": {
                "rows": int,
                "delta": int,
                "cubes": int,
                "vectors_accessed": int,
                "naive_ns": int,
                "fused_ns": int,
                "fused_summarized_ns": int,
                "fused_parallel_ns": int,
                "speedup_fused_vs_naive": NUM,
                "speedup_parallel_vs_naive": NUM,
            },
        },
    ),
    "ebi.bench_compressed.v1": (
        {
            "workload": str,
            "rows": int,
            "storages": list,
            "unit": str,
            "smoke": bool,
            "invariants": dict,
            "results": list,
        },
        {
            "results": {
                "skew": str,
                "delta": int,
                "storage": str,
                "median_ns": int,
                "bytes_stored": int,
                "bytes_touched": int,
                "compressed_chunks_skipped": int,
                "vectors_accessed": int,
            },
        },
    ),
    "ebi.bench_compressed.v2": (
        {
            "workload": str,
            "rows": int,
            "storages": list,
            "unit": str,
            "smoke": bool,
            "invariants": dict,
            "results": list,
            "reorder_workload": str,
            "row_orders": list,
            "reorder_results": list,
        },
        {
            "results": {
                "skew": str,
                "delta": int,
                "storage": str,
                "median_ns": int,
                "bytes_stored": int,
                "bytes_touched": int,
                "compressed_chunks_skipped": int,
                "vectors_accessed": int,
            },
            "reorder_results": {
                "skew": str,
                "storage": str,
                "order": str,
                "median_ns": int,
                "bytes_stored": int,
                "bytes_touched": int,
                "compressed_chunks_skipped": int,
                "vectors_accessed": int,
                "slice_runs": int,
                "fill_word_fraction": NUM,
            },
        },
    ),
    "ebi.bench_scaling.v1": (
        {
            "workload": str,
            "rows": int,
            "simd_rows": int,
            "unit": str,
            "smoke": bool,
            "host_threads": int,
            "thread_counts": list,
            "kernel_path": str,
            "check": dict,
            "invariants": dict,
            "results": list,
            "simd": list,
            "notes": list,
        },
        {
            "results": {
                "container": str,
                "delta": int,
                "threads": int,
                "best_ns": int,
                "speedup_vs_serial": NUM,
            },
            "simd": {
                "rows": int,
                "delta": int,
                "scalar_ns": int,
                "simd_ns": int,
                "kernel_path": str,
                "speedup_simd_vs_scalar": NUM,
            },
        },
    ),
    "ebi.bench_service.v1": (
        {
            "workload": str,
            "rows": int,
            "unit": str,
            "protocol": str,
            "workers": int,
            "max_inflight": int,
            "cores_available": int,
            "smoke": bool,
            "shard_counts": list,
            "client_counts": list,
            "invariants": dict,
            "notes": list,
            "results": list,
        },
        {
            "results": {
                "shards": int,
                "clients": int,
                "requests": int,
                "ok": int,
                "busy": int,
                "throughput_rps": NUM,
                "p50_ns": int,
                "p95_ns": int,
                "p99_ns": int,
                "throughput_scaling_vs_one_client": NUM,
            },
        },
    ),
}

KERNEL_PATHS = {"scalar", "portable", "avx2"}
ROW_ORDERS = {"original", "lexicographic", "gray"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")
    schema = doc.get("schema")
    if schema not in SPECS:
        fail(path, f"unknown schema {schema!r}; expected one of {sorted(SPECS)}")
    top, row_specs = SPECS[schema]
    for key, typ in top.items():
        if key not in doc:
            fail(path, f"missing key {key!r}")
        if not isinstance(doc[key], typ):
            fail(path, f"{key}: expected {typ}, got {type(doc[key]).__name__}")
    for rows_key, row_spec in row_specs.items():
        rows = doc[rows_key]
        if not rows:
            fail(path, f"{rows_key}: empty")
        for i, row in enumerate(rows):
            for key, typ in row_spec.items():
                v = row.get(key)
                if v is None:
                    fail(path, f"{rows_key}[{i}]: missing key {key!r}")
                if not isinstance(v, typ) or isinstance(v, bool):
                    fail(path, f"{rows_key}[{i}].{key}: expected {typ}, got {v!r}")
                if isinstance(v, NUM) and v < 0:
                    fail(path, f"{rows_key}[{i}].{key}: negative value {v!r}")
            if "kernel_path" in row and row["kernel_path"] not in KERNEL_PATHS:
                fail(path, f"{rows_key}[{i}].kernel_path: {row['kernel_path']!r} not in {sorted(KERNEL_PATHS)}")
    if schema == "ebi.bench_compressed.v2":
        seen = set()
        for i, row in enumerate(doc["reorder_results"]):
            if row["order"] not in ROW_ORDERS:
                fail(path, f"reorder_results[{i}].order: {row['order']!r} not in {sorted(ROW_ORDERS)}")
            if not 0.0 <= row["fill_word_fraction"] <= 1.0:
                fail(path, f"reorder_results[{i}].fill_word_fraction: {row['fill_word_fraction']!r} outside [0, 1]")
            seen.add((row["skew"], row["storage"], row["order"]))
        for skew, storage, order in seen:
            if order != "original" and (skew, storage, "original") not in seen:
                fail(path, f"reorder_results: {skew}/{storage} has a {order} row but no original baseline")
    if schema == "ebi.bench_service.v1":
        seen = set()
        for i, row in enumerate(doc["results"]):
            if not row["p50_ns"] <= row["p95_ns"] <= row["p99_ns"]:
                fail(path, f"results[{i}]: percentiles not monotone (p50/p95/p99)")
            if row["ok"] + row["busy"] != row["requests"]:
                fail(path, f"results[{i}]: ok + busy != requests")
            seen.add((row["shards"], row["clients"]))
        for shards, clients in seen:
            if clients != 1 and (shards, 1) not in seen:
                fail(path, f"results: shards={shards} has clients={clients} but no 1-client baseline")
        if doc["cores_available"] < 2 and not doc["notes"]:
            fail(path, "single-core host must document the hardware limit in notes[]")
    if schema == "ebi.bench_scaling.v1":
        if doc["kernel_path"] not in KERNEL_PATHS:
            fail(path, f"kernel_path: {doc['kernel_path']!r} not in {sorted(KERNEL_PATHS)}")
        if doc["host_threads"] < 2 and not doc["notes"]:
            fail(path, "single-core host must document the hardware limit in notes[]")
    print(f"{path}: valid against {schema}")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
