#!/usr/bin/env python3
"""Gate CI on benchmark regressions against the committed baselines.

Compares the freshly generated smoke artefacts against the checked-in
baselines in bench_baselines/:

  BENCH_eval.json        vs bench_baselines/BENCH_eval.smoke.json
  BENCH_compressed.json  vs bench_baselines/BENCH_compressed.smoke.json
  BENCH_scaling.json     vs bench_baselines/BENCH_scaling.smoke.json
  BENCH_service.json     vs bench_baselines/BENCH_service.smoke.json

Only dimensionless speedup ratios are compared — never raw
nanoseconds — so the gate is meaningful across runner generations. A
metric regresses when it falls below baseline * (1 - TOLERANCE).
Improvements never fail. Every baseline point must still exist in the
current run (a vanished point is a silent coverage loss); extra
current points (e.g. more cores on the runner) are fine.

Usage: check_bench_regression.py [--tolerance 0.15]
       [--current-dir .] [--baseline-dir bench_baselines]
"""

import argparse
import json
import sys

FAILURES = []


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot load baseline/current artefact: {e}", file=sys.stderr)
        sys.exit(1)


def compare(name, key, baseline, current, tolerance):
    """baseline/current: {point-key: speedup}."""
    for point, base in sorted(baseline.items()):
        cur = current.get(point)
        if cur is None:
            FAILURES.append(f"{name} {point}: point present in baseline but missing from current run")
            continue
        floor = base * (1.0 - tolerance)
        status = "ok" if cur >= floor else "REGRESSED"
        print(f"{name:<28} {point:<36} {key}: baseline {base:.3f} current {cur:.3f} floor {floor:.3f} {status}")
        if cur < floor:
            FAILURES.append(
                f"{name} {point}: {key} {cur:.3f} fell below {floor:.3f} (baseline {base:.3f}, tolerance {tolerance:.0%})"
            )


def eval_points(doc, key):
    return {f"rows={r['rows']},delta={r['delta']}": r[key] for r in doc["results"]}


def scaling_points(doc):
    return {
        f"container={r['container']},delta={r['delta']},threads={r['threads']}": r["speedup_vs_serial"]
        for r in doc["results"]
    }


def simd_points(doc):
    return {f"delta={r['delta']}": r["speedup_simd_vs_scalar"] for r in doc["simd"]}


def service_points(doc):
    """Throughput of each multi-client cell relative to the 1-client
    cell at the same shard count — the dimensionless cost of client
    concurrency (admission, connection handling, fan-out contention).
    A drop means added per-request serialization, not a slower host."""
    return {
        f"shards={r['shards']},clients={r['clients']}": r["throughput_scaling_vs_one_client"]
        for r in doc["results"]
        if r["clients"] != 1
    }


def reorder_storage_ratios(doc):
    """Sorted-storage ratio per (skew, storage, order): bytes stored by
    the original-order build divided by the reordered build's — the
    dimensionless payoff of build-time row reordering. Dense stays at
    1.0 (reordering never changes dense footprint); the compressed
    containers are where a regression would show."""
    by = {(r["skew"], r["storage"], r["order"]): r for r in doc.get("reorder_results", [])}
    out = {}
    for (skew, storage, order), r in by.items():
        if order == "original":
            continue
        base = by.get((skew, storage, "original"))
        if base and r["bytes_stored"] > 0:
            out[f"skew={skew},storage={storage},order={order}"] = (
                base["bytes_stored"] / r["bytes_stored"]
            )
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--baseline-dir", default="bench_baselines")
    args = ap.parse_args()

    cur_eval = load(f"{args.current_dir}/BENCH_eval.json")
    base_eval = load(f"{args.baseline_dir}/BENCH_eval.smoke.json")
    cur_compressed = load(f"{args.current_dir}/BENCH_compressed.json")
    base_compressed = load(f"{args.baseline_dir}/BENCH_compressed.smoke.json")
    cur_scaling = load(f"{args.current_dir}/BENCH_scaling.json")
    base_scaling = load(f"{args.baseline_dir}/BENCH_scaling.smoke.json")
    cur_service = load(f"{args.current_dir}/BENCH_service.json")
    base_service = load(f"{args.baseline_dir}/BENCH_service.smoke.json")

    for doc, label in (
        (cur_eval, "current BENCH_eval"),
        (base_eval, "baseline BENCH_eval"),
        (cur_compressed, "current BENCH_compressed"),
        (base_compressed, "baseline BENCH_compressed"),
        (cur_scaling, "current BENCH_scaling"),
        (base_scaling, "baseline BENCH_scaling"),
        (cur_service, "current BENCH_service"),
        (base_service, "baseline BENCH_service"),
    ):
        if not doc.get("smoke"):
            print(f"{label} is not a --smoke artefact; refusing to compare", file=sys.stderr)
            sys.exit(1)

    for key in ("speedup_fused_vs_naive", "speedup_parallel_vs_naive"):
        compare("BENCH_eval", key, eval_points(base_eval, key), eval_points(cur_eval, key), args.tolerance)
    compare(
        "BENCH_compressed/reorder", "sorted_storage_ratio",
        reorder_storage_ratios(base_compressed), reorder_storage_ratios(cur_compressed),
        args.tolerance,
    )
    compare(
        "BENCH_scaling/results", "speedup_vs_serial",
        scaling_points(base_scaling), scaling_points(cur_scaling), args.tolerance,
    )
    compare(
        "BENCH_scaling/simd", "speedup_simd_vs_scalar",
        simd_points(base_scaling), simd_points(cur_scaling), args.tolerance,
    )
    compare(
        "BENCH_service", "throughput_scaling_vs_one_client",
        service_points(base_service), service_points(cur_service), args.tolerance,
    )

    if FAILURES:
        print(f"\n{len(FAILURES)} benchmark regression(s):", file=sys.stderr)
        for f in FAILURES:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nno benchmark regressions (tolerance {:.0%})".format(args.tolerance))


if __name__ == "__main__":
    main()
