#!/usr/bin/env python3
"""Validate bench_results/lint_report.jsonl against ebi.lint.v1.

The schema is documented in DESIGN.md §12. Line 1 must be the summary
record; finding and unsafe_site records follow. Exits non-zero on the
first malformed line so CI fails loudly.

Usage: validate_lint_schema.py [path/to/lint_report.jsonl]
"""

import json
import sys

SCHEMA = "ebi.lint.v1"

SEVERITIES = {"info", "warn", "error"}
UNSAFE_ITEMS = {"block", "fn", "impl", "trait", "other"}

FINDING = {
    "lint": str,
    "severity": str,
    "file": str,
    "line": int,
    "message": str,
}

UNSAFE_SITE = {
    "file": str,
    "line": int,
    "item": str,
    "justified": bool,
}


def fail(lineno, msg):
    print(f"lint_report.jsonl:{lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(lineno, doc, spec):
    for key, typ in spec.items():
        if key not in doc:
            fail(lineno, f"missing key {key!r}")
        if not isinstance(doc[key], typ):
            fail(lineno, f"{key}: expected {typ.__name__}, got {type(doc[key]).__name__}")


def check_summary(lineno, doc):
    for key, typ in (("files_scanned", int), ("findings", dict), ("unsafe_sites", int), ("lints", list)):
        if key not in doc:
            fail(lineno, f"summary: missing key {key!r}")
        if not isinstance(doc[key], typ):
            fail(lineno, f"summary.{key}: expected {typ.__name__}")
    for sev in ("error", "warn", "info"):
        v = doc["findings"].get(sev)
        if not isinstance(v, int) or v < 0:
            fail(lineno, f"summary.findings.{sev}: expected non-negative int, got {v!r}")
    if not all(isinstance(name, str) for name in doc["lints"]):
        fail(lineno, "summary.lints: expected list of strings")
    if doc["files_scanned"] <= 0:
        fail(lineno, "summary.files_scanned: lint scanned nothing")
    return doc["findings"], doc["unsafe_sites"]


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_results/lint_report.jsonl"
    with open(path, encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        print(f"{path}: empty report", file=sys.stderr)
        sys.exit(1)

    counts = {"finding": 0, "unsafe_site": 0}
    by_severity = {"error": 0, "warn": 0, "info": 0}
    summary_findings = None
    summary_unsafe = None
    for lineno, line in enumerate(lines, 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"invalid JSON: {e}")
        if doc.get("schema") != SCHEMA:
            fail(lineno, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
        kind = doc.get("kind")
        if lineno == 1:
            if kind != "summary":
                fail(lineno, f"first record must be the summary, got kind {kind!r}")
            summary_findings, summary_unsafe = check_summary(lineno, doc)
            continue
        if kind == "summary":
            fail(lineno, "duplicate summary record")
        elif kind == "finding":
            check_keys(lineno, doc, FINDING)
            if doc["severity"] not in SEVERITIES:
                fail(lineno, f"severity {doc['severity']!r} not in {sorted(SEVERITIES)}")
            if doc["line"] < 0:
                fail(lineno, "line: expected non-negative int")
            counts["finding"] += 1
            by_severity[doc["severity"]] += 1
        elif kind == "unsafe_site":
            check_keys(lineno, doc, UNSAFE_SITE)
            if doc["item"] not in UNSAFE_ITEMS:
                fail(lineno, f"item {doc['item']!r} not in {sorted(UNSAFE_ITEMS)}")
            counts["unsafe_site"] += 1
        else:
            fail(lineno, f"unknown kind {kind!r}")

    # The summary must agree with the record counts.
    for sev, n in by_severity.items():
        if summary_findings[sev] != n:
            fail(1, f"summary says {summary_findings[sev]} {sev} finding(s), file has {n}")
    if summary_unsafe != counts["unsafe_site"]:
        fail(1, f"summary says {summary_unsafe} unsafe site(s), file has {counts['unsafe_site']}")

    print(
        f"{path}: summary + {counts['finding']} finding(s) + "
        f"{counts['unsafe_site']} unsafe site(s) valid against {SCHEMA}"
    )


if __name__ == "__main__":
    main()
