#!/usr/bin/env bash
# Regenerates every paper artefact: figure CSVs, the digest, test and
# bench transcripts. Run from the workspace root.
set -euo pipefail

cargo build --release -p ebi-bench --bins

bins=(
  fig09_vectors_accessed
  fig10_space
  worst_case_analysis
  crossover_btree
  sparsity_report
  groupset_report
  tpcd_mix
  theorem21_check
  ablation_encodings
  buffer_sweep
  tpcd_lite_report
  base_sweep
)
for b in "${bins[@]}"; do
  echo "==== $b ===="
  "./target/release/$b"
done
./target/release/results_digest

echo "==== eval_kernels (full + scaling) ===="
./target/release/eval_kernels --scaling

echo "==== service_bench (full) ===="
./target/release/service_bench
python3 scripts/validate_bench_schema.py \
  BENCH_eval.json BENCH_compressed.json BENCH_scaling.json BENCH_service.json

echo "==== bench baselines (smoke, committed for CI regression gate) ===="
./target/release/eval_kernels --smoke --scaling --check --out-dir bench_baselines
./target/release/service_bench --smoke --out-dir bench_baselines
for f in BENCH_eval BENCH_compressed BENCH_scaling BENCH_service; do
  mv "bench_baselines/$f.json" "bench_baselines/$f.smoke.json"
done
python3 scripts/validate_bench_schema.py bench_baselines/*.smoke.json

echo "==== ebi-lint (committed lint report) ===="
cargo run --release -p ebi-lint -- --check --deny-warnings
python3 scripts/validate_lint_schema.py bench_results/lint_report.jsonl

cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
