#!/usr/bin/env bash
# Regenerates every paper artefact: figure CSVs, the digest, test and
# bench transcripts. Run from the workspace root.
set -euo pipefail

cargo build --release -p ebi-bench --bins

bins=(
  fig09_vectors_accessed
  fig10_space
  worst_case_analysis
  crossover_btree
  sparsity_report
  groupset_report
  tpcd_mix
  theorem21_check
  ablation_encodings
  buffer_sweep
  tpcd_lite_report
  base_sweep
)
for b in "${bins[@]}"; do
  echo "==== $b ===="
  "./target/release/$b"
done
./target/release/results_digest

echo "==== eval_kernels (full + scaling) ===="
./target/release/eval_kernels --scaling

echo "==== service_bench (full) ===="
./target/release/service_bench
python3 scripts/validate_bench_schema.py \
  BENCH_eval.json BENCH_compressed.json BENCH_scaling.json BENCH_service.json

echo "==== bench baselines (smoke, committed for CI regression gate) ===="
./target/release/eval_kernels --smoke --scaling --check --out-dir bench_baselines
./target/release/service_bench --smoke --out-dir bench_baselines
for f in BENCH_eval BENCH_compressed BENCH_scaling BENCH_service; do
  mv "bench_baselines/$f.json" "bench_baselines/$f.smoke.json"
done
python3 scripts/validate_bench_schema.py bench_baselines/*.smoke.json

echo "==== observability artefacts (reports, overhead, service telemetry) ===="
./target/release/explain
python3 scripts/validate_obs_schema.py bench_results/obs_queries.jsonl
./target/release/obs_overhead --check
python3 -m json.tool BENCH_obs.json > /dev/null

# Live service telemetry: run a short ebi_serve session with worst-case
# tail sampling (every query slow) and a file log sink, dump the trace
# ring, and commit both JSONL artefacts.
cargo build --release -p ebi-service --bin ebi_serve
rm -f bench_results/service_log.jsonl
obs_work=$(mktemp -d)
EBI_SERVICE_MIN_DISPATCH_WORDS=0 EBI_SLOW_QUERY_MS=0 \
  EBI_LOG="bench_results/service_log.jsonl" EBI_LOG_LEVEL=debug \
  ./target/release/ebi_serve --rows 20000 --shards 4 >"$obs_work/stdout" &
obs_pid=$!
for _ in $(seq 1 100); do
  grep -q '^EBI_SERVICE ' "$obs_work/stdout" 2>/dev/null && break
  sleep 0.1
done
obs_ready=$(grep -m1 '^EBI_SERVICE ' "$obs_work/stdout")
obs_http=${obs_ready#*http=}
for q in "a=1" "a IN 1,3,5 AND b BETWEEN 0 3" "c BETWEEN 1 9" "b=0 OR a=2"; do
  curl -sf "http://$obs_http/count?q=$(python3 -c 'import sys,urllib.parse; print(urllib.parse.quote(sys.argv[1]))' "$q")" > /dev/null
done
curl -sf "http://$obs_http/debug/traces" > bench_results/service_traces.jsonl
curl -sf -X POST "http://$obs_http/shutdown" > /dev/null
wait "$obs_pid"
rm -rf "$obs_work"
python3 scripts/validate_obs_schema.py bench_results/service_traces.jsonl
python3 scripts/validate_obs_schema.py bench_results/service_log.jsonl

echo "==== ebi-lint (committed lint report) ===="
cargo run --release -p ebi-lint -- --check --deny-warnings
python3 scripts/validate_lint_schema.py bench_results/lint_report.jsonl

cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
