#!/usr/bin/env bash
# Regenerates every paper artefact: figure CSVs, the digest, test and
# bench transcripts. Run from the workspace root.
set -euo pipefail

cargo build --release -p ebi-bench --bins

bins=(
  fig09_vectors_accessed
  fig10_space
  worst_case_analysis
  crossover_btree
  sparsity_report
  groupset_report
  tpcd_mix
  theorem21_check
  ablation_encodings
  buffer_sweep
  tpcd_lite_report
  base_sweep
)
for b in "${bins[@]}"; do
  echo "==== $b ===="
  "./target/release/$b"
done
./target/release/results_digest

cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
