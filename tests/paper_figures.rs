//! Every worked example in the paper, verified bit-for-bit across
//! crates (experiments E1–E3, E5–E7, E19 of DESIGN.md).

use ebi::core::hierarchy::{paper_figure5_mapping, paper_salespoint_hierarchy};
use ebi::core::range_encoding::{
    paper_figure7_ranges, paper_figure8_mapping, partition_domain, Interval, RangeBasedIndex,
};
use ebi::core::total_order::paper_figure6_mapping;
use ebi::core::well_defined::{achieved_cost, check};
use ebi::prelude::*;

// ---------------------------------------------------------------------
// Figure 1 — the running example: domain {a, b, c}, column [a,b,c,b,a,c].
// ---------------------------------------------------------------------

fn figure1_index() -> EncodedBitmapIndex {
    EncodedBitmapIndex::build([0u64, 1, 2, 1, 0, 2].map(Cell::Value)).unwrap()
}

#[test]
fn fig1_two_vectors_instead_of_three() {
    let idx = figure1_index();
    assert_eq!(idx.width(), 2);
    assert_eq!(idx.bitmap_vector_count(), 2);
    // Simple bitmap indexing needs one vector per value.
    let simple = SimpleBitmapIndex::build([0u64, 1, 2, 1, 0, 2].map(Cell::Value));
    assert_eq!(simple.bitmap_vector_count(), 3);
}

#[test]
fn fig1_retrieval_functions_match_the_paper() {
    let idx = figure1_index();
    // f_a = B1'B0', f_b = B1'B0, f_c = B1B0' (a=00, b=01, c=10). Our
    // reducer may additionally exploit the don't-care code 11
    // (footnote 3), shrinking f_b to B0 and f_c to B1; accept either as
    // long as it is semantically the paper's function on assigned codes.
    assert_eq!(idx.explain_in_list(&[0]).to_string(), "B1'B0'");
    for (value, code, paper) in [(1u64, 0b01u64, "B1'B0"), (2, 0b10, "B1B0'")] {
        let f = idx.explain_in_list(&[value]);
        let paper_expr = DnfExpr::parse(paper, 2).unwrap();
        for c in [0b00u64, 0b01, 0b10] {
            assert_eq!(f.covers(c), c == code, "f_{value} on assigned code {c:02b}");
        }
        assert!(f.vectors_accessed() <= paper_expr.vectors_accessed());
    }
    // f_a + f_b reduces to B1' exactly as in §2.2.
    assert_eq!(idx.explain_in_list(&[0, 1]).to_string(), "B1'");
}

#[test]
fn fig1_q1_q2_cost_comparison() {
    // §3.1: Q1 (point) favours simple (1 vs 2 vectors); Q2 (range of 2)
    // favours encoded (1 vs 2).
    let idx = figure1_index();
    let simple = SimpleBitmapIndex::build([0u64, 1, 2, 1, 0, 2].map(Cell::Value));
    let q1_enc = idx.eq(0).unwrap();
    let q1_sim = SelectionIndex::eq(&simple, 0);
    assert_eq!(q1_enc.stats.vectors_accessed, 2);
    assert_eq!(q1_sim.stats.vectors_accessed, 1);
    assert_eq!(q1_enc.bitmap, q1_sim.bitmap);
    let q2_enc = idx.in_list(&[0, 1]).unwrap();
    let q2_sim = simple.in_list(&[0, 1]);
    assert_eq!(q2_enc.stats.vectors_accessed, 1);
    assert_eq!(q2_sim.stats.vectors_accessed, 2);
    assert_eq!(q2_enc.bitmap, q2_sim.bitmap);
}

// ---------------------------------------------------------------------
// Figure 2 — updates with domain expansion.
// ---------------------------------------------------------------------

#[test]
fn fig2_full_expansion_sequence() {
    let mut idx = EncodedBitmapIndex::build([0u64, 1, 2].map(Cell::Value)).unwrap();
    // (a) append d: Equation (1) holds, code 11 assigned, no new vector.
    let out = idx.append(Cell::Value(3)).unwrap();
    assert!(!out.added_slice);
    assert_eq!(idx.mapping().code_of(3), Some(0b11));
    // (b) append e: width grows to 3, B2 added and zero on old rows.
    let out = idx.append(Cell::Value(4)).unwrap();
    assert!(out.added_slice);
    assert_eq!(idx.slices().len(), 3);
    assert_eq!(idx.slices()[2].to_dense().to_positions(), vec![4]);
    // Revised retrieval functions: f_a..f_d gain B2' (our reducer may
    // absorb it into the don't-cares 101/110/111 where that is sound).
    assert_eq!(idx.explain_in_list(&[0]).to_string(), "B2'B1'B0'");
    let fd = idx.explain_in_list(&[3]);
    for code in 0..5u64 {
        assert_eq!(
            fd.covers(code),
            code == 3,
            "f_d on assigned code {code:03b}"
        );
    }
    // All five values retrieve their exact rows.
    for v in 0..5u64 {
        let rows = idx.eq(v).unwrap().bitmap.to_positions();
        assert_eq!(rows, vec![v as usize], "value {v}");
    }
}

// ---------------------------------------------------------------------
// Figure 3 — proper vs improper mappings.
// ---------------------------------------------------------------------

#[test]
fn fig3_proper_mapping_one_vector_improper_three() {
    // ids a..h = 0..8; the two §2.2 selections.
    let s1: Vec<u64> = vec![0, 1, 2, 3];
    let s2: Vec<u64> = vec![2, 3, 4, 5];
    let proper = Mapping::from_pairs(&[
        (0, 0b000),
        (2, 0b001),
        (6, 0b010),
        (4, 0b011),
        (1, 0b100),
        (3, 0b101),
        (7, 0b110),
        (5, 0b111),
    ])
    .unwrap();
    let improper = Mapping::from_pairs(&[
        (0, 0b000),
        (2, 0b001),
        (6, 0b010),
        (1, 0b011),
        (4, 0b100),
        (3, 0b101),
        (7, 0b110),
        (5, 0b111),
    ])
    .unwrap();
    assert_eq!(achieved_cost(&proper, &s1), 1, "B1'");
    assert_eq!(achieved_cost(&proper, &s2), 1, "B0");
    assert_eq!(achieved_cost(&improper, &s1), 3);
    assert_eq!(achieved_cost(&improper, &s2), 3);
    // Definition 2.5 agrees.
    assert!(check(&proper, &s1).holds());
    assert!(check(&proper, &s2).holds());
    assert!(!check(&improper, &s1).holds());
}

#[test]
fn fig3_a_prime_is_an_alternative_optimum() {
    // §2.2: "both the mappings in Figure 3(a) and (a') are optimal to
    // both selections" — the optimum is not unique (Theorem 2.3 remark).
    let a_prime = Mapping::from_pairs(&[
        (0, 0b000), // a
        (1, 0b001), // b
        (2, 0b010), // c
        (3, 0b011), // d
        (6, 0b100), // g
        (7, 0b101), // h
        (4, 0b110), // e
        (5, 0b111), // f
    ])
    .unwrap();
    assert_eq!(achieved_cost(&a_prime, &[0, 1, 2, 3]), 1, "B2'");
    assert_eq!(achieved_cost(&a_prime, &[2, 3, 4, 5]), 1, "B1");
    assert!(check(&a_prime, &[0, 1, 2, 3]).holds());
    assert!(check(&a_prime, &[2, 3, 4, 5]).holds());
}

#[test]
fn fig3_queries_through_real_indexes() {
    // Build actual indexes with both mappings over a column hitting all
    // eight values; identical answers, different costs.
    let cells: Vec<Cell> = (0..64u64).map(|i| Cell::Value(i % 8)).collect();
    let proper = Mapping::from_pairs(&[
        (0, 0b000),
        (2, 0b001),
        (6, 0b010),
        (4, 0b011),
        (1, 0b100),
        (3, 0b101),
        (7, 0b110),
        (5, 0b111),
    ])
    .unwrap();
    let idx = EncodedBitmapIndex::build_with(
        cells.iter().copied(),
        BuildOptions {
            policy: NullPolicy::SeparateVectors,
            mapping: Some(proper),
            ..Default::default()
        },
    )
    .unwrap();
    let r = idx.in_list(&[0, 1, 2, 3]).unwrap();
    assert_eq!(r.stats.vectors_accessed, 1);
    assert_eq!(r.stats.expression, "B1'");
    let expect: Vec<usize> = (0..64).filter(|i| i % 8 < 4).collect();
    assert_eq!(r.bitmap.to_positions(), expect);
}

// ---------------------------------------------------------------------
// Figure 5 — hierarchy encoding.
// ---------------------------------------------------------------------

#[test]
fn fig5_alliance_x_needs_one_vector() {
    let h = paper_salespoint_hierarchy();
    let m = paper_figure5_mapping();
    let x = h.level("alliance").unwrap().members("X").unwrap();
    assert_eq!(x, &[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(achieved_cost(&m, x), 1);
}

#[test]
fn fig5_index_answers_rollups_exactly() {
    let h = paper_salespoint_hierarchy();
    let branches: Vec<Cell> = (0..240u64).map(|i| Cell::Value(1 + i % 12)).collect();
    let idx = EncodedBitmapIndex::build_with(
        branches.iter().copied(),
        BuildOptions {
            policy: NullPolicy::SeparateVectors,
            mapping: Some(paper_figure5_mapping()),
            ..Default::default()
        },
    )
    .unwrap();
    for level in h.levels() {
        for g in level.group_names() {
            let members = level.members(g).unwrap();
            let r = idx.in_list(members).unwrap();
            let expect: Vec<usize> = (0..240)
                .filter(|&i| members.contains(&(1 + i as u64 % 12)))
                .collect();
            assert_eq!(r.bitmap.to_positions(), expect, "{}={g}", level.name());
        }
    }
}

// ---------------------------------------------------------------------
// Figure 6 — total-order preserving encoding.
// ---------------------------------------------------------------------

#[test]
fn fig6_mapping_properties() {
    let m = paper_figure6_mapping();
    assert!(m.is_total_order_preserving());
    assert_eq!(achieved_cost(&m, &[101, 102, 104, 105]), 1);
    // Ad-hoc ranges still work: 102 <= A <= 104 via a real index.
    let cells: Vec<Cell> = (0..60u64).map(|i| Cell::Value(101 + i % 6)).collect();
    let idx = EncodedBitmapIndex::build_with(
        cells.iter().copied(),
        BuildOptions {
            policy: NullPolicy::SeparateVectors,
            mapping: Some(m),
            ..Default::default()
        },
    )
    .unwrap();
    let r = idx.range(102, 104).unwrap();
    let expect: Vec<usize> = (0..60).filter(|&i| (1..=3).contains(&(i % 6))).collect();
    assert_eq!(r.bitmap.to_positions(), expect);
}

// ---------------------------------------------------------------------
// Figures 7/8 — range-based encoding.
// ---------------------------------------------------------------------

#[test]
fn fig7_partition_and_fig8_functions() {
    let parts = partition_domain(6, 20, &paper_figure7_ranges()).unwrap();
    assert_eq!(parts.len(), 6);
    let column: Vec<u64> = (6..20).collect();
    let idx = RangeBasedIndex::build(
        &column,
        Interval::new(6, 20),
        &paper_figure7_ranges(),
        Some(paper_figure8_mapping()),
    )
    .unwrap();
    // Figure 8(b) functions (with the one don't-care improvement on
    // [8,12), see the core crate's range_encoding tests).
    assert_eq!(idx.explain_range(6, 10).unwrap(), "B2'B1'");
    assert_eq!(idx.explain_range(10, 13).unwrap(), "B2B1'");
    assert_eq!(idx.explain_range(16, 20).unwrap(), "B2B1");
    // Results are exact.
    let r = idx.query_range(10, 13).unwrap();
    assert_eq!(r.bitmap.to_positions(), vec![4, 5, 6], "values 10, 11, 12");
}

// ---------------------------------------------------------------------
// Footnote 3 — don't-care optimisation.
// ---------------------------------------------------------------------

#[test]
fn footnote3_xor_becomes_or() {
    use ebi::boolean::dontcare;
    let cmp = dontcare::compare(&[0b01, 0b10], &[0b11], 2);
    assert!(cmp
        .without
        .equivalent(&DnfExpr::parse("B1'B0 + B1B0'", 2).unwrap()));
    assert_eq!(cmp.with, DnfExpr::parse("B1 + B0", 2).unwrap());
    assert!(cmp.dontcares_helped());
    // And through the index: selecting {b, c} in Figure 1's column.
    let idx = figure1_index();
    let r = idx.in_list(&[1, 2]).unwrap();
    assert_eq!(r.stats.expression, "B0 + B1");
    assert_eq!(r.bitmap.to_positions(), vec![1, 2, 3, 5]);
}

// ---------------------------------------------------------------------
// §2.1 cooperativity — n indexes answer any conjunction.
// ---------------------------------------------------------------------

#[test]
fn cooperativity_conjunction_over_three_attributes() {
    let rows = 600usize;
    let a: Vec<Cell> = (0..rows as u64).map(|i| Cell::Value(i % 5)).collect();
    let b: Vec<Cell> = (0..rows as u64).map(|i| Cell::Value(i % 7)).collect();
    let c: Vec<Cell> = (0..rows as u64).map(|i| Cell::Value(i % 11)).collect();
    let ia = EncodedBitmapIndex::build(a).unwrap();
    let ib = EncodedBitmapIndex::build(b).unwrap();
    let ic = EncodedBitmapIndex::build(c).unwrap();
    let mut exec = Executor::new(rows);
    exec.register("a", &ia);
    exec.register("b", &ib);
    exec.register("c", &ic);
    let (bitmap, _) = exec.run(&ConjunctiveQuery {
        clauses: vec![
            Query {
                column: "a".into(),
                predicate: Predicate::Eq(2),
            },
            Query {
                column: "b".into(),
                predicate: Predicate::InList(vec![1, 3]),
            },
            Query {
                column: "c".into(),
                predicate: Predicate::Range(0, 5),
            },
        ],
    });
    let expect: Vec<usize> = (0..rows)
        .filter(|&i| i % 5 == 2 && (i % 7 == 1 || i % 7 == 3) && i % 11 <= 5)
        .collect();
    assert_eq!(bitmap.to_positions(), expect);
    assert_eq!(ebi::btree::model::compound_btrees_needed(3), 7);
}
