//! Property tests for the paper's theory layer: Definitions 2.2–2.5 and
//! Theorems 2.2/2.3 under random mappings and subdomains.

use ebi::core::distance::{as_subcube, binary_distance, find_chain, has_prime_chain, is_chain};
use ebi::core::well_defined::{achieved_cost, check, optimal_cost};
use ebi::prelude::*;
use proptest::prelude::*;

/// Random bijection of `m` values onto `k`-bit codes.
fn random_mapping(m: usize, k: u32, seed: u64) -> Mapping {
    let mut codes: Vec<u64> = (0..(1u64 << k)).collect();
    let mut state = seed | 1;
    for i in (1..codes.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        codes.swap(i, (state as usize) % (i + 1));
    }
    let mut map = Mapping::new(k);
    for (v, &c) in (0..m as u64).zip(codes.iter()) {
        map.insert(v, c).unwrap();
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_distance_is_a_metric(x in any::<u64>(), y in any::<u64>(), z in any::<u64>()) {
        prop_assert_eq!(binary_distance(x, x), 0);
        prop_assert_eq!(binary_distance(x, y), binary_distance(y, x));
        // Triangle inequality (Hamming distance is a metric).
        prop_assert!(
            binary_distance(x, z) <= binary_distance(x, y) + binary_distance(y, z)
        );
        // Identity of indiscernibles.
        if x != y {
            prop_assert!(binary_distance(x, y) >= 1);
        }
    }

    #[test]
    fn found_chains_always_verify(
        codes in prop::collection::btree_set(0u64..64, 2..10)
    ) {
        let codes: Vec<u64> = codes.into_iter().collect();
        if let Some(chain) = find_chain(&codes) {
            prop_assert!(is_chain(&chain), "find_chain output must satisfy Definition 2.3");
            let mut sorted_chain = chain;
            sorted_chain.sort_unstable();
            let mut sorted_codes = codes.clone();
            sorted_codes.sort_unstable();
            prop_assert_eq!(sorted_chain, sorted_codes, "chain is a permutation");
        }
    }

    #[test]
    fn subcubes_always_have_prime_chains(
        fixed_value in 0u64..16,
        free_bits in 1u32..3,
        k in 4u32..6,
    ) {
        // Build an actual subcube: fix the high bits, vary `free_bits`.
        let fixed = (fixed_value << free_bits) & ((1 << k) - 1);
        let codes: Vec<u64> = (0..(1u64 << free_bits)).map(|low| fixed | low).collect();
        prop_assert!(has_prime_chain(&codes), "{codes:?}");
        prop_assert!(as_subcube(&codes).is_some());
    }

    #[test]
    fn theorem_2_2_on_random_mappings(
        seed in any::<u64>(),
        k in 3u32..5,
        sub_start in 0u64..8,
        sub_len in 2u64..6,
    ) {
        let m = 1usize << k; // full domain: no don't-cares
        let mapping = random_mapping(m, k, seed);
        let hi = (sub_start + sub_len).min(m as u64);
        if hi - sub_start < 2 {
            return Ok(());
        }
        let subdomain: Vec<u64> = (sub_start..hi).collect();
        let achieved = achieved_cost(&mapping, &subdomain);
        let optimal = optimal_cost(&mapping, &subdomain);
        // QM never beats the exact bound, and meets it when well-defined.
        prop_assert!(achieved >= optimal);
        if check(&mapping, &subdomain).holds() {
            prop_assert_eq!(achieved, optimal, "Theorem 2.2: {:?}", mapping);
        }
    }

    #[test]
    fn queries_agree_under_any_mapping(
        seed in any::<u64>(),
        column in prop::collection::vec(0u64..8, 1..80),
        selection in prop::collection::vec(0u64..8, 1..5),
    ) {
        // The encoding never changes answers — only costs.
        let mapping = random_mapping(8, 3, seed);
        let cells: Vec<Cell> = column.iter().map(|&v| Cell::Value(v)).collect();
        let custom = EncodedBitmapIndex::build_with(
            cells.iter().copied(),
            BuildOptions {
                policy: NullPolicy::SeparateVectors,
                mapping: Some(mapping),
                ..Default::default()
            },
        )
        .unwrap();
        let default = EncodedBitmapIndex::build(cells).unwrap();
        prop_assert_eq!(
            custom.in_list(&selection).unwrap().bitmap,
            default.in_list(&selection).unwrap().bitmap
        );
    }
}
