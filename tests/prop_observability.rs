//! Property tests for the observability layer: profiling is a pure
//! observer. Across random DNF selections, random column data and
//! every slice storage policy, the profiled executor must return the
//! exact bitmap and the exact legacy cost numbers (`QueryStats` /
//! `ExecutionReport`) of the untraced path — `vectors_accessed` is the
//! paper's metric and instrumentation may never move it.

use ebi::core::index::QueryOptions;
use ebi::prelude::*;
use ebi::warehouse::DnfQuery;
use ebi_bitvec::StoragePolicy;
use proptest::prelude::*;

fn cell_strategy(m: u64) -> impl Strategy<Value = Cell> {
    prop_oneof![
        9 => (0..m).prop_map(Cell::Value),
        1 => Just(Cell::Null),
    ]
}

fn predicate_strategy(m: u64) -> impl Strategy<Value = Predicate> {
    prop_oneof![
        3 => (0..m).prop_map(Predicate::Eq),
        2 => prop::collection::btree_set(0..m, 1..4)
            .prop_map(|s| Predicate::InList(s.into_iter().collect())),
        2 => (0..m, 0..m).prop_map(|(a, b)| Predicate::Range(a.min(b), a.max(b))),
    ]
}

fn dnf_strategy(m: u64) -> impl Strategy<Value = DnfQuery> {
    let clause = predicate_strategy(m).prop_map(|predicate| Query {
        column: "c".into(),
        predicate,
    });
    let conjunction =
        prop::collection::vec(clause, 1..3).prop_map(|clauses| ConjunctiveQuery { clauses });
    prop::collection::vec(conjunction, 1..3).prop_map(|disjuncts| DnfQuery { disjuncts })
}

fn policy_strategy() -> impl Strategy<Value = StoragePolicy> {
    prop::sample::select(vec![
        StoragePolicy::Dense,
        StoragePolicy::Roaring,
        StoragePolicy::Wah,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn profiled_execution_preserves_the_paper_cost_metric(
        cells in prop::collection::vec(cell_strategy(16), 1..500),
        query in dnf_strategy(16),
        policy in policy_strategy(),
    ) {
        let rows = cells.len();
        // Legacy side: untraced engine, no observability calls at all.
        let mut plain = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        plain.set_query_options(QueryOptions {
            storage_policy: policy,
            ..Default::default()
        });
        // Profiled side: same data, same policy, full instrumentation.
        let mut instrumented = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        instrumented.set_query_options(QueryOptions {
            storage_policy: policy,
            profile: true,
            ..Default::default()
        });

        let mut exec_plain = Executor::new(rows);
        exec_plain.register("c", &plain);
        let mut exec_prof = Executor::new(rows);
        exec_prof.register("c", &instrumented);

        let (bitmap, legacy) = exec_plain.run_dnf(&query);
        let (profiled_bitmap, report) = exec_prof.run_dnf_profiled(&query, "prop");

        prop_assert_eq!(profiled_bitmap, bitmap, "profiling changed the result bitmap");
        prop_assert_eq!(
            report.cost.vectors_accessed,
            legacy.vectors_accessed as u64,
            "profiling changed the paper's c_e metric (policy {:?})",
            policy
        );
        prop_assert_eq!(report.cost.literal_ops, legacy.literal_ops as u64);
        prop_assert_eq!(report.matches, legacy.matches as u64);
        prop_assert_eq!(report.expressions, legacy.expressions);
        prop_assert_eq!(report.rows, rows as u64);
        // The JSON rendering stays schema-tagged whatever the inputs.
        prop_assert!(report
            .to_json_line()
            .starts_with("{\"schema\":\"ebi.query_report.v1\""));
    }
}
