//! Long randomized soak: a full session of mixed maintenance and
//! queries, shadow-checked against a plain model, across both NULL
//! policies — the "does the system hold together over time" test.

use ebi::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug)]
enum Op {
    Append(Cell),
    Delete(usize),
    Update(usize, Cell),
    QueryEq(u64),
    QueryIn(Vec<u64>),
    QueryRange(u64, u64),
    QueryNotIn(Vec<u64>),
    QueryNull,
}

fn random_op(rng: &mut StdRng, rows: usize, m: u64) -> Op {
    match rng.random_range(0..100u32) {
        0..=29 => Op::Append(if rng.random_ratio(1, 12) {
            Cell::Null
        } else {
            Cell::Value(rng.random_range(0..m))
        }),
        30..=37 if rows > 0 => Op::Delete(rng.random_range(0..rows)),
        38..=47 if rows > 0 => Op::Update(
            rng.random_range(0..rows),
            if rng.random_ratio(1, 10) {
                Cell::Null
            } else {
                Cell::Value(rng.random_range(0..m))
            },
        ),
        48..=62 => Op::QueryEq(rng.random_range(0..m)),
        63..=77 => {
            let n = rng.random_range(1..8usize);
            Op::QueryIn((0..n).map(|_| rng.random_range(0..m)).collect())
        }
        78..=89 => {
            let lo = rng.random_range(0..m);
            let hi = rng.random_range(lo..m);
            Op::QueryRange(lo, hi)
        }
        90..=95 => {
            let n = rng.random_range(0..4usize);
            Op::QueryNotIn((0..n).map(|_| rng.random_range(0..m)).collect())
        }
        _ => Op::QueryNull,
    }
}

fn soak(policy: NullPolicy, seed: u64, ops: usize) {
    let m = 60u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = EncodedBitmapIndex::build_with(
        Vec::<Cell>::new(),
        BuildOptions {
            policy,
            mapping: None,
            ..Default::default()
        },
    )
    .unwrap();
    // Shadow: Some(cell) live, None deleted.
    let mut shadow: Vec<Option<Cell>> = Vec::new();
    let mut queries_checked = 0usize;

    for step in 0..ops {
        let op = random_op(&mut rng, shadow.len(), m);
        match op {
            Op::Append(cell) => {
                idx.append(cell).unwrap();
                shadow.push(Some(cell));
            }
            Op::Delete(row) => {
                idx.delete(row).unwrap();
                shadow[row] = None;
            }
            Op::Update(row, cell) => {
                idx.update(row, cell).unwrap();
                shadow[row] = Some(cell); // updates resurrect tombstones
            }
            Op::QueryEq(v) => {
                let got = idx.eq(v).unwrap().bitmap.to_positions();
                let expect = match_rows(&shadow, |c| c.value() == Some(v));
                assert_eq!(got, expect, "step {step}: eq({v}) under {policy:?}");
                queries_checked += 1;
            }
            Op::QueryIn(vs) => {
                let got = idx.in_list(&vs).unwrap().bitmap.to_positions();
                let expect = match_rows(&shadow, |c| c.value().is_some_and(|v| vs.contains(&v)));
                assert_eq!(got, expect, "step {step}: in({vs:?}) under {policy:?}");
                queries_checked += 1;
            }
            Op::QueryRange(lo, hi) => {
                let got = idx.range(lo, hi).unwrap().bitmap.to_positions();
                let expect = match_rows(&shadow, |c| c.value().is_some_and(|v| v >= lo && v <= hi));
                assert_eq!(
                    got, expect,
                    "step {step}: range({lo},{hi}) under {policy:?}"
                );
                queries_checked += 1;
            }
            Op::QueryNotIn(vs) => {
                let got = idx.not_in_list(&vs).unwrap().bitmap.to_positions();
                let expect = match_rows(&shadow, |c| c.value().is_some_and(|v| !vs.contains(&v)));
                assert_eq!(got, expect, "step {step}: not_in({vs:?}) under {policy:?}");
                queries_checked += 1;
            }
            Op::QueryNull => {
                let got = idx.is_null().bitmap.to_positions();
                let expect = match_rows(&shadow, Cell::is_null);
                assert_eq!(got, expect, "step {step}: is_null under {policy:?}");
                queries_checked += 1;
            }
        }
    }
    assert!(queries_checked > ops / 4, "workload mix drifted");
    assert_eq!(idx.rows(), shadow.len());
}

fn match_rows(shadow: &[Option<Cell>], pred: impl Fn(&Cell) -> bool) -> Vec<usize> {
    shadow
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.as_ref().filter(|c| pred(c)).map(|_| i))
        .collect()
}

#[test]
fn soak_separate_vectors_policy() {
    soak(NullPolicy::SeparateVectors, 0x50AC1, 2_500);
}

#[test]
fn soak_encoded_reserved_policy() {
    soak(NullPolicy::EncodedReserved, 0x50AC2, 2_500);
}

#[test]
fn soak_multiple_seeds_short() {
    for seed in 0..6u64 {
        soak(NullPolicy::SeparateVectors, 0xAB00 + seed, 600);
        soak(NullPolicy::EncodedReserved, 0xCD00 + seed, 600);
    }
}
