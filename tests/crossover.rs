//! Experiment E12 — the §2.1 space crossover between simple bitmap
//! indexes and B-trees, measured on real structures.

use ebi::btree::model;
use ebi::prelude::*;
use ebi::warehouse::generator::{generate_column, ColumnSpec};

#[test]
fn analytic_crossover_is_93_at_paper_parameters() {
    let x = model::bitmap_smaller_than_btree_cardinality(4096, 512);
    assert!((92.0..94.0).contains(&x), "crossover {x}");
}

#[test]
fn measured_crossover_brackets_the_model() {
    // With one node per page at p = 4K and M = 512, a B-tree on n keys
    // occupies ~n/M · p bytes (leaves dominate); the bitmap index n·m/8.
    // The measured crossover should land within a small factor of the
    // model's 93 — structure overheads shift it, the shape must hold:
    // small m ⇒ bitmap smaller, large m ⇒ B-tree smaller.
    let rows = 100_000usize;
    let measure = |m: u64| -> (usize, usize) {
        let cells = generate_column(&ColumnSpec::uniform(m), rows, 0xC0 + m);
        let bitmap = SimpleBitmapIndex::build(cells.iter().copied());
        let btree = ValueListIndex::build_with(cells.iter().copied(), 512, 4096);
        (
            SelectionIndex::storage_bytes(&bitmap),
            SelectionIndex::storage_bytes(&btree),
        )
    };
    let (bm_small, bt_small) = measure(8);
    assert!(
        bm_small < bt_small,
        "m=8: bitmap {bm_small} should be smaller than B-tree {bt_small}"
    );
    let (bm_large, bt_large) = measure(1024);
    assert!(
        bm_large > bt_large,
        "m=1024: bitmap {bm_large} should exceed B-tree {bt_large}"
    );
}

#[test]
fn encoded_index_stays_small_across_the_whole_sweep() {
    // The encoded index needs no crossover analysis: its footprint is
    // logarithmic in m, below both competitors at high cardinality.
    let rows = 50_000usize;
    for m in [64u64, 1024, 8192] {
        let cells = generate_column(&ColumnSpec::uniform(m), rows, 0xC9 + m);
        let simple = SimpleBitmapIndex::build(cells.iter().copied());
        let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        assert!(
            encoded.storage_bytes() < SelectionIndex::storage_bytes(&simple) / 4,
            "m={m}: encoded {} vs simple {}",
            encoded.storage_bytes(),
            SelectionIndex::storage_bytes(&simple)
        );
    }
}

#[test]
fn build_cost_model_ordering_holds_in_practice() {
    use std::time::Instant;
    // §2.1: at high cardinality, building the simple index (O(n·m)
    // bit-writes across m vectors) costs far more memory traffic than
    // the encoded one (O(n·log m)). Compare footprint-normalised build
    // times only loosely (CI-safe factor).
    let rows = 30_000usize;
    let m = 4096u64;
    let cells = generate_column(&ColumnSpec::uniform(m), rows, 0xB1);
    let t0 = Instant::now();
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let t_encoded = t0.elapsed();
    let t1 = Instant::now();
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let t_simple = t1.elapsed();
    // The strong, timing-free claim: allocation footprint.
    assert!(encoded.storage_bytes() * 50 < SelectionIndex::storage_bytes(&simple));
    // The loose timing claim: encoded build is not dramatically slower.
    assert!(
        t_encoded < t_simple * 20,
        "encoded {t_encoded:?} vs simple {t_simple:?}"
    );
}
