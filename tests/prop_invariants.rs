//! Property-based invariants across the whole stack (proptest).

use ebi::boolean::{eval_expr, qm, support, DnfExpr};
use ebi::prelude::*;
use ebi_bitvec::wah::WahBitmap;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// BitVec: logical ops agree with a Vec<bool> model.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitvec_ops_match_bool_model(
        pattern in prop::collection::vec((any::<bool>(), any::<bool>()), 0..400)
    ) {
        let a: BitVec = pattern.iter().map(|&(x, _)| x).collect();
        let b: BitVec = pattern.iter().map(|&(_, y)| y).collect();
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let not_a = a.negated();
        for (i, &(x, y)) in pattern.iter().enumerate() {
            prop_assert_eq!(and.bit(i), x && y);
            prop_assert_eq!(or.bit(i), x || y);
            prop_assert_eq!(xor.bit(i), x != y);
            prop_assert_eq!(not_a.bit(i), !x);
        }
        prop_assert_eq!(and.count_ones() + xor.count_ones(), or.count_ones());
    }

    #[test]
    fn bitvec_serialisation_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..500)) {
        let v: BitVec = bools.iter().copied().collect();
        let restored = BitVec::from_bytes(v.to_bytes()).unwrap();
        prop_assert_eq!(restored, v);
    }

    #[test]
    fn wah_roundtrip_and_popcount(bools in prop::collection::vec(any::<bool>(), 0..700)) {
        let v: BitVec = bools.iter().copied().collect();
        let wah = WahBitmap::compress(&v);
        prop_assert_eq!(wah.decompress(), v);
        prop_assert_eq!(wah.count_ones(), v.count_ones());
        let restored = WahBitmap::from_bytes(&wah.to_bytes()).unwrap();
        prop_assert_eq!(restored.decompress(), v);
    }

    #[test]
    fn wah_compressed_ops_match_plain(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..500)
    ) {
        let a: BitVec = pairs.iter().map(|&(x, _)| x).collect();
        let b: BitVec = pairs.iter().map(|&(_, y)| y).collect();
        let (wa, wb) = (WahBitmap::compress(&a), WahBitmap::compress(&b));
        prop_assert_eq!(wa.and(&wb).decompress(), &a & &b);
        prop_assert_eq!(wa.or(&wb).decompress(), &a | &b);
    }

    #[test]
    fn rank_select_inverse(bools in prop::collection::vec(any::<bool>(), 0..600)) {
        use ebi_bitvec::rank::RankIndex;
        let v: BitVec = bools.iter().copied().collect();
        let idx = RankIndex::new(&v);
        let mut seen = 0usize;
        for (i, &b) in bools.iter().enumerate() {
            prop_assert_eq!(idx.rank1(&v, i), seen);
            if b {
                prop_assert_eq!(idx.select1(&v, seen), Some(i));
                seen += 1;
            }
        }
        prop_assert_eq!(idx.select1(&v, seen), None);
    }
}

// ---------------------------------------------------------------------
// Quine–McCluskey: reduction is semantically exact and never worse in
// vectors than the exact minimum support allows.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qm_reduction_is_exact(
        k in 2u32..6,
        picks in prop::collection::vec(0u8..3, 1..32)
    ) {
        let universe = 1u64 << k;
        let mut on = Vec::new();
        let mut dc = Vec::new();
        for (code, &p) in (0..universe).zip(picks.iter().cycle().take(universe as usize)) {
            match p {
                0 => on.push(code),
                1 => dc.push(code),
                _ => {}
            }
        }
        let reduced = qm::minimize(&on, &dc, k);
        let raw = DnfExpr::minterm_sum(&on, k);
        for code in 0..universe {
            if dc.contains(&code) {
                continue; // free choice on don't-cares
            }
            prop_assert_eq!(reduced.covers(code), raw.covers(code), "code {:b}", code);
        }
        // Reduction never increases cost versus the raw min-term sum.
        prop_assert!(reduced.vectors_accessed() <= raw.vectors_accessed());
        prop_assert!(reduced.literal_count() <= raw.literal_count());
        // And the exact optimum lower-bounds it.
        let optimum = support::min_vectors(&on, &dc, k);
        prop_assert!(reduced.vectors_accessed() >= optimum);
        // minimize_vectors achieves the optimum.
        let best = support::minimize_vectors(&on, &dc, k);
        prop_assert_eq!(best.vectors_accessed(), optimum);
    }

    #[test]
    fn expression_eval_matches_cover(
        k in 1u32..5,
        codes in prop::collection::vec(any::<u64>(), 1..80)
    ) {
        let universe = 1u64 << k;
        let column: Vec<u64> = codes.iter().map(|c| c % universe).collect();
        let mut fam = ebi_bitvec::builder::SliceFamilyBuilder::new(k as usize);
        for &c in &column {
            fam.push_code(c);
        }
        let slices = fam.finish();
        let selection: Vec<u64> = (0..universe).step_by(2).collect();
        let expr = qm::minimize(&selection, &[], k);
        let result = eval_expr(&expr, &slices, column.len());
        for (row, &c) in column.iter().enumerate() {
            prop_assert_eq!(result.bit(row), selection.contains(&c));
        }
    }
}

// ---------------------------------------------------------------------
// Encoded bitmap index: equivalence with a scan, under any mapping and
// both NULL policies, through arbitrary maintenance.
// ---------------------------------------------------------------------

fn cell_strategy(m: u64) -> impl Strategy<Value = Cell> {
    prop_oneof![
        9 => (0..m).prop_map(Cell::Value),
        1 => Just(Cell::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ebi_matches_scan_with_nulls_and_deletes(
        cells in prop::collection::vec(cell_strategy(12), 1..150),
        deletes in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
        selection in prop::collection::vec(0u64..12, 1..6),
        reserved in any::<bool>(),
    ) {
        let policy = if reserved { NullPolicy::EncodedReserved } else { NullPolicy::SeparateVectors };
        let mut idx = EncodedBitmapIndex::build_with(
            cells.iter().copied(),
            BuildOptions { policy, mapping: None, ..Default::default() },
        ).unwrap();
        let mut dead = vec![false; cells.len()];
        for d in &deletes {
            let row = d.index(cells.len());
            idx.delete(row).unwrap();
            dead[row] = true;
        }
        let r = idx.in_list(&selection).unwrap();
        for (row, cell) in cells.iter().enumerate() {
            let expect = !dead[row] && cell.value().is_some_and(|v| selection.contains(&v));
            prop_assert_eq!(r.bitmap.bit(row), expect, "row {} under {:?}", row, policy);
        }
    }

    #[test]
    fn ebi_append_then_query(
        initial in prop::collection::vec(cell_strategy(8), 0..40),
        appended in prop::collection::vec(cell_strategy(24), 0..60),
        probe in 0u64..24,
    ) {
        let mut idx = EncodedBitmapIndex::build(initial.iter().copied()).unwrap();
        for &c in &appended {
            idx.append(c).unwrap();
        }
        let all: Vec<Cell> = initial.iter().chain(appended.iter()).copied().collect();
        let r = idx.eq(probe).unwrap();
        for (row, cell) in all.iter().enumerate() {
            prop_assert_eq!(r.bitmap.bit(row), cell.value() == Some(probe));
        }
        // NULL query is exact too.
        let nulls = idx.is_null();
        for (row, cell) in all.iter().enumerate() {
            prop_assert_eq!(nulls.bitmap.bit(row), cell.is_null());
        }
    }

    #[test]
    fn mapping_bijectivity_survives_serialisation(
        pairs in prop::collection::btree_map(0u64..500, 0u64..64, 1..40)
    ) {
        // btree_map gives distinct values; codes may repeat, so insert
        // tolerantly and only keep the successful prefix semantics.
        let mut m = Mapping::new(6);
        let mut inserted: Vec<(u64, u64)> = Vec::new();
        for (&v, &c) in &pairs {
            if m.insert(v, c).is_ok() {
                inserted.push((v, c));
            }
        }
        let restored = Mapping::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(&restored, &m);
        for (v, c) in inserted {
            prop_assert_eq!(m.code_of(v), Some(c));
            prop_assert_eq!(m.value_of(c), Some(v));
        }
    }
}

// ---------------------------------------------------------------------
// B+tree: behaves like BTreeMap<u64, Vec<u32>>.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_matches_std_model(
        inserts in prop::collection::vec((0u64..200, 0u32..1000), 0..300),
        range in (0u64..200, 0u64..200),
    ) {
        use std::collections::BTreeMap;
        let mut tree = ebi::btree::BTreeIndex::new(6, 64);
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(k, rid) in &inserts {
            tree.insert(k, rid);
            model.entry(k).or_default().push(rid);
        }
        tree.check_invariants();
        let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
        let mut got = tree.range(lo, hi);
        got.sort_unstable();
        let mut expect: Vec<u32> = model
            .range(lo..=hi)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        // Point lookups agree.
        for k in [lo, hi] {
            let mut a = tree.search(k);
            a.sort_unstable();
            let mut b = model.get(&k).cloned().unwrap_or_default();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

// ---------------------------------------------------------------------
// Storage: segments round-trip through the pager.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segments_roundtrip(
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        page_size in 8usize..128,
    ) {
        use ebi::storage::pager::Pager;
        use ebi::storage::segment::{read_segment, write_segment};
        let pager = Pager::with_page_size(page_size);
        let handles: Vec<_> = blobs
            .iter()
            .map(|b| write_segment(&pager, b).unwrap())
            .collect();
        for (blob, handle) in blobs.iter().zip(&handles) {
            prop_assert_eq!(&read_segment(&pager, handle).unwrap(), blob);
        }
    }
}
