//! The paper's theorems, verified as executable properties
//! (experiments E4 and the Theorem 2.2/2.3 optimality checks).

use ebi::core::well_defined::{achieved_cost, check, optimal_cost, workload_cost};
use ebi::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Theorem 2.1 — void tuples encoded as 0 make the existence mask
// redundant: f_{σ(A)} AND f'_void == f_{σ(A)}.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn theorem_2_1_void_zero_makes_mask_redundant(
        values in prop::collection::vec(0u64..30, 1..120),
        delete_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
        selection in prop::collection::vec(0u64..30, 1..8),
    ) {
        let cells: Vec<Cell> = values.iter().map(|&v| Cell::Value(v)).collect();
        let mut idx = EncodedBitmapIndex::build_with(
            cells.clone(),
            BuildOptions { policy: NullPolicy::EncodedReserved, mapping: None, ..Default::default() },
        ).unwrap();
        let mut dead = vec![false; cells.len()];
        for d in &delete_picks {
            let row = d.index(cells.len());
            idx.delete(row).unwrap();
            dead[row] = true;
        }
        // The reserved-code index never materialises an existence
        // vector, and yet...
        prop_assert_eq!(idx.bitmap_vector_count(), idx.slices().len());
        // ...every selection on real values excludes the voided rows.
        let r = idx.in_list(&selection).unwrap();
        for (row, &v) in values.iter().enumerate() {
            let expect = !dead[row] && selection.contains(&v);
            prop_assert_eq!(r.bitmap.bit(row), expect, "row {}", row);
        }
        // And the retrieval expression never covers the void code 0.
        let expr = idx.explain_in_list(&selection);
        prop_assert!(!expr.covers(0), "f must not cover the void code: {}", expr);
    }
}

// ---------------------------------------------------------------------
// Theorem 2.2 — a well-defined encoding minimises the vectors accessed.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn theorem_2_2_well_defined_implies_minimal_cost(
        perm_seed in any::<u64>(),
        subset_size in 2usize..6,
    ) {
        // Random bijection of 8 values onto 3-bit codes.
        let mut codes: Vec<u64> = (0..8).collect();
        let mut state = perm_seed | 1;
        for i in (1..8usize).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            codes.swap(i, (state as usize) % (i + 1));
        }
        let pairs: Vec<(u64, u64)> = (0..8u64).zip(codes.iter().copied()).collect();
        let mapping = Mapping::from_pairs(&pairs).unwrap();
        let subdomain: Vec<u64> = (0..subset_size as u64).collect();
        if check(&mapping, &subdomain).holds() {
            prop_assert_eq!(
                achieved_cost(&mapping, &subdomain),
                optimal_cost(&mapping, &subdomain),
                "well-defined encoding must achieve the minimum ({:?})",
                mapping
            );
        }
        // Regardless of well-definedness, QM never beats the exact bound.
        prop_assert!(achieved_cost(&mapping, &subdomain) >= optimal_cost(&mapping, &subdomain));
    }
}

// ---------------------------------------------------------------------
// Theorem 2.2/2.3 for power-of-two subdomains: a prime chain (subcube)
// reduces the selection to exactly k − p vectors.
// ---------------------------------------------------------------------

#[test]
fn prime_chain_subdomains_cost_k_minus_p() {
    // 16 values on 4 bits; subdomain = a 2-subcube (4 codes with 2 free
    // bits) must cost exactly 4 − 2 = 2 vectors.
    let mapping = Mapping::sequential(16);
    for (subdomain, expected) in [
        (vec![0u64, 1, 2, 3], 2),          // low 2 bits free
        (vec![0, 1], 3),                   // 1-subcube: 3 vectors
        (vec![0, 4, 8, 12], 2),            // bits 2,3 free
        (vec![0, 1, 2, 3, 4, 5, 6, 7], 1), // 3-subcube
    ] {
        assert!(check(&mapping, &subdomain).holds(), "{subdomain:?}");
        assert_eq!(
            achieved_cost(&mapping, &subdomain),
            expected,
            "{subdomain:?}"
        );
    }
}

#[test]
fn theorem_2_3_workload_optimum_is_additive() {
    // Figure 3(a)'s mapping is well-defined wrt both predicates, so the
    // workload cost equals the sum of per-predicate optima.
    let mapping = Mapping::from_pairs(&[
        (0, 0b000),
        (2, 0b001),
        (6, 0b010),
        (4, 0b011),
        (1, 0b100),
        (3, 0b101),
        (7, 0b110),
        (5, 0b111),
    ])
    .unwrap();
    let preds = vec![vec![0u64, 1, 2, 3], vec![2, 3, 4, 5]];
    let per_pred_optimum: usize = preds.iter().map(|p| optimal_cost(&mapping, p)).sum();
    assert_eq!(workload_cost(&mapping, &preds), per_pred_optimum);
    assert_eq!(per_pred_optimum, 2);
}

// ---------------------------------------------------------------------
// §3.1 — the c_e < c_s crossover at δ > log2|A| + 1, on real indexes.
// ---------------------------------------------------------------------

#[test]
fn crossover_delta_exceeds_log_m_plus_one() {
    let m = 64u64; // k = 6
    let cells: Vec<Cell> = (0..6400u64).map(|i| Cell::Value(i % m)).collect();
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    // For every δ beyond log2(m)+1 = 7, the encoded index must not lose.
    for delta in 8..=m {
        let sel: Vec<u64> = (0..delta).collect();
        let e = encoded.in_list(&sel).unwrap().stats.vectors_accessed;
        let s = simple.in_list(&sel).stats.vectors_accessed;
        assert!(e <= s, "δ={delta}: encoded {e} vs simple {s}");
    }
    // And for single-value selections the simple index wins (§3.1).
    let e1 = encoded.eq(0).unwrap().stats.vectors_accessed;
    let s1 = SelectionIndex::eq(&simple, 0).stats.vectors_accessed;
    assert!(s1 < e1, "point query: simple {s1} must beat encoded {e1}");
}
