//! Cross-family equivalence: every index implementation must return the
//! same answers to the same workload over the same data — the measured
//! backbone of every comparison in the paper.

use ebi::prelude::*;
use ebi::warehouse::generator::{generate_column, ColumnSpec};
use ebi::warehouse::workload::WorkloadSpec;

fn run_all(cells: &[Cell], m: u64, queries: usize, seed: u64) {
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let reserved = EncodedBitmapIndex::build_with(
        cells.iter().copied(),
        BuildOptions {
            policy: NullPolicy::EncodedReserved,
            mapping: None,
            ..Default::default()
        },
    )
    .unwrap();
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let sliced = BitSlicedIndex::build(cells.iter().copied());
    let dynamic = DynamicBitmapIndex::build(cells.iter().copied());
    let ranged = RangeBasedBitmapIndex::build(cells.iter().copied(), 8);
    let hybrid = HybridBTreeBitmapIndex::build(cells.iter().copied());
    let vlist = ValueListIndex::build_with(cells.iter().copied(), 16, 256);
    let projection = ProjectionIndex::build(cells.iter().copied(), 8);
    let compressed = ebi::baselines::CompressedEncodedIndex::build(cells.iter().copied());
    let multi = ebi::baselines::MultiComponentIndex::build(cells.iter().copied(), 8);

    let indexes: Vec<(&str, &dyn SelectionIndex)> = vec![
        ("encoded", &encoded),
        ("encoded-reserved", &reserved),
        ("simple", &simple),
        ("bit-sliced", &sliced),
        ("dynamic", &dynamic),
        ("range-based", &ranged),
        ("hybrid", &hybrid),
        ("value-list", &vlist),
        ("projection", &projection),
        ("compressed-encoded", &compressed),
        ("multi-component-b8", &multi),
    ];

    let workload = WorkloadSpec::tpcd_like("c", m, queries, seed).generate();
    for (qi, q) in workload.iter().enumerate() {
        let mut reference: Option<(String, Vec<usize>)> = None;
        for (name, idx) in &indexes {
            let r = match &q.predicate {
                Predicate::Eq(v) => idx.eq(*v),
                Predicate::InList(vs) => idx.in_list(vs),
                Predicate::Range(lo, hi) => idx.range(*lo, *hi),
            };
            let rows = r.bitmap.to_positions();
            match &reference {
                None => reference = Some(((*name).to_string(), rows)),
                Some((ref_name, expect)) => {
                    assert_eq!(
                        expect, &rows,
                        "query {qi} ({:?}): {name} disagrees with {ref_name}",
                        q.predicate
                    );
                }
            }
        }
        // Also verify the reference against a scan.
        let (_, expect) = reference.unwrap();
        let scanned: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.value().is_some_and(|v| q.predicate.matches(v)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(expect, scanned, "query {qi} disagrees with the scan");
    }
}

#[test]
fn all_families_agree_on_uniform_data() {
    let cells = generate_column(&ColumnSpec::uniform(64), 3_000, 0xE0);
    run_all(&cells, 64, 40, 0xE1);
}

#[test]
fn all_families_agree_on_skewed_data() {
    let cells = generate_column(&ColumnSpec::zipf(200, 1.0), 3_000, 0xE2);
    run_all(&cells, 200, 40, 0xE3);
}

#[test]
fn all_families_agree_with_nulls_present() {
    let cells = generate_column(&ColumnSpec::uniform(32).with_nulls_ppm(50_000), 2_000, 0xE4);
    run_all(&cells, 32, 30, 0xE5);
}

#[test]
fn all_families_agree_on_tiny_domains() {
    let cells = generate_column(&ColumnSpec::uniform(2), 500, 0xE6);
    run_all(&cells, 2, 20, 0xE7);
}

#[test]
fn deletion_consistency_across_policies_and_families() {
    let cells = generate_column(&ColumnSpec::uniform(20), 1_000, 0xE8);
    let mut encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let mut reserved = EncodedBitmapIndex::build_with(
        cells.iter().copied(),
        BuildOptions {
            policy: NullPolicy::EncodedReserved,
            mapping: None,
            ..Default::default()
        },
    )
    .unwrap();
    let mut simple = SimpleBitmapIndex::build(cells.iter().copied());
    let mut sliced = BitSlicedIndex::build(cells.iter().copied());
    let mut dead = vec![false; cells.len()];
    for row in (0..cells.len()).step_by(7) {
        encoded.delete(row).unwrap();
        reserved.delete(row).unwrap();
        simple.delete(row);
        sliced.delete(row);
        dead[row] = true;
    }
    for v in 0..20u64 {
        let expect: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|&(i, c)| !dead[i] && c.value() == Some(v))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            encoded.eq(v).unwrap().bitmap.to_positions(),
            expect,
            "encoded v={v}"
        );
        assert_eq!(
            reserved.eq(v).unwrap().bitmap.to_positions(),
            expect,
            "reserved v={v}"
        );
        assert_eq!(
            SelectionIndex::eq(&simple, v).bitmap.to_positions(),
            expect,
            "simple v={v}"
        );
        assert_eq!(
            SelectionIndex::eq(&sliced, v).bitmap.to_positions(),
            expect,
            "sliced v={v}"
        );
    }
}

#[test]
fn query_cost_shape_matches_the_paper() {
    // The headline shape on real data: for wide ranges the encoded index
    // touches ~log(m) vectors while the simple index touches δ.
    let m = 256u64;
    let cells = generate_column(&ColumnSpec::uniform(m), 20_000, 0xE9);
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    for delta in [16u64, 64, 128] {
        let sel: Vec<u64> = (0..delta).collect();
        let e = encoded.in_list(&sel).unwrap();
        let s = simple.in_list(&sel);
        assert_eq!(e.bitmap, s.bitmap);
        assert_eq!(s.stats.vectors_accessed as u64, delta, "c_s = δ");
        assert!(
            e.stats.vectors_accessed <= 8,
            "c_e ≤ k = 8, got {} at δ = {delta}",
            e.stats.vectors_accessed
        );
        assert!(
            e.stats.vectors_accessed < s.stats.vectors_accessed,
            "encoded must win at δ = {delta}"
        );
    }
}
