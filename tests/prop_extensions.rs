//! Property tests for the §5 extension modules: aggregates, the paged
//! query path, in-place updates, negation, re-encoding.

use ebi::core::aggregates::BitSlicedMeasure;
use ebi::core::paged::persist_and_open;
use ebi::core::reencoding::reencode;
use ebi::prelude::*;
use ebi::storage::pager::Pager;
use proptest::prelude::*;

fn cell_strategy(m: u64) -> impl Strategy<Value = Cell> {
    prop_oneof![
        9 => (0..m).prop_map(Cell::Value),
        1 => Just(Cell::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn aggregates_match_a_reference_scan(
        values in prop::collection::vec(prop::option::weighted(0.9, 0u64..5000), 1..300),
        filter_bits in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let n = values.len().min(filter_bits.len());
        let values = &values[..n];
        let filter: BitVec = filter_bits[..n].iter().copied().collect();
        let measure = BitSlicedMeasure::build(
            values.iter().map(|v| v.map_or(Cell::Null, Cell::Value)),
        );
        let mut qualifying: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| filter.bit(*i))
            .filter_map(|(_, v)| *v)
            .collect();
        qualifying.sort_unstable();

        prop_assert_eq!(
            measure.sum_where(&filter).value,
            qualifying.iter().map(|&v| u128::from(v)).sum::<u128>()
        );
        prop_assert_eq!(measure.count_where(&filter).value, qualifying.len());
        prop_assert_eq!(measure.min_where(&filter).value, qualifying.first().copied());
        prop_assert_eq!(measure.max_where(&filter).value, qualifying.last().copied());
        if !qualifying.is_empty() {
            let med = qualifying[(qualifying.len() - 1) / 2];
            prop_assert_eq!(measure.median_where(&filter).value, Some(med));
            for (q, &expect) in qualifying.iter().enumerate().take(5) {
                prop_assert_eq!(measure.kth_where(&filter, q).value, Some(expect));
            }
        } else {
            prop_assert_eq!(measure.median_where(&filter).value, None);
        }
    }

    #[test]
    fn paged_index_equals_in_memory_index(
        cells in prop::collection::vec(cell_strategy(20), 1..200),
        selection in prop::collection::vec(0u64..20, 1..6),
        pool in 1usize..64,
        page_size in prop::sample::select(vec![64usize, 128, 4096]),
    ) {
        let idx = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        let pager = Pager::with_page_size(page_size);
        let paged = persist_and_open(&idx, &pager, pool).unwrap();
        let a = idx.in_list(&selection).unwrap();
        let b = paged.in_list(&selection).unwrap();
        prop_assert_eq!(&a.bitmap, &b.bitmap);
        prop_assert_eq!(a.stats.vectors_accessed, b.stats.vectors_accessed);
        // Second run: identical regardless of cache state.
        let c = paged.in_list(&selection).unwrap();
        prop_assert_eq!(&a.bitmap, &c.bitmap);
    }

    #[test]
    fn updates_track_a_shadow_model(
        initial in prop::collection::vec(cell_strategy(10), 1..80),
        ops in prop::collection::vec(
            (any::<prop::sample::Index>(), prop::option::weighted(0.8, 0u64..25)),
            0..60
        ),
    ) {
        let mut idx = EncodedBitmapIndex::build(initial.iter().copied()).unwrap();
        let mut shadow: Vec<Cell> = initial.clone();
        for (pos, val) in &ops {
            let row = pos.index(shadow.len());
            let cell = val.map_or(Cell::Null, Cell::Value);
            idx.update(row, cell).unwrap();
            shadow[row] = cell;
        }
        for v in 0..25u64 {
            let expect: Vec<usize> = shadow
                .iter()
                .enumerate()
                .filter(|(_, c)| c.value() == Some(v))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(idx.eq(v).unwrap().bitmap.to_positions(), expect, "v={}", v);
        }
        let nulls: Vec<usize> = shadow
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_null())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(idx.is_null().bitmap.to_positions(), nulls);
    }

    #[test]
    fn negation_partitions_live_nonnull_rows(
        cells in prop::collection::vec(cell_strategy(12), 1..120),
        selection in prop::collection::vec(0u64..12, 0..5),
        deletes in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let mut idx = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        let mut dead = vec![false; cells.len()];
        for d in &deletes {
            let row = d.index(cells.len());
            idx.delete(row).unwrap();
            dead[row] = true;
        }
        let pos = idx.in_list(&selection).unwrap().bitmap;
        let neg = idx.not_in_list(&selection).unwrap().bitmap;
        prop_assert!(pos.is_disjoint(&neg), "IN and NOT IN overlap");
        let union = &pos | &neg;
        for (row, cell) in cells.iter().enumerate() {
            let live_value = !dead[row] && cell.value().is_some();
            prop_assert_eq!(union.bit(row), live_value, "row {}", row);
        }
    }

    #[test]
    fn reencoding_to_any_bijection_preserves_semantics(
        cells in prop::collection::vec(cell_strategy(8), 1..100),
        perm_seed in any::<u64>(),
    ) {
        let idx = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        // Random permutation of the mapped codes at the same width.
        let values: Vec<u64> = idx.mapping().iter().map(|(v, _)| v).collect();
        let space: Vec<u64> = (0..(1u64 << idx.width())).collect();
        let mut codes = space;
        let mut state = perm_seed | 1;
        for i in (1..codes.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            codes.swap(i, (state as usize) % (i + 1));
        }
        let mut new_mapping = Mapping::new(idx.width());
        for (v, c) in values.iter().zip(&codes) {
            new_mapping.insert(*v, *c).unwrap();
        }
        let rebuilt = reencode(&idx, new_mapping).unwrap();
        for &v in &values {
            prop_assert_eq!(
                rebuilt.eq(v).unwrap().bitmap,
                idx.eq(v).unwrap().bitmap,
                "value {}", v
            );
        }
        prop_assert_eq!(rebuilt.is_null().bitmap, idx.is_null().bitmap);
    }
}
