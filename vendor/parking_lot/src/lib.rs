//! Offline shim of the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives and strips lock poisoning (parking_lot
//! has none): a lock held by a panicked thread is simply re-acquired.

use std::sync::PoisonError;

/// Mutual exclusion lock with `parking_lot`'s unpoisoned `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s unpoisoned accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
