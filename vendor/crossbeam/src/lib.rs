//! Offline shim of the `crossbeam` API surface this workspace uses:
//! `crossbeam::thread::scope` + `Scope::spawn`, implemented on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantic difference from real crossbeam: a panicking worker makes
//! `std::thread::scope` resume the panic at scope exit instead of
//! returning `Err`, so the `Result` returned here is always `Ok` and the
//! usual `.expect("worker thread panicked")` at call sites still reports
//! worker panics — as a propagated panic rather than an `Err`.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning further scoped threads (mirrors
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives the scope (crossbeam
        /// convention) so it can spawn nested workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all workers are joined before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see the crate docs for the panic-propagation
    /// difference from real crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        crate::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = v * 10;
                });
            }
        })
        .expect("workers joined");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
