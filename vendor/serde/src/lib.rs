//! Offline shim of the `serde` trait skeleton.
//!
//! The real serde models serialisation as a 30-method visitor protocol;
//! this shim collapses it to a single self-describing [`Value`] tree,
//! which is all the workspace's hand-written impls need. The trait
//! *shapes* (`Serialize::serialize<S: Serializer>`, associated
//! `Ok`/`Error` types, `de::Error::custom`) match serde's so impls stay
//! source-compatible with the real crate, but third-party `Serializer`
//! implementations obviously cannot plug in.
//!
//! No derive macro is provided; the `derive` feature exists only so the
//! workspace manifest keys keep resolving.

use std::fmt::Display;

/// A self-describing serialised value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Homogeneous or heterogeneous sequence.
    Seq(Vec<Value>),
    /// Struct / map: ordered field-name → value pairs.
    Map(Vec<(&'static str, Value)>),
    /// Absent optional.
    None,
}

/// Serialisable types.
pub trait Serialize {
    /// Writes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Output sinks for serialisation (shim: one entry point taking the
/// complete [`Value`] tree).
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Failure type.
    type Error: de::Error;

    /// Consumes a complete value tree.
    ///
    /// # Errors
    ///
    /// Sink-specific.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Deserialisable types.
pub trait Deserialize<'de>: Sized {
    /// Reads a value of `Self` out of `deserializer`.
    ///
    /// # Errors
    ///
    /// Malformed or mistyped input.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Input sources for deserialisation (shim: one entry point yielding the
/// complete [`Value`] tree).
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error: de::Error;

    /// Produces the complete value tree.
    ///
    /// # Errors
    ///
    /// Source-specific.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

pub mod de {
    //! Deserialisation error plumbing.

    use std::fmt::Display;

    /// Errors constructible from a message — serde's `de::Error`.
    pub trait Error: Sized + Display {
        /// Builds an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// String-backed error usable as both `ser` and `de` error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleError(pub String);

impl Display for SimpleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl de::Error for SimpleError {
    fn custom<T: Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

/// In-memory serializer: captures the [`Value`] tree.
#[derive(Debug, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SimpleError;

    fn serialize_value(self, value: Value) -> Result<Value, SimpleError> {
        Ok(value)
    }
}

/// In-memory deserializer: replays a captured [`Value`] tree.
#[derive(Debug)]
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = SimpleError;

    fn deserialize_value(self) -> Result<Value, SimpleError> {
        Ok(self.0)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::U64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for Vec<u64> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(|&w| Value::U64(w)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_through_sinks() {
        let v = Value::Map(vec![
            ("len", Value::U64(9)),
            ("words", Value::Seq(vec![Value::U64(0b1_0110_1011)])),
        ]);
        let captured = ValueSerializer.serialize_value(v.clone()).unwrap();
        let replayed = ValueDeserializer(captured).deserialize_value().unwrap();
        assert_eq!(replayed, v);
    }

    #[test]
    fn custom_error_carries_message() {
        use de::Error as _;
        let e = SimpleError::custom(format!("bad {}", 7));
        assert_eq!(e.to_string(), "bad 7");
    }
}
