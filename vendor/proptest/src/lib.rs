//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` macro, the strategy combinators the test
//! suite calls (`any`, integer ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!`, `prop::collection::{vec, btree_set, btree_map}`,
//! `prop::option::weighted`, `prop::sample::{select, Index}`) and the
//! `prop_assert*` macros, over a deterministic seeded generator.
//!
//! Differences from real proptest:
//! * **no shrinking** — a failing case reports the panic from the raw
//!   sampled input (the case seed is deterministic per test name, so
//!   failures still reproduce exactly);
//! * `prop_assert*` panic instead of returning `Err`, which the libtest
//!   harness reports identically;
//! * case counts honour `ProptestConfig::with_cases` but no other config
//!   fields exist.

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// FNV-1a hash, used to derive per-test seeds from test names.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Failure type of proptest test-case closures. The shim's
/// `prop_assert*` macros panic instead of returning this, but bodies may
/// still `return Ok(())` early or construct one explicitly.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A hard test failure carrying `msg`.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (shim of `proptest::strategy::Strategy`;
/// sampling only, no value tree / shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` by resampling (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for &S {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
#[must_use]
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical full-domain strategy (shim of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<A> {
    _marker: core::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The full-domain strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Weighted union of boxed strategies (backing for `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms.last().expect("prop_oneof! needs arms").1.sample(rng)
    }
}

/// Builds a [`Union`] from weighted boxed arms.
#[must_use]
pub fn weighted_union<V>(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// Collection size bounds, convertible from integer ranges of any int
/// type (mirrors proptest's `Into<SizeRange>` parameters, so bare `1..20`
/// i32 literals work).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

macro_rules! size_range_from {
    ($($t:ty),*) => {$(
        impl From<core::ops::Range<$t>> for SizeRange {
            fn from(r: core::ops::Range<$t>) -> Self {
                Self { lo: r.start as usize, hi: r.end as usize }
            }
        }
        impl From<core::ops::RangeInclusive<$t>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<$t>) -> Self {
                Self { lo: *r.start() as usize, hi: *r.end() as usize + 1 }
            }
        }
    )*};
}
size_range_from!(u8, u16, u32, u64, usize, i32, i64);

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// `Vec` of `elem` values with length drawn from `size`.
    pub fn vec<E: Strategy>(elem: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        elem: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of `elem` values; resamples duplicates (bounded), so a
    /// small element domain may yield fewer than the requested size.
    pub fn btree_set<E>(elem: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<E> {
        elem: E,
        size: SizeRange,
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n * 10 + 100 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.elem.sample(rng));
            }
            out
        }
    }

    /// `BTreeMap` with `key`/`value` entries; like [`btree_set`], the
    /// realised size may fall short on tiny key domains.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n * 10 + 100 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// `Some(value)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&p), "weight {p} out of [0,1]");
        Weighted { p, inner }
    }

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.p {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, Strategy, TestRng};

    /// An index into a runtime-sized collection: sampled as a raw word,
    /// reduced against the collection's length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of `len` items.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`, matching proptest.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniformly selects one of `items`.
    pub fn select<T: Clone + 'static>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty items");
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Everything tests normally import.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Runs `#[test]` functions over sampled inputs; see the crate docs for
/// the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::TestRng::new(
                        __seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(__case + 1),
                    );
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    // Bodies may `return Ok(())` early, matching real
                    // proptest's Result-returning test closures.
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = __outcome {
                        panic!("proptest case {__case} failed: {e:?}");
                    }
                }
            }
        )*
    };
}

/// `assert!` under proptest's name (no shrink-and-report machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails (early-returns from
/// the generated per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::weighted_union(vec![ $( (($weight) as u32, $crate::boxed($strat)) ),+ ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::weighted_union(vec![ $( (1u32, $crate::boxed($strat)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = prop::collection::vec(0u64..10, 5..8);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expansion_samples_args(x in 0usize..50, flips in prop::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 50);
            prop_assert!(flips.len() < 10);
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let a = fnv1a("x::y");
        let b = fnv1a("x::y");
        assert_eq!(a, b);
        assert_ne!(a, fnv1a("x::z"));
    }

    use super::{fnv1a, Strategy};
}
