//! Offline shim of the `criterion` benchmarking API.
//!
//! Supports the subset this workspace's benches use: `criterion_group!`
//! / `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, throughput,
//! sample_size, warm_up_time, measurement_time, finish}`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `Throughput`,
//! `BatchSize` and `black_box`.
//!
//! Behaviour: when the harness is invoked with `--bench` on the command
//! line (what `cargo bench` does), each routine is warmed up and timed
//! over a fixed number of iterations and a `name ... time: [median]`
//! line is printed. Otherwise (`cargo test` compiling the bench target)
//! each routine runs exactly once as a smoke test. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured iterations per routine in bench mode.
const BENCH_ITERS: u32 = 10;
/// Warm-up iterations per routine in bench mode.
const WARMUP_ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench`; `cargo test`
        // invokes it with `--test` (or nothing under older harnesses).
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self { bench_mode }
    }
}

impl Criterion {
    /// Runs (or times) a single routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self.bench_mode, id, &mut f);
        self
    }

    /// Opens a named group of related routines.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            bench_mode: self.bench_mode,
            _parent: self,
        }
    }

    /// Configures sample count (accepted and ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// A group of related benchmark routines sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    bench_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Configures sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Configures warm-up time (ignored; the shim uses a fixed warm-up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Configures measurement time (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the input size for throughput lines (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a routine under `group/id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.bench_mode, &label, &mut f);
        self
    }

    /// Runs a routine with a borrowed input under `group/id`.
    pub fn bench_with_input<I, A: ?Sized, F: FnMut(&mut Bencher, &A)>(
        &mut self,
        id: I,
        input: &A,
        mut f: F,
    ) -> &mut Self
    where
        I: Into<BenchmarkId>,
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.bench_mode, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one routine within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{parameter}", function_name.into()))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Declared work-per-iteration, for ns/elem style reporting (ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh batch every iteration.
    PerIteration,
}

/// Passed to each routine; records elapsed time of the timed closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    bench_mode: bool,
}

impl Bencher {
    /// Times `routine` (once in test mode, repeatedly in bench mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = if self.bench_mode { WARMUP_ITERS + BENCH_ITERS } else { 1 };
        for i in 0..iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            if !self.bench_mode || i >= WARMUP_ITERS {
                self.samples.push(dt);
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let iters = if self.bench_mode { WARMUP_ITERS + BENCH_ITERS } else { 1 };
        for i in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            if !self.bench_mode || i >= WARMUP_ITERS {
                self.samples.push(dt);
            }
        }
    }
}

fn run_one(bench_mode: bool, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        bench_mode,
    };
    f(&mut b);
    if bench_mode {
        b.samples.sort();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!("{label:<50} time: [{median:?} median of {}]", b.samples.len());
    }
}

/// Declares a group function invoking each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_routine_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            bench_mode: true,
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, WARMUP_ITERS + BENCH_ITERS);
        assert_eq!(b.samples.len(), BENCH_ITERS as usize);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("eval", 1_000_000);
        assert_eq!(id.0, "eval/1000000");
        let id = BenchmarkId::from_parameter("10M");
        assert_eq!(id.0, "10M");
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion { bench_mode: false };
        let mut setups = 0;
        let mut runs = 0;
        c.benchmark_group("g").bench_function("x", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| runs += 1,
                BatchSize::LargeInput,
            )
        });
        assert_eq!((setups, runs), (1, 1));
    }
}
