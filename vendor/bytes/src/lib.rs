//! Offline shim of the `bytes` crate API surface this workspace uses:
//! [`Bytes`] / [`BytesMut`] plus the [`Buf`] / [`BufMut`] cursor traits,
//! restricted to the little-endian `u64` accessors the bitmap
//! serialisation layer needs. Backed by a plain `Vec<u8>` — no
//! reference-counted zero-copy slicing, which nothing here relies on.

use std::ops::Deref;

/// Read cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a little-endian `u64`, advancing the cursor.
    ///
    /// Panics if fewer than 8 bytes remain, matching `bytes`.
    fn get_u64_le(&mut self) -> u64;
}

/// Write cursor over a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

/// Immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: data.to_vec(),
            cursor: 0,
        }
    }

    /// Unread bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// `true` if no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.cursor..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, cursor: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            cursor: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u64_le(&mut self) -> u64 {
        let end = self.cursor + 8;
        assert!(end <= self.data.len(), "get_u64_le past end of buffer");
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.data[self.cursor..end]);
        self.cursor = end;
        u64::from_le_bytes(raw)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            cursor: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(42);
        buf.put_u64_le(u64::MAX);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 16);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert!(b.is_empty());
    }

    #[test]
    fn deref_sees_unread_tail() {
        let mut b = Bytes::from(vec![1, 0, 0, 0, 0, 0, 0, 0, 9]);
        assert_eq!(b.get_u64_le(), 1);
        assert_eq!(&b[..], &[9]);
        assert_eq!(b.to_vec(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn short_read_panics() {
        let mut b = Bytes::from_static(&[1, 2, 3]);
        let _ = b.get_u64_le();
    }
}
