//! Offline shim of the `rand` 0.9 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of exactly the
//! pieces it consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random`,
//! `random_range`, `random_ratio` and `random_bool`.
//!
//! The generator is SplitMix64 — statistically fine for test-data
//! generation and benchmarks, deterministic for a given seed, but **not**
//! the same stream as the real `StdRng` (ChaCha12). Anything asserting
//! exact values drawn from a seeded generator will differ from runs made
//! against the real crate.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from raw generator output
/// (the shim's stand-in for `rand`'s `StandardUniform` distribution).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
range_impl!(u8, u16, u32, u64, usize);

macro_rules! range_impl_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_impl_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s full domain (`[0, 1)` for floats).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic seeded generator (SplitMix64 under the hood — not
    /// the real `StdRng` stream; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Pre-mix so nearby seeds do not yield nearby streams.
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

/// One ad-hoc random value, seeded from the system clock.
pub fn random<T: UniformSample>() -> T {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x1234_5678);
    let mut rng = <rngs::StdRng as SeedableRng>::seed_from_u64(nanos);
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ratio_is_roughly_proportional() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
