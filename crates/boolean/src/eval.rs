//! Evaluating retrieval expressions over bitmap slices.
//!
//! Given the `k` bitmap vectors `B_{k-1} … B_0` of an encoded bitmap index
//! and a reduced retrieval expression, evaluation produces the selection
//! bitmap: each product term ANDs together its slices (negated where the
//! literal is `B_i'`), and the terms are ORed.
//!
//! Evaluation is **fused**: instead of materialising a `BitVec` per
//! operation, each product term streams through the
//! [`ebi_bitvec::kernels`] in 4096-row segments with a stack-resident
//! accumulator, OR-ing finished segments straight into the destination.
//! With per-slice [`SegmentSummary`] data the kernels additionally skip
//! whole segments without reading a word. The original operator-at-a-time
//! evaluator is kept as [`eval_expr_naive`] as a differential-testing
//! oracle; both produce bit-identical results.
//!
//! [`AccessTracker`] records the paper's cost metric while doing so: the
//! set of *distinct bitmap vectors touched* (footnote 4 — "the number of
//! bitmaps which need to be accessed is considered as one" per vector,
//! however many literals reference it), plus secondary counters. Fusing
//! does not change `vectors_accessed`: every slice a cube references is
//! counted up front, whether or not segment pruning ends up reading it —
//! the metric models which vectors must be *fetched*, and pruning needs
//! the summary (fetched alongside the vector's metadata) either way.

use crate::expr::DnfExpr;
use ebi_bitvec::kernels::{self, KernelStats, Literal, StoredLiteral};
use ebi_bitvec::{BitVec, SegmentSummary, SliceStorage};

/// Errors from expression-evaluation bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// A slice index beyond the tracker's 64-vector mask was touched.
    SliceIndexOutOfRange {
        /// The offending slice index.
        index: u32,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SliceIndexOutOfRange { index } => {
                write!(f, "slice index {index} exceeds the 64-vector tracker limit")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Cost counters for one or more expression evaluations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTracker {
    /// Bitmask of slice indices touched.
    touched: u64,
    /// Product terms evaluated.
    pub cube_evals: usize,
    /// Literal operations performed (one AND or NOT-AND per literal).
    pub literal_ops: usize,
    /// OR operations joining product terms.
    pub or_ops: usize,
    /// Bitmap words actually read from slice storage by the fused
    /// kernels (the naive evaluator does not report this).
    pub words_scanned: u64,
    /// Storage bytes examined: 8 per dense word plus every compressed
    /// container byte the stored-slice kernels inspected.
    pub bytes_touched: u64,
    /// Compressed windows classified uniform (all-zero / all-one) from
    /// container metadata, skipping materialisation entirely.
    pub compressed_chunks_skipped: u64,
    /// (term, segment) pairs skipped via segment summaries before any
    /// word was read.
    pub segments_pruned: u64,
    /// (term, segment) pairs abandoned mid-term when the accumulator
    /// went all-zero.
    pub segments_short_circuited: u64,
    /// Kernel entries that ran the scalar word-pass tier.
    pub dispatch_scalar: u64,
    /// Kernel entries that ran the portable vector tier.
    pub dispatch_portable: u64,
    /// Kernel entries that ran the AVX2 intrinsic tier.
    pub dispatch_avx2: u64,
}

impl AccessTracker {
    /// Fresh tracker with all counters zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct bitmap vectors accessed so far — the paper's
    /// `c_e` / `c_s`.
    #[must_use]
    pub fn vectors_accessed(&self) -> usize {
        self.touched.count_ones() as usize
    }

    /// Bitmask of accessed slice indices.
    #[must_use]
    pub fn touched_mask(&self) -> u64 {
        self.touched
    }

    /// Merges another tracker's counters into this one.
    pub fn merge(&mut self, other: &AccessTracker) {
        self.touched |= other.touched;
        self.cube_evals += other.cube_evals;
        self.literal_ops += other.literal_ops;
        self.or_ops += other.or_ops;
        self.words_scanned += other.words_scanned;
        self.bytes_touched += other.bytes_touched;
        self.compressed_chunks_skipped += other.compressed_chunks_skipped;
        self.segments_pruned += other.segments_pruned;
        self.segments_short_circuited += other.segments_short_circuited;
        self.dispatch_scalar += other.dispatch_scalar;
        self.dispatch_portable += other.dispatch_portable;
        self.dispatch_avx2 += other.dispatch_avx2;
    }

    /// Folds fused-kernel work counters into the tracker.
    pub fn absorb_kernel_stats(&mut self, stats: &KernelStats) {
        self.words_scanned += stats.words_scanned;
        self.bytes_touched += stats.bytes_touched;
        self.compressed_chunks_skipped += stats.compressed_chunks_skipped;
        self.segments_pruned += stats.segments_pruned;
        self.segments_short_circuited += stats.segments_short_circuited;
        self.dispatch_scalar += stats.dispatch_scalar;
        self.dispatch_portable += stats.dispatch_portable;
        self.dispatch_avx2 += stats.dispatch_avx2;
    }

    /// Name of the dominant kernel tier the absorbed evaluations ran
    /// (`"scalar"` / `"portable"` / `"avx2"`), or `"none"` when no
    /// fused-kernel entry was recorded (e.g. the naive evaluator).
    /// Mirrors [`KernelStats::kernel_path`].
    #[must_use]
    pub fn kernel_path(&self) -> &'static str {
        let proxy = KernelStats {
            dispatch_scalar: self.dispatch_scalar,
            dispatch_portable: self.dispatch_portable,
            dispatch_avx2: self.dispatch_avx2,
            ..KernelStats::default()
        };
        proxy.kernel_path()
    }

    /// Records a touch of slice `i` (used by index implementations for
    /// vectors read outside expression evaluation, e.g. existence
    /// bitmaps).
    ///
    /// The tracker stores touches in a 64-bit mask, so only slice
    /// indices `0..64` are representable — matching the evaluator's own
    /// `k ≤ 64` limit (an encoded bitmap index needs `k = ⌈log₂ m⌉`
    /// slices, and `k > 64` would require more than `2^64` attribute
    /// values).
    ///
    /// # Panics
    ///
    /// Panics on `i >= 64` in **all** build profiles. Out-of-range
    /// indices used to be a debug-only assertion that release builds
    /// silently ignored, which let a miscounting caller ship; callers
    /// that want to handle the limit gracefully use [`Self::try_touch`].
    pub fn touch(&mut self, i: u32) {
        if let Err(e) = self.try_touch(i) {
            panic!("{e}");
        }
    }

    /// Fallible variant of [`Self::touch`]: records a touch of slice
    /// `i`, or reports [`EvalError::SliceIndexOutOfRange`] when `i` does
    /// not fit the 64-vector mask.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::SliceIndexOutOfRange`] when `i >= 64`.
    pub fn try_touch(&mut self, i: u32) -> Result<(), EvalError> {
        if i >= 64 {
            return Err(EvalError::SliceIndexOutOfRange { index: i });
        }
        self.touched |= 1 << i;
        Ok(())
    }
}

/// A retrieval expression lowered onto fused-kernel literals, ready for
/// (possibly parallel) evaluation over word ranges.
///
/// The plan borrows the slices (and optional summaries) immutably, so a
/// single plan can be shared by many threads each filling a disjoint
/// window of the destination via [`FusedPlan::eval_range`]; results are
/// bit-identical to [`FusedPlan::eval`] over the whole vector.
#[derive(Debug, Clone)]
pub struct FusedPlan<'a> {
    terms: Vec<Vec<Literal<'a>>>,
    row_count: usize,
}

impl<'a> FusedPlan<'a> {
    /// Lowers `expr` over `slices` without segment summaries.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `row_count` or the
    /// expression references a slice index `>= slices.len()`.
    #[must_use]
    pub fn new(expr: &DnfExpr, slices: &'a [BitVec], row_count: usize) -> Self {
        Self::build(expr, slices, None, row_count)
    }

    /// Lowers `expr` with per-slice summaries enabling whole-segment
    /// pruning. `summaries[i]` must describe `slices[i]`.
    ///
    /// # Panics
    ///
    /// As [`FusedPlan::new`], plus if `summaries.len() != slices.len()`.
    #[must_use]
    pub fn with_summaries(
        expr: &DnfExpr,
        slices: &'a [BitVec],
        summaries: &'a [SegmentSummary],
        row_count: usize,
    ) -> Self {
        assert_eq!(
            summaries.len(),
            slices.len(),
            "one summary per slice required"
        );
        Self::build(expr, slices, Some(summaries), row_count)
    }

    fn build(
        expr: &DnfExpr,
        slices: &'a [BitVec],
        summaries: Option<&'a [SegmentSummary]>,
        row_count: usize,
    ) -> Self {
        for s in slices {
            assert_eq!(s.len(), row_count, "slice length != row count");
        }
        assert!(
            expr.support() >> slices.len().min(63) == 0 || slices.len() >= 64,
            "expression references slice beyond the {} provided",
            slices.len()
        );
        let terms = expr
            .cubes()
            .iter()
            .map(|cube| {
                (0..64u32)
                    .filter(|i| cube.mask() >> i & 1 == 1)
                    .map(|i| {
                        let negated = cube.value() >> i & 1 == 0;
                        let slice = &slices[i as usize];
                        match summaries {
                            Some(sums) => Literal::with_summary(slice, negated, &sums[i as usize]),
                            None => Literal::new(slice, negated),
                        }
                    })
                    .collect()
            })
            .collect();
        Self { terms, row_count }
    }

    /// Rows covered by the plan.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Upper bound on the kernel word traffic evaluating this plan will
    /// generate, net of summary pruning — what a parallel splitter
    /// should weigh instead of raw row count, since a heavily pruned
    /// plan does far less work than its rows suggest.
    #[must_use]
    pub fn estimated_work_words(&self) -> u64 {
        kernels::estimate_dnf_work_words(&self.terms, self.row_count)
    }

    /// Records the paper's access metrics for evaluating this plan's
    /// expression: one `cube_eval` and its literal touches per product
    /// term, one `or_op` per term beyond the first. Identical to what
    /// the naive evaluator records — fusing changes how words are read,
    /// not which vectors are accessed.
    pub fn record_access(expr: &DnfExpr, tracker: &mut AccessTracker) {
        for cube in expr.cubes() {
            tracker.cube_evals += 1;
            for i in 0..64u32 {
                if cube.mask() >> i & 1 == 1 {
                    tracker.touch(i);
                    tracker.literal_ops += 1;
                }
            }
        }
        tracker.or_ops += expr.cubes().len().saturating_sub(1);
    }

    /// Evaluates the whole plan into a fresh selection bitmap.
    #[must_use]
    pub fn eval(&self, stats: &mut KernelStats) -> BitVec {
        kernels::eval_dnf(&self.terms, self.row_count, stats)
    }

    /// Evaluates the plan into `dst`, a **zeroed** window covering words
    /// `word_offset ..` of the selection bitmap. `word_offset` must be
    /// segment-aligned. Disjoint windows compose to the exact
    /// whole-vector result.
    ///
    /// # Panics
    ///
    /// As [`ebi_bitvec::kernels::eval_dnf_range`].
    pub fn eval_range(&self, dst: &mut [u64], word_offset: usize, stats: &mut KernelStats) {
        kernels::eval_dnf_range(dst, word_offset, self.row_count, &self.terms, stats);
    }
}

/// A retrieval expression lowered over adaptively stored slices
/// ([`SliceStorage`]): the storage-aware counterpart of [`FusedPlan`].
///
/// When every slice the expression references is stored dense, the plan
/// degenerates to the exact [`FusedPlan`] literal layout, so all-dense
/// indexes pay nothing for the indirection. Otherwise product terms are
/// lowered onto [`StoredLiteral`]s and evaluated compressed-domain:
/// Roaring / WAH slices materialise 64-word windows on demand, and
/// uniform windows resolve whole (term, segment) pairs from container
/// metadata without decompression.
///
/// Like [`FusedPlan`], the plan borrows slices and summaries immutably
/// and supports disjoint-window range evaluation for parallel callers.
/// The paper's access metric is storage-independent:
/// [`FusedPlan::record_access`] applies unchanged.
#[derive(Debug, Clone)]
pub struct StoredPlan<'a> {
    inner: StoredPlanInner<'a>,
}

#[derive(Debug, Clone)]
enum StoredPlanInner<'a> {
    /// Every referenced slice is dense: reuse the dense fused kernels.
    Dense(FusedPlan<'a>),
    /// At least one referenced slice is compressed.
    Mixed {
        terms: Vec<Vec<StoredLiteral<'a>>>,
        row_count: usize,
    },
}

impl<'a> StoredPlan<'a> {
    /// Lowers `expr` over stored `slices` without segment summaries.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `row_count` or the
    /// expression references a slice index `>= slices.len()`.
    #[must_use]
    pub fn new(expr: &DnfExpr, slices: &'a [SliceStorage], row_count: usize) -> Self {
        Self::build(expr, slices, None, row_count)
    }

    /// Lowers `expr` with per-slice summaries enabling whole-segment
    /// pruning. `summaries[i]` must describe `slices[i]`.
    ///
    /// # Panics
    ///
    /// As [`StoredPlan::new`], plus if `summaries.len() != slices.len()`.
    #[must_use]
    pub fn with_summaries(
        expr: &DnfExpr,
        slices: &'a [SliceStorage],
        summaries: &'a [SegmentSummary],
        row_count: usize,
    ) -> Self {
        assert_eq!(
            summaries.len(),
            slices.len(),
            "one summary per slice required"
        );
        Self::build(expr, slices, Some(summaries), row_count)
    }

    fn build(
        expr: &DnfExpr,
        slices: &'a [SliceStorage],
        summaries: Option<&'a [SegmentSummary]>,
        row_count: usize,
    ) -> Self {
        for s in slices {
            assert_eq!(s.len(), row_count, "slice length != row count");
        }
        assert!(
            expr.support() >> slices.len().min(63) == 0 || slices.len() >= 64,
            "expression references slice beyond the {} provided",
            slices.len()
        );
        let all_dense = (0..64u32)
            .filter(|i| expr.support() >> i & 1 == 1)
            .all(|i| slices[i as usize].as_dense().is_some());
        if all_dense {
            // Borrow the dense views directly; unreferenced compressed
            // slices are irrelevant to the plan.
            let terms = expr
                .cubes()
                .iter()
                .map(|cube| {
                    (0..64u32)
                        .filter(|i| cube.mask() >> i & 1 == 1)
                        .map(|i| {
                            let negated = cube.value() >> i & 1 == 0;
                            let slice = slices[i as usize].as_dense().expect("checked dense above");
                            match summaries {
                                Some(sums) => {
                                    Literal::with_summary(slice, negated, &sums[i as usize])
                                }
                                None => Literal::new(slice, negated),
                            }
                        })
                        .collect()
                })
                .collect();
            return Self {
                inner: StoredPlanInner::Dense(FusedPlan { terms, row_count }),
            };
        }
        let terms = expr
            .cubes()
            .iter()
            .map(|cube| {
                (0..64u32)
                    .filter(|i| cube.mask() >> i & 1 == 1)
                    .map(|i| {
                        let negated = cube.value() >> i & 1 == 0;
                        let slice = &slices[i as usize];
                        match summaries {
                            Some(sums) => {
                                StoredLiteral::with_summary(slice, negated, &sums[i as usize])
                            }
                            None => StoredLiteral::new(slice, negated),
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            inner: StoredPlanInner::Mixed { terms, row_count },
        }
    }

    /// Rows covered by the plan.
    #[must_use]
    pub fn row_count(&self) -> usize {
        match &self.inner {
            StoredPlanInner::Dense(p) => p.row_count,
            StoredPlanInner::Mixed { row_count, .. } => *row_count,
        }
    }

    /// Whether the plan resolved to the all-dense fast path.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        matches!(self.inner, StoredPlanInner::Dense(_))
    }

    /// Upper bound on the kernel word traffic evaluating this plan will
    /// generate, net of summary pruning; see
    /// [`FusedPlan::estimated_work_words`].
    #[must_use]
    pub fn estimated_work_words(&self) -> u64 {
        match &self.inner {
            StoredPlanInner::Dense(p) => p.estimated_work_words(),
            StoredPlanInner::Mixed { terms, row_count } => {
                kernels::estimate_stored_dnf_work_words(terms, *row_count)
            }
        }
    }

    /// Evaluates the whole plan into a fresh selection bitmap.
    #[must_use]
    pub fn eval(&self, stats: &mut KernelStats) -> BitVec {
        match &self.inner {
            StoredPlanInner::Dense(p) => p.eval(stats),
            StoredPlanInner::Mixed { terms, row_count } => {
                kernels::eval_dnf_stored(terms, *row_count, stats)
            }
        }
    }

    /// Evaluates the plan into `dst`, a **zeroed** window covering words
    /// `word_offset ..` of the selection bitmap. `word_offset` must be
    /// segment-aligned; disjoint windows compose to the exact
    /// whole-vector result.
    ///
    /// # Panics
    ///
    /// As [`ebi_bitvec::kernels::eval_dnf_stored_range`].
    pub fn eval_range(&self, dst: &mut [u64], word_offset: usize, stats: &mut KernelStats) {
        match &self.inner {
            StoredPlanInner::Dense(p) => p.eval_range(dst, word_offset, stats),
            StoredPlanInner::Mixed { terms, row_count } => {
                kernels::eval_dnf_stored_range(dst, word_offset, *row_count, terms, stats);
            }
        }
    }
}

/// Evaluates `expr` over adaptively stored slices, recording cost in
/// `tracker`. Storage-aware counterpart of [`eval_expr_tracked`] /
/// [`eval_expr_summarized`]: pass `Some(summaries)` to enable
/// whole-segment pruning. `vectors_accessed` is identical whatever the
/// per-slice container choice.
///
/// # Panics
///
/// As [`StoredPlan::new`] / [`StoredPlan::with_summaries`].
#[must_use]
pub fn eval_expr_stored(
    expr: &DnfExpr,
    slices: &[SliceStorage],
    summaries: Option<&[SegmentSummary]>,
    row_count: usize,
    tracker: &mut AccessTracker,
) -> BitVec {
    let plan = match summaries {
        Some(sums) => StoredPlan::with_summaries(expr, slices, sums, row_count),
        None => StoredPlan::new(expr, slices, row_count),
    };
    FusedPlan::record_access(expr, tracker);
    let mut stats = KernelStats::new();
    let result = plan.eval(&mut stats);
    tracker.absorb_kernel_stats(&stats);
    result
}

/// Evaluates `expr` over `slices` (slice `i` = bitmap vector `B_i`),
/// returning the selection bitmap of length `row_count`.
///
/// # Panics
///
/// Panics if the expression references a slice index `>= slices.len()`,
/// or the slices have differing lengths.
#[must_use]
pub fn eval_expr(expr: &DnfExpr, slices: &[BitVec], row_count: usize) -> BitVec {
    let mut tracker = AccessTracker::new();
    eval_expr_tracked(expr, slices, row_count, &mut tracker)
}

/// Like [`eval_expr`] but records cost in `tracker`.
#[must_use]
pub fn eval_expr_tracked(
    expr: &DnfExpr,
    slices: &[BitVec],
    row_count: usize,
    tracker: &mut AccessTracker,
) -> BitVec {
    let plan = FusedPlan::new(expr, slices, row_count);
    FusedPlan::record_access(expr, tracker);
    let mut stats = KernelStats::new();
    let result = plan.eval(&mut stats);
    tracker.absorb_kernel_stats(&stats);
    result
}

/// Like [`eval_expr_tracked`] but consults per-slice segment summaries
/// so whole segments can be pruned before any bitmap word is read.
/// `summaries[i]` must describe `slices[i]` (see
/// [`ebi_bitvec::summary::summarize_slices`]).
///
/// # Panics
///
/// As [`eval_expr_tracked`], plus if the summary count or lengths
/// disagree with the slices.
#[must_use]
pub fn eval_expr_summarized(
    expr: &DnfExpr,
    slices: &[BitVec],
    summaries: &[SegmentSummary],
    row_count: usize,
    tracker: &mut AccessTracker,
) -> BitVec {
    let plan = FusedPlan::with_summaries(expr, slices, summaries, row_count);
    FusedPlan::record_access(expr, tracker);
    let mut stats = KernelStats::new();
    let result = plan.eval(&mut stats);
    tracker.absorb_kernel_stats(&stats);
    result
}

/// The original operator-at-a-time evaluator: clones / negates the first
/// literal of each term, ANDs the rest in whole-vector passes, ORs terms.
///
/// Kept as the differential-testing oracle for the fused path (and as
/// the baseline in the evaluation benchmarks); results are always
/// bit-identical to [`eval_expr`].
///
/// # Panics
///
/// As [`eval_expr`].
#[must_use]
pub fn eval_expr_naive(expr: &DnfExpr, slices: &[BitVec], row_count: usize) -> BitVec {
    for s in slices {
        assert_eq!(s.len(), row_count, "slice length != row count");
    }
    assert!(
        expr.support() >> slices.len().min(63) == 0 || slices.len() >= 64,
        "expression references slice beyond the {} provided",
        slices.len()
    );

    let mut result: Option<BitVec> = None;
    for cube in expr.cubes() {
        let mut acc: Option<BitVec> = None;
        for i in 0..64u32 {
            if cube.mask() >> i & 1 == 0 {
                continue;
            }
            let positive = cube.value() >> i & 1 == 1;
            let slice = &slices[i as usize];
            match &mut acc {
                None => {
                    acc = Some(if positive {
                        slice.clone()
                    } else {
                        slice.negated()
                    });
                }
                Some(a) => {
                    if positive {
                        a.and_assign(slice);
                    } else {
                        a.and_not_assign(slice);
                    }
                }
            }
        }
        // The empty product is the tautology.
        let cube_bits = acc.unwrap_or_else(|| BitVec::ones(row_count));
        match &mut result {
            None => result = Some(cube_bits),
            Some(r) => r.or_assign(&cube_bits),
        }
    }
    result.unwrap_or_else(|| BitVec::zeros(row_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qm;
    use ebi_bitvec::builder::SliceFamilyBuilder;
    use ebi_bitvec::summary::summarize_slices;

    /// Builds slices for a column of codes (LSB-first slices).
    fn slices_for(codes: &[u64], k: u32) -> Vec<BitVec> {
        let mut fam = SliceFamilyBuilder::new(k as usize);
        for &c in codes {
            fam.push_code(c);
        }
        fam.finish()
    }

    #[test]
    fn figure1_evaluation() {
        // Column [a, b, c, b, a, c] with a=00, b=01, c=10 (Figure 1).
        let codes = [0b00u64, 0b01, 0b10, 0b01, 0b00, 0b10];
        let slices = slices_for(&codes, 2);
        // Q1: A = a  → f_a = B1'B0' → rows 0 and 4.
        let fa = DnfExpr::minterm_sum(&[0b00], 2);
        let r = eval_expr(&fa, &slices, 6);
        assert_eq!(r.to_positions(), vec![0, 4]);
        // Q2: A IN {a, b} → reduces to B1' → rows 0,1,3,4.
        let fab = qm::minimize(&[0b00, 0b01], &[], 2);
        let mut t = AccessTracker::new();
        let r2 = eval_expr_tracked(&fab, &slices, 6, &mut t);
        assert_eq!(r2.to_positions(), vec![0, 1, 3, 4]);
        assert_eq!(t.vectors_accessed(), 1, "Q2 reads only B1");
    }

    #[test]
    fn tracker_counts_distinct_vectors_once() {
        // B1B0 + B1'B0 touches vectors {0, 1} — three cube literals over
        // two distinct vectors.
        let e = DnfExpr::parse("B1B0 + B1'B0", 2).unwrap();
        let slices = slices_for(&[0b00, 0b01, 0b10, 0b11], 2);
        let mut t = AccessTracker::new();
        let _ = eval_expr_tracked(&e, &slices, 4, &mut t);
        assert_eq!(t.vectors_accessed(), 2);
        assert_eq!(t.literal_ops, 4);
        assert_eq!(t.cube_evals, 2);
        assert_eq!(t.or_ops, 1);
    }

    #[test]
    fn reduced_and_unreduced_expressions_agree() {
        let codes: Vec<u64> = (0..64u64).map(|i| i * 7 % 16).collect();
        let slices = slices_for(&codes, 4);
        let selection: Vec<u64> = vec![1, 2, 3, 5, 8, 13];
        let raw = DnfExpr::minterm_sum(&selection, 4);
        let reduced = qm::minimize(&selection, &[], 4);
        let r1 = eval_expr(&raw, &slices, 64);
        let r2 = eval_expr(&reduced, &slices, 64);
        assert_eq!(r1, r2);
        // Ground truth by scanning codes.
        for (row, &c) in codes.iter().enumerate() {
            assert_eq!(r1.bit(row), selection.contains(&c), "row {row}");
        }
    }

    #[test]
    fn constant_expressions() {
        let slices = slices_for(&[0, 1, 2], 2);
        let f = eval_expr(&DnfExpr::empty(2), &slices, 3);
        assert_eq!(f.count_ones(), 0);
        let t = eval_expr(&DnfExpr::parse("1", 2).unwrap(), &slices, 3);
        assert_eq!(t.count_ones(), 3);
    }

    #[test]
    fn tautology_reads_no_vectors() {
        let slices = slices_for(&[0, 1], 1);
        let mut t = AccessTracker::new();
        let _ = eval_expr_tracked(&DnfExpr::parse("1", 1).unwrap(), &slices, 2, &mut t);
        assert_eq!(t.vectors_accessed(), 0);
        assert_eq!(t.words_scanned, 0, "tautology reads no slice words");
    }

    #[test]
    fn tracker_merge_accumulates() {
        let mut a = AccessTracker::new();
        a.touch(0);
        a.cube_evals = 2;
        a.words_scanned = 7;
        let mut b = AccessTracker::new();
        b.touch(3);
        b.literal_ops = 5;
        b.words_scanned = 3;
        b.segments_pruned = 2;
        a.merge(&b);
        assert_eq!(a.vectors_accessed(), 2);
        assert_eq!(a.cube_evals, 2);
        assert_eq!(a.literal_ops, 5);
        assert_eq!(a.touched_mask(), 0b1001);
        assert_eq!(a.words_scanned, 10);
        assert_eq!(a.segments_pruned, 2);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn mismatched_slice_lengths_panic() {
        let slices = vec![BitVec::zeros(3), BitVec::zeros(4)];
        let _ = eval_expr(&DnfExpr::parse("B1B0", 2).unwrap(), &slices, 3);
    }

    #[test]
    #[should_panic(expected = "64-vector tracker limit")]
    fn tracker_touch_rejects_out_of_range_index() {
        // Panics in every build profile — release included — since the
        // silent-ignore release path was promoted to a typed error.
        AccessTracker::new().touch(64);
    }

    #[test]
    fn tracker_try_touch_reports_typed_error() {
        let mut t = AccessTracker::new();
        assert_eq!(t.try_touch(63), Ok(()));
        assert_eq!(t.touched_mask(), 1 << 63);
        let err = t.try_touch(64).unwrap_err();
        assert_eq!(err, EvalError::SliceIndexOutOfRange { index: 64 });
        assert_eq!(
            err.to_string(),
            "slice index 64 exceeds the 64-vector tracker limit"
        );
        // The failed touch left the mask unchanged.
        assert_eq!(t.touched_mask(), 1 << 63);
        assert_eq!(t.vectors_accessed(), 1);
    }

    #[test]
    fn fused_matches_naive_on_mixed_expression() {
        let codes: Vec<u64> = (0..10_000u64).map(|i| (i * 2_654_435_761) % 32).collect();
        let slices = slices_for(&codes, 5);
        let e = DnfExpr::parse("B4'B2B0 + B3B1' + B4B3'B2'B1B0'", 5).unwrap();
        let fused = eval_expr(&e, &slices, codes.len());
        let naive = eval_expr_naive(&e, &slices, codes.len());
        assert_eq!(fused, naive);
    }

    #[test]
    fn summarized_evaluation_is_identical_and_prunes() {
        // Codes concentrated so some slices have long zero runs.
        let codes: Vec<u64> = (0..50_000u64)
            .map(|i| if i < 25_000 { i % 4 } else { 4 + i % 4 })
            .collect();
        let slices = slices_for(&codes, 3);
        let summaries = summarize_slices(&slices);
        let e = DnfExpr::parse("B2'B1B0 + B2B1'", 3).unwrap();
        let mut t_plain = AccessTracker::new();
        let mut t_sum = AccessTracker::new();
        let plain = eval_expr_tracked(&e, &slices, codes.len(), &mut t_plain);
        let summed = eval_expr_summarized(&e, &slices, &summaries, codes.len(), &mut t_sum);
        assert_eq!(plain, summed);
        assert_eq!(t_plain.vectors_accessed(), t_sum.vectors_accessed());
        assert!(
            t_sum.words_scanned <= t_plain.words_scanned,
            "summaries can only reduce scanning: {} > {}",
            t_sum.words_scanned,
            t_plain.words_scanned
        );
        assert!(t_sum.segments_pruned > 0, "B2 is constant per half: prunes");
    }

    #[test]
    fn stored_plan_dense_fast_path_and_mixed_agree_with_naive() {
        use ebi_bitvec::StoragePolicy;
        let codes: Vec<u64> = (0..30_000u64)
            .map(|i| if i % 97 == 0 { i % 8 } else { 0 })
            .collect();
        let dense = slices_for(&codes, 3);
        let e = DnfExpr::parse("B2'B1B0 + B2B1' + B0'", 3).unwrap();
        let expect = eval_expr_naive(&e, &dense, codes.len());

        // All-dense storage resolves to the FusedPlan fast path.
        let all_dense: Vec<SliceStorage> = dense
            .iter()
            .map(|b| SliceStorage::from_dense(b.clone(), StoragePolicy::Dense))
            .collect();
        let plan = StoredPlan::new(&e, &all_dense, codes.len());
        assert!(plan.is_dense());
        let mut stats = KernelStats::new();
        assert_eq!(plan.eval(&mut stats), expect);
        assert_eq!(stats.compressed_chunks_skipped, 0);

        // Mixed storage (one slice per container kind) takes the stored
        // kernels and still matches bit-for-bit.
        let policies = [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
        ];
        let mixed: Vec<SliceStorage> = dense
            .iter()
            .zip(policies)
            .map(|(b, p)| SliceStorage::from_dense(b.clone(), p))
            .collect();
        let plan = StoredPlan::new(&e, &mixed, codes.len());
        assert!(!plan.is_dense());
        let mut stats = KernelStats::new();
        assert_eq!(plan.eval(&mut stats), expect);
        assert!(stats.bytes_touched > 0);
    }

    #[test]
    fn stored_eval_keeps_vectors_accessed_invariant() {
        use ebi_bitvec::StoragePolicy;
        let codes: Vec<u64> = (0..40_000u64).map(|i| i * 31 % 8).collect();
        let dense = slices_for(&codes, 3);
        let summaries = summarize_slices(&dense);
        let stored: Vec<SliceStorage> = dense
            .iter()
            .map(|b| SliceStorage::from_dense(b.clone(), StoragePolicy::Roaring))
            .collect();
        let e = DnfExpr::parse("B2B1' + B2'B0", 3).unwrap();
        let mut t_dense = AccessTracker::new();
        let mut t_stored = AccessTracker::new();
        let d = eval_expr_tracked(&e, &dense, codes.len(), &mut t_dense);
        let s = eval_expr_stored(&e, &stored, Some(&summaries), codes.len(), &mut t_stored);
        assert_eq!(d, s);
        assert_eq!(
            t_dense.vectors_accessed(),
            t_stored.vectors_accessed(),
            "the paper's c_e metric must not depend on the container choice"
        );
        assert_eq!(t_dense.touched_mask(), t_stored.touched_mask());
    }

    #[test]
    fn stored_plan_range_composition_matches_whole_eval() {
        use ebi_bitvec::{StoragePolicy, SEGMENT_WORDS, WORD_BITS};
        let codes: Vec<u64> = (0..20_000u64)
            .map(|i| {
                if i < 10_000 {
                    0
                } else {
                    i.wrapping_mul(37) % 16
                }
            })
            .collect();
        let dense = slices_for(&codes, 4);
        let policies = [
            StoragePolicy::Roaring,
            StoragePolicy::Dense,
            StoragePolicy::Wah,
            StoragePolicy::Roaring,
        ];
        let stored: Vec<SliceStorage> = dense
            .iter()
            .zip(policies)
            .map(|(b, p)| SliceStorage::from_dense(b.clone(), p))
            .collect();
        let e = DnfExpr::parse("B3B1 + B2'B0", 4).unwrap();
        let plan = StoredPlan::new(&e, &stored, codes.len());
        let mut stats = KernelStats::new();
        let whole = plan.eval(&mut stats);
        assert_eq!(whole, eval_expr_naive(&e, &dense, codes.len()));

        let mut split = BitVec::zeros(codes.len());
        let cut = SEGMENT_WORDS * 2;
        let n_words = codes.len().div_ceil(WORD_BITS);
        assert!(cut < n_words);
        let (lo, hi) = split.words_mut().split_at_mut(cut);
        let mut s = KernelStats::new();
        plan.eval_range(lo, 0, &mut s);
        plan.eval_range(hi, cut, &mut s);
        assert_eq!(split, whole);
    }

    #[test]
    fn fused_plan_range_composition_matches_whole_eval() {
        use ebi_bitvec::{SEGMENT_WORDS, WORD_BITS};
        let codes: Vec<u64> = (0..20_000u64).map(|i| i.wrapping_mul(37) % 16).collect();
        let slices = slices_for(&codes, 4);
        let e = DnfExpr::parse("B3B1 + B2'B0", 4).unwrap();
        let plan = FusedPlan::new(&e, &slices, codes.len());
        let mut stats = KernelStats::new();
        let whole = plan.eval(&mut stats);

        let mut split = BitVec::zeros(codes.len());
        let cut = SEGMENT_WORDS * 2;
        let n_words = codes.len().div_ceil(WORD_BITS);
        assert!(cut < n_words);
        let (lo, hi) = split.words_mut().split_at_mut(cut);
        let mut s = KernelStats::new();
        plan.eval_range(lo, 0, &mut s);
        plan.eval_range(hi, cut, &mut s);
        assert_eq!(split, whole);
    }
}
