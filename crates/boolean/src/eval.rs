//! Evaluating retrieval expressions over bitmap slices.
//!
//! Given the `k` bitmap vectors `B_{k-1} … B_0` of an encoded bitmap index
//! and a reduced retrieval expression, evaluation produces the selection
//! bitmap: each product term ANDs together its slices (negated where the
//! literal is `B_i'`), and the terms are ORed.
//!
//! [`AccessTracker`] records the paper's cost metric while doing so: the
//! set of *distinct bitmap vectors touched* (footnote 4 — "the number of
//! bitmaps which need to be accessed is considered as one" per vector,
//! however many literals reference it), plus secondary counters.

use crate::expr::DnfExpr;
use ebi_bitvec::BitVec;

/// Cost counters for one or more expression evaluations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTracker {
    /// Bitmask of slice indices touched.
    touched: u64,
    /// Product terms evaluated.
    pub cube_evals: usize,
    /// Literal operations performed (one AND or NOT-AND per literal).
    pub literal_ops: usize,
    /// OR operations joining product terms.
    pub or_ops: usize,
}

impl AccessTracker {
    /// Fresh tracker with all counters zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct bitmap vectors accessed so far — the paper's
    /// `c_e` / `c_s`.
    #[must_use]
    pub fn vectors_accessed(&self) -> usize {
        self.touched.count_ones() as usize
    }

    /// Bitmask of accessed slice indices.
    #[must_use]
    pub fn touched_mask(&self) -> u64 {
        self.touched
    }

    /// Merges another tracker's counters into this one.
    pub fn merge(&mut self, other: &AccessTracker) {
        self.touched |= other.touched;
        self.cube_evals += other.cube_evals;
        self.literal_ops += other.literal_ops;
        self.or_ops += other.or_ops;
    }

    /// Records a touch of slice `i` (used by index implementations for
    /// vectors read outside expression evaluation, e.g. existence bitmaps).
    pub fn touch(&mut self, i: u32) {
        self.touched |= 1 << i;
    }
}

/// Evaluates `expr` over `slices` (slice `i` = bitmap vector `B_i`),
/// returning the selection bitmap of length `row_count`.
///
/// # Panics
///
/// Panics if the expression references a slice index `>= slices.len()`,
/// or the slices have differing lengths.
#[must_use]
pub fn eval_expr(expr: &DnfExpr, slices: &[BitVec], row_count: usize) -> BitVec {
    let mut tracker = AccessTracker::new();
    eval_expr_tracked(expr, slices, row_count, &mut tracker)
}

/// Like [`eval_expr`] but records cost in `tracker`.
#[must_use]
pub fn eval_expr_tracked(
    expr: &DnfExpr,
    slices: &[BitVec],
    row_count: usize,
    tracker: &mut AccessTracker,
) -> BitVec {
    for s in slices {
        assert_eq!(s.len(), row_count, "slice length != row count");
    }
    assert!(
        expr.support() >> slices.len().min(63) == 0 || slices.len() >= 64,
        "expression references slice beyond the {} provided",
        slices.len()
    );

    let mut result: Option<BitVec> = None;
    for cube in expr.cubes() {
        tracker.cube_evals += 1;
        let mut acc: Option<BitVec> = None;
        for i in 0..64u32 {
            if cube.mask() >> i & 1 == 0 {
                continue;
            }
            tracker.touch(i);
            tracker.literal_ops += 1;
            let positive = cube.value() >> i & 1 == 1;
            let slice = &slices[i as usize];
            match &mut acc {
                None => {
                    acc = Some(if positive { slice.clone() } else { slice.negated() });
                }
                Some(a) => {
                    if positive {
                        a.and_assign(slice);
                    } else {
                        a.and_not_assign(slice);
                    }
                }
            }
        }
        // The empty product is the tautology.
        let cube_bits = acc.unwrap_or_else(|| BitVec::ones(row_count));
        match &mut result {
            None => result = Some(cube_bits),
            Some(r) => {
                tracker.or_ops += 1;
                r.or_assign(&cube_bits);
            }
        }
    }
    result.unwrap_or_else(|| BitVec::zeros(row_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qm;
    use ebi_bitvec::builder::SliceFamilyBuilder;

    /// Builds slices for a column of codes (LSB-first slices).
    fn slices_for(codes: &[u64], k: u32) -> Vec<BitVec> {
        let mut fam = SliceFamilyBuilder::new(k as usize);
        for &c in codes {
            fam.push_code(c);
        }
        fam.finish()
    }

    #[test]
    fn figure1_evaluation() {
        // Column [a, b, c, b, a, c] with a=00, b=01, c=10 (Figure 1).
        let codes = [0b00u64, 0b01, 0b10, 0b01, 0b00, 0b10];
        let slices = slices_for(&codes, 2);
        // Q1: A = a  → f_a = B1'B0' → rows 0 and 4.
        let fa = DnfExpr::minterm_sum(&[0b00], 2);
        let r = eval_expr(&fa, &slices, 6);
        assert_eq!(r.to_positions(), vec![0, 4]);
        // Q2: A IN {a, b} → reduces to B1' → rows 0,1,3,4.
        let fab = qm::minimize(&[0b00, 0b01], &[], 2);
        let mut t = AccessTracker::new();
        let r2 = eval_expr_tracked(&fab, &slices, 6, &mut t);
        assert_eq!(r2.to_positions(), vec![0, 1, 3, 4]);
        assert_eq!(t.vectors_accessed(), 1, "Q2 reads only B1");
    }

    #[test]
    fn tracker_counts_distinct_vectors_once() {
        // B1B0 + B1'B0 touches vectors {0, 1} — three cube literals over
        // two distinct vectors.
        let e = DnfExpr::parse("B1B0 + B1'B0", 2).unwrap();
        let slices = slices_for(&[0b00, 0b01, 0b10, 0b11], 2);
        let mut t = AccessTracker::new();
        let _ = eval_expr_tracked(&e, &slices, 4, &mut t);
        assert_eq!(t.vectors_accessed(), 2);
        assert_eq!(t.literal_ops, 4);
        assert_eq!(t.cube_evals, 2);
        assert_eq!(t.or_ops, 1);
    }

    #[test]
    fn reduced_and_unreduced_expressions_agree() {
        let codes: Vec<u64> = (0..64u64).map(|i| i * 7 % 16).collect();
        let slices = slices_for(&codes, 4);
        let selection: Vec<u64> = vec![1, 2, 3, 5, 8, 13];
        let raw = DnfExpr::minterm_sum(&selection, 4);
        let reduced = qm::minimize(&selection, &[], 4);
        let r1 = eval_expr(&raw, &slices, 64);
        let r2 = eval_expr(&reduced, &slices, 64);
        assert_eq!(r1, r2);
        // Ground truth by scanning codes.
        for (row, &c) in codes.iter().enumerate() {
            assert_eq!(r1.bit(row), selection.contains(&c), "row {row}");
        }
    }

    #[test]
    fn constant_expressions() {
        let slices = slices_for(&[0, 1, 2], 2);
        let f = eval_expr(&DnfExpr::empty(2), &slices, 3);
        assert_eq!(f.count_ones(), 0);
        let t = eval_expr(&DnfExpr::parse("1", 2).unwrap(), &slices, 3);
        assert_eq!(t.count_ones(), 3);
    }

    #[test]
    fn tautology_reads_no_vectors() {
        let slices = slices_for(&[0, 1], 1);
        let mut t = AccessTracker::new();
        let _ = eval_expr_tracked(&DnfExpr::parse("1", 1).unwrap(), &slices, 2, &mut t);
        assert_eq!(t.vectors_accessed(), 0);
    }

    #[test]
    fn tracker_merge_accumulates() {
        let mut a = AccessTracker::new();
        a.touch(0);
        a.cube_evals = 2;
        let mut b = AccessTracker::new();
        b.touch(3);
        b.literal_ops = 5;
        a.merge(&b);
        assert_eq!(a.vectors_accessed(), 2);
        assert_eq!(a.cube_evals, 2);
        assert_eq!(a.literal_ops, 5);
        assert_eq!(a.touched_mask(), 0b1001);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn mismatched_slice_lengths_panic() {
        let slices = vec![BitVec::zeros(3), BitVec::zeros(4)];
        let _ = eval_expr(&DnfExpr::parse("B1B0", 2).unwrap(), &slices, 3);
    }
}
