//! Quine–McCluskey logical reduction.
//!
//! The paper leans on "logical reduction" of retrieval expressions
//! (§2.2, §3.2) but notes the brute-force approach is exponential and
//! leaves an efficient algorithm as future work. We implement the
//! textbook exact method — prime-implicant generation with don't-cares,
//! essential-implicant extraction, then Petrick's method — with a bounded
//! fallback to a greedy cover when Petrick's product would blow up, so
//! reduction stays usable at the cardinalities of the paper's experiments
//! (`k = 10` for `|A| = 1000`) and beyond.
//!
//! Cover selection minimises, in order:
//! 1. the number of *distinct bitmap vectors* read (the paper's `c_e`),
//! 2. the number of product terms,
//! 3. the number of literals.

use crate::cube::Cube;
use crate::expr::DnfExpr;
use std::collections::{HashMap, HashSet};

/// Petrick's method is attempted only when at most this many
/// non-essential prime implicants remain; beyond it the greedy cover
/// takes over.
const PETRICK_MAX_PIS: usize = 24;
/// ... and at most this many min-terms remain uncovered.
const PETRICK_MAX_TERMS: usize = 96;
/// Cap on the intermediate product size during Petrick expansion.
const PETRICK_MAX_PRODUCTS: usize = 100_000;

/// How the non-essential part of the cover was selected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoverMethod {
    /// Essential prime implicants alone covered the on-set.
    #[default]
    EssentialOnly,
    /// Petrick's method ran to completion (exact cover).
    Petrick,
    /// The bounded greedy cover took over (candidate or product blow-up).
    Greedy,
}

impl CoverMethod {
    /// Stable lowercase name for exports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::EssentialOnly => "essential_only",
            Self::Petrick => "petrick",
            Self::Greedy => "greedy",
        }
    }
}

/// Counters describing one logical-reduction run, for the query-lifecycle
/// profiler: how large the min-term expansion was, how many prime
/// implicants Quine–McCluskey produced, how hard cover selection worked,
/// and what came out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Distinct on-set min-terms.
    pub minterms: u64,
    /// Don't-care codes supplied (footnote 3).
    pub dont_cares: u64,
    /// Prime implicants generated.
    pub prime_implicants: u64,
    /// Essential prime implicants extracted before cover search.
    pub essential_primes: u64,
    /// Non-essential candidates surviving dominance pruning.
    pub cover_candidates: u64,
    /// Peak intermediate product count during Petrick expansion
    /// (0 unless Petrick ran).
    pub petrick_products_peak: u64,
    /// How the cover was completed.
    pub cover_method: CoverMethod,
    /// Product terms in the reduced expression.
    pub cubes_out: u64,
    /// Literals in the reduced expression.
    pub literals_out: u64,
    /// Distinct bitmap vectors the reduced expression reads — the
    /// paper's `c_e`.
    pub vectors_out: u64,
}

/// Generates all prime implicants of the function with on-set `on` and
/// don't-care set `dc` over `k` variables.
///
/// Duplicate codes are tolerated; a code present in both sets is treated
/// as on.
#[must_use]
pub fn prime_implicants(on: &[u64], dc: &[u64], k: u32) -> Vec<Cube> {
    let mut current: HashSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&c| Cube::minterm(c, k))
        .collect();
    // A code listed as both on and dc collapses to one min-term here,
    // which matches the on-wins semantics.
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut combined: HashSet<Cube> = HashSet::new();
        let mut next: HashSet<Cube> = HashSet::new();
        for cube in &current {
            let mut was_combined = false;
            let mut var = cube.mask();
            while var != 0 {
                let bit = var & var.wrapping_neg();
                var &= var - 1;
                let partner = Cube::new(cube.value() ^ bit, cube.mask());
                if current.contains(&partner) {
                    was_combined = true;
                    if let Some(merged) = cube.combine(&partner) {
                        next.insert(merged);
                    }
                }
            }
            if was_combined {
                combined.insert(*cube);
            }
        }
        for cube in &current {
            if !combined.contains(cube) {
                primes.push(*cube);
            }
        }
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Reduces the selection with on-set `on` and don't-care set `dc` over
/// `k` variables to a minimal DNF — the paper's *logical reduction*.
///
/// The result covers every on-set min-term, covers no off-set min-term,
/// and may cover don't-cares freely. With an empty `on` the result is the
/// constant-false expression.
#[must_use]
pub fn minimize(on: &[u64], dc: &[u64], k: u32) -> DnfExpr {
    let mut stats = ReduceStats::default();
    minimize_with_stats(on, dc, k, &mut stats)
}

/// Like [`minimize`], additionally filling `stats` with the run's
/// reduction counters (min-term expansion size, prime-implicant count,
/// Petrick effort, cover method, output shape).
#[must_use]
pub fn minimize_with_stats(on: &[u64], dc: &[u64], k: u32, stats: &mut ReduceStats) -> DnfExpr {
    *stats = ReduceStats::default();
    if on.is_empty() {
        return DnfExpr::empty(k);
    }
    let on_set: HashSet<u64> = on.iter().copied().collect();
    stats.minterms = on_set.len() as u64;
    stats.dont_cares = dc.iter().collect::<HashSet<_>>().len() as u64;
    let primes = prime_implicants(on, dc, k);
    stats.prime_implicants = primes.len() as u64;

    // Which prime implicants cover each on-set min-term.
    let on_terms: Vec<u64> = {
        let mut v: Vec<u64> = on_set.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let mut coverers: Vec<Vec<usize>> = vec![Vec::new(); on_terms.len()];
    for (pi_idx, pi) in primes.iter().enumerate() {
        for (t_idx, &t) in on_terms.iter().enumerate() {
            if pi.covers(t) {
                coverers[t_idx].push(pi_idx);
            }
        }
    }

    // Essential prime implicants.
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered: Vec<bool> = vec![false; on_terms.len()];
    for (t_idx, cov) in coverers.iter().enumerate() {
        if cov.len() == 1 && !chosen.contains(&cov[0]) {
            chosen.push(cov[0]);
        }
        debug_assert!(!cov.is_empty(), "min-term with no covering implicant");
        let _ = t_idx;
    }
    for &pi_idx in &chosen {
        for (t_idx, &t) in on_terms.iter().enumerate() {
            if primes[pi_idx].covers(t) {
                covered[t_idx] = true;
            }
        }
    }
    stats.essential_primes = chosen.len() as u64;

    let remaining_terms: Vec<usize> = (0..on_terms.len()).filter(|&i| !covered[i]).collect();
    if !remaining_terms.is_empty() {
        // Candidate implicants that cover something still uncovered.
        let mut candidates: Vec<usize> = (0..primes.len())
            .filter(|i| !chosen.contains(i))
            .filter(|&i| {
                remaining_terms
                    .iter()
                    .any(|&t| primes[i].covers(on_terms[t]))
            })
            .collect();
        // Drop candidates dominated by another candidate (covers a subset
        // of remaining terms with >= literals).
        candidates = prune_dominated(&candidates, &primes, &on_terms, &remaining_terms);
        stats.cover_candidates = candidates.len() as u64;

        let picked =
            if candidates.len() <= PETRICK_MAX_PIS && remaining_terms.len() <= PETRICK_MAX_TERMS {
                stats.cover_method = CoverMethod::Petrick;
                petrick_cover(
                    &candidates,
                    &primes,
                    &on_terms,
                    &remaining_terms,
                    &chosen,
                    stats,
                )
            } else {
                stats.cover_method = CoverMethod::Greedy;
                greedy_cover(&candidates, &primes, &on_terms, &remaining_terms, &chosen)
            };
        chosen.extend(picked);
    }

    let expr = DnfExpr::from_cubes(chosen.into_iter().map(|i| primes[i]).collect(), k);
    stats.cubes_out = expr.cubes().len() as u64;
    stats.literals_out = expr
        .cubes()
        .iter()
        .map(|c| u64::from(c.literal_count()))
        .sum();
    stats.vectors_out = expr.vectors_accessed() as u64;
    expr
}

/// Removes candidates whose remaining-coverage is a strict subset of
/// another candidate's (ties broken toward fewer literals).
fn prune_dominated(
    candidates: &[usize],
    primes: &[Cube],
    on_terms: &[u64],
    remaining: &[usize],
) -> Vec<usize> {
    let cover_sets: HashMap<usize, u128> = candidates
        .iter()
        .map(|&c| {
            let mut bits: u128 = 0;
            for (slot, &t) in remaining.iter().enumerate() {
                if slot < 128 && primes[c].covers(on_terms[t]) {
                    bits |= 1u128 << slot;
                }
            }
            (c, bits)
        })
        .collect();
    if remaining.len() > 128 {
        return candidates.to_vec(); // too wide to bit-pack; skip pruning
    }
    candidates
        .iter()
        .copied()
        .filter(|&c| {
            let cs = cover_sets[&c];
            !candidates.iter().any(|&d| {
                d != c && {
                    let ds = cover_sets[&d];
                    // d dominates c
                    cs & !ds == 0
                        && (ds != cs
                            || primes[d].literal_count() < primes[c].literal_count()
                            || (primes[d].literal_count() == primes[c].literal_count() && d < c))
                }
            })
        })
        .collect()
}

/// Exact minimum cover via Petrick's method, scoring by
/// (extra vectors, cube count, literals).
fn petrick_cover(
    candidates: &[usize],
    primes: &[Cube],
    on_terms: &[u64],
    remaining: &[usize],
    chosen: &[usize],
    stats: &mut ReduceStats,
) -> Vec<usize> {
    // Each product is a set of candidate indices, packed into a u32 mask
    // over `candidates` (|candidates| <= PETRICK_MAX_PIS <= 24).
    let mut products: Vec<u32> = vec![0]; // start with the empty product
    for &t in remaining {
        let clause: Vec<u32> = candidates
            .iter()
            .enumerate()
            .filter(|&(_, &c)| primes[c].covers(on_terms[t]))
            .map(|(slot, _)| 1u32 << slot)
            .collect();
        let mut next: Vec<u32> = Vec::with_capacity(products.len() * clause.len());
        for &p in &products {
            for &lit in &clause {
                next.push(p | lit);
            }
        }
        // Absorption: drop supersets of another product.
        next.sort_unstable_by_key(|p| p.count_ones());
        let mut kept: Vec<u32> = Vec::with_capacity(next.len());
        for &p in &next {
            // Not a `contains`: q ranges over kept (clippy false positive).
            #[allow(clippy::manual_contains)]
            if !kept.iter().any(|&q| q & p == q) {
                kept.push(p);
            }
        }
        products = kept;
        stats.petrick_products_peak = stats.petrick_products_peak.max(products.len() as u64);
        if products.len() > PETRICK_MAX_PRODUCTS {
            // Fall back rather than risk runaway memory.
            stats.cover_method = CoverMethod::Greedy;
            return greedy_cover(candidates, primes, on_terms, remaining, chosen);
        }
    }

    let base_support: u64 = chosen.iter().fold(0, |acc, &i| acc | primes[i].mask());
    let score = |p: u32| -> (u32, u32, u32) {
        let mut support = base_support;
        let mut literals = 0u32;
        for (slot, &c) in candidates.iter().enumerate() {
            if p >> slot & 1 == 1 {
                support |= primes[c].mask();
                literals += primes[c].literal_count();
            }
        }
        (support.count_ones(), p.count_ones(), literals)
    };
    let best = products
        .into_iter()
        .min_by_key(|&p| score(p))
        .expect("at least one product");
    candidates
        .iter()
        .enumerate()
        .filter(|&(slot, _)| best >> slot & 1 == 1)
        .map(|(_, &c)| c)
        .collect()
}

/// Greedy cover: repeatedly pick the implicant covering the most
/// still-uncovered terms, preferring ones that add no new bitmap vectors.
fn greedy_cover(
    candidates: &[usize],
    primes: &[Cube],
    on_terms: &[u64],
    remaining: &[usize],
    chosen: &[usize],
) -> Vec<usize> {
    let mut picked: Vec<usize> = Vec::new();
    let mut support: u64 = chosen.iter().fold(0, |acc, &i| acc | primes[i].mask());
    let mut uncovered: HashSet<usize> = remaining.iter().copied().collect();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .copied()
            .filter(|c| !picked.contains(c))
            .map(|c| {
                let gain = uncovered
                    .iter()
                    .filter(|&&t| primes[c].covers(on_terms[t]))
                    .count();
                let new_vars = (primes[c].mask() & !support).count_ones();
                (gain, c, new_vars)
            })
            .filter(|&(gain, _, _)| gain > 0)
            // max gain, then min new vars, then min literals
            .max_by(|a, b| {
                a.0.cmp(&b.0).then(b.2.cmp(&a.2)).then(
                    primes[b.1]
                        .literal_count()
                        .cmp(&primes[a.1].literal_count()),
                )
            });
        let Some((_, c, _)) = best else {
            unreachable!("uncovered term with no candidate implicant");
        };
        support |= primes[c].mask();
        uncovered.retain(|&t| !primes[c].covers(on_terms[t]));
        picked.push(c);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks `expr` is a correct reduction of (`on`, `dc`): covers all of
    /// `on`, none of the off-set.
    fn assert_valid_reduction(expr: &DnfExpr, on: &[u64], dc: &[u64], k: u32) {
        let dc_set: HashSet<u64> = dc.iter().copied().collect();
        let on_set: HashSet<u64> = on.iter().copied().collect();
        for code in 0..(1u64 << k) {
            if on_set.contains(&code) {
                assert!(expr.covers(code), "{expr} must cover on-code {code:#b}");
            } else if !dc_set.contains(&code) {
                assert!(
                    !expr.covers(code),
                    "{expr} must not cover off-code {code:#b}"
                );
            }
        }
    }

    #[test]
    fn figure1_or_of_a_and_b_reduces_to_one_vector() {
        // a=00, b=01: f_a + f_b = B1'B0' + B1'B0 = B1'.
        let e = minimize(&[0b00, 0b01], &[], 2);
        assert_eq!(e, DnfExpr::parse("B1'", 2).unwrap());
        assert_eq!(e.vectors_accessed(), 1);
    }

    #[test]
    fn figure3a_well_defined_mapping_needs_one_vector() {
        // Mapping (a): a=000, b=100, c=001, d=101, e=011, f=111, g=010, h=110.
        // "A IN {a,b,c,d}" -> codes {000,100,001,101} -> B1'.
        let e = minimize(&[0b000, 0b100, 0b001, 0b101], &[], 3);
        assert_eq!(e, DnfExpr::parse("B1'", 3).unwrap());
        // "A IN {c,d,e,f}" -> codes {001,101,011,111} -> B0.
        let e2 = minimize(&[0b001, 0b101, 0b011, 0b111], &[], 3);
        assert_eq!(e2, DnfExpr::parse("B0", 3).unwrap());
    }

    #[test]
    fn figure3b_improper_mapping_needs_three_vectors() {
        // Mapping (b): a=000,b=001,c=010,d=011,e=110,f=111,g=100,h=101.
        // "A IN {a,b,c,d}" -> {000,001,010,011} -> B2'. That one is fine,
        // but "A IN {c,d,e,f}" -> {010,011,110,111} -> B1: also 1! The
        // improper pair in the paper is the mapping where *both* cannot be
        // reduced; reproduce the paper's stated expression instead:
        // with the paper's (b) mapping a=000,c=001,g=010,b=011,e=100,
        // d=101,h=110,f=111: "A IN {a,b,c,d}" -> {000,011,001,101}.
        let e = minimize(&[0b000, 0b011, 0b001, 0b101], &[], 3);
        assert_eq!(e.vectors_accessed(), 3);
        assert!(e.equivalent(&DnfExpr::parse("B2'B1' + B2'B0 + B1'B0", 3).unwrap()));
        // "A IN {c,d,e,f}" -> {001,101,100,111}.
        let e2 = minimize(&[0b001, 0b101, 0b100, 0b111], &[], 3);
        assert_eq!(e2.vectors_accessed(), 3);
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // On {01}, dc {11}: B0 suffices (covers the dc).
        let e = minimize(&[0b01], &[0b11], 2);
        assert_eq!(e, DnfExpr::parse("B0", 2).unwrap());
        assert_valid_reduction(&e, &[0b01], &[0b11], 2);
    }

    #[test]
    fn full_cube_reduces_to_tautology() {
        let on: Vec<u64> = (0..8).collect();
        let e = minimize(&on, &[], 3);
        assert!(e.is_true());
        assert_eq!(e.vectors_accessed(), 0);
    }

    #[test]
    fn empty_on_set_is_false() {
        let e = minimize(&[], &[0b1], 2);
        assert!(e.is_false());
    }

    #[test]
    fn single_value_selection_is_a_minterm() {
        // Single-value selection reads all k vectors — the case where the
        // paper concedes simple bitmap indexing wins (§3.1 Q1).
        let e = minimize(&[0b101], &[], 3);
        assert_eq!(e, DnfExpr::parse("B2B1'B0", 3).unwrap());
        assert_eq!(e.vectors_accessed(), 3);
    }

    #[test]
    fn prime_implicants_of_classic_example() {
        // f(x3..x0) with on {4,8,10,11,12,15}, dc {9,14}: classic QM demo.
        let on = [4u64, 8, 10, 11, 12, 15];
        let dc = [9u64, 14];
        let pis = prime_implicants(&on, &dc, 4);
        // Known prime implicants: B1B0'? let's assert count and validity.
        assert!(!pis.is_empty());
        for pi in &pis {
            for t in pi.expand(4) {
                assert!(
                    on.contains(&t) || dc.contains(&t),
                    "PI {pi} covers off-code {t}"
                );
            }
        }
        let e = minimize(&on, &dc, 4);
        assert_valid_reduction(&e, &on, &dc, 4);
        // The textbook minimum uses 3 product terms.
        assert!(e.cubes().len() <= 3, "got {e}");
    }

    #[test]
    fn reduction_is_semantically_correct_on_random_functions() {
        // Deterministic pseudo-random on/dc sets over k=4 and k=5.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in [3u32, 4, 5] {
            for _ in 0..40 {
                let mut on = Vec::new();
                let mut dc = Vec::new();
                for code in 0..(1u64 << k) {
                    match next() % 4 {
                        0 => on.push(code),
                        1 => dc.push(code),
                        _ => {}
                    }
                }
                let e = minimize(&on, &dc, k);
                assert_valid_reduction(&e, &on, &dc, k);
            }
        }
    }

    #[test]
    fn aligned_power_of_two_block_needs_k_minus_j_vectors() {
        // Selecting an aligned 2^j block out of 2^k: the reduction drops j
        // variables. This is the mechanism behind Figure 9's best case.
        let k = 6u32;
        for j in 0..=k {
            let on: Vec<u64> = (0..(1u64 << j)).collect();
            let e = minimize(&on, &[], k);
            assert_eq!(e.vectors_accessed(), (k - j) as usize, "j={j}: {e}");
        }
    }

    #[test]
    fn minimize_with_stats_describes_the_run() {
        // Figure 1: two min-terms reduce to the single-literal B1'.
        let mut stats = ReduceStats::default();
        let e = minimize_with_stats(&[0b00, 0b01], &[], 2, &mut stats);
        assert_eq!(e, DnfExpr::parse("B1'", 2).unwrap());
        assert_eq!(stats.minterms, 2);
        assert_eq!(stats.dont_cares, 0);
        assert_eq!(stats.prime_implicants, 1);
        assert_eq!(stats.essential_primes, 1);
        assert_eq!(stats.cover_method, CoverMethod::EssentialOnly);
        assert_eq!(stats.cubes_out, 1);
        assert_eq!(stats.literals_out, 1);
        assert_eq!(stats.vectors_out, 1);

        // The classic QM demo exercises the cover search.
        let on = [4u64, 8, 10, 11, 12, 15];
        let dc = [9u64, 14];
        let e = minimize_with_stats(&on, &dc, 4, &mut stats);
        assert_valid_reduction(&e, &on, &dc, 4);
        assert_eq!(stats.minterms, 6);
        assert_eq!(stats.dont_cares, 2);
        assert!(stats.prime_implicants >= stats.essential_primes);
        assert_eq!(stats.cubes_out, e.cubes().len() as u64);
        assert_eq!(stats.vectors_out, e.vectors_accessed() as u64);
        if stats.cover_method == CoverMethod::Petrick {
            assert!(stats.petrick_products_peak > 0);
        }

        // Stats reset between runs: the empty selection reports zeros.
        let e = minimize_with_stats(&[], &[], 3, &mut stats);
        assert!(e.is_false());
        assert_eq!(stats, ReduceStats::default());
    }

    #[test]
    fn cover_method_names_are_stable() {
        assert_eq!(CoverMethod::EssentialOnly.as_str(), "essential_only");
        assert_eq!(CoverMethod::Petrick.as_str(), "petrick");
        assert_eq!(CoverMethod::Greedy.as_str(), "greedy");
    }

    #[test]
    fn large_range_on_k10_stays_tractable() {
        // δ = 700 consecutive codes out of 1024 (Figure 9(b) regime).
        let on: Vec<u64> = (0..700).collect();
        let dc: Vec<u64> = (1000..1024).collect(); // |A| = 1000
        let e = minimize(&on, &dc, 10);
        // Correct on a sample of codes.
        for code in [0u64, 350, 699, 700, 999] {
            assert_eq!(e.covers(code), code < 700, "code {code}");
        }
        assert!(e.vectors_accessed() <= 10);
    }
}
