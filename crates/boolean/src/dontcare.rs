//! Footnote 3: exploiting don't-care codes during reduction.
//!
//! When `|A| < 2^k`, the codes not assigned to any value are *don't-cares*
//! — no tuple can carry them, so the retrieval expression may cover them
//! freely. The paper's footnote 3 works the example: for domain
//! `{a=00, b=01, c=10}` and selection `A = b OR A = c`,
//!
//! * without don't-cares: `f_b + f_c = B1'B0 + B1B0' = B1 ⊕ B0`,
//! * adding the don't-care `11`:  `B1 + B0`,
//!
//! and a machine without a hardware XOR prefers the latter. More
//! generally the don't-cares never *increase* the vector count and often
//! decrease literal counts.

use crate::expr::DnfExpr;
use crate::qm;

/// Both reductions of a selection: ignoring and exploiting the
/// don't-care codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DontCareComparison {
    /// Reduction treating don't-cares as off-set codes.
    pub without: DnfExpr,
    /// Reduction allowed to cover don't-cares.
    pub with: DnfExpr,
}

impl DontCareComparison {
    /// The cheaper of the two by (vectors accessed, literal count) —
    /// footnote 3's choice rule.
    #[must_use]
    pub fn best(&self) -> &DnfExpr {
        let kw = (self.with.vectors_accessed(), self.with.literal_count());
        let kn = (
            self.without.vectors_accessed(),
            self.without.literal_count(),
        );
        if kw <= kn {
            &self.with
        } else {
            &self.without
        }
    }

    /// `true` if exploiting don't-cares strictly reduced cost.
    #[must_use]
    pub fn dontcares_helped(&self) -> bool {
        (self.with.vectors_accessed(), self.with.literal_count())
            < (
                self.without.vectors_accessed(),
                self.without.literal_count(),
            )
    }
}

/// Reduces the selection `on` over `k` variables both with and without the
/// don't-care set `dc`.
#[must_use]
pub fn compare(on: &[u64], dc: &[u64], k: u32) -> DontCareComparison {
    DontCareComparison {
        without: qm::minimize(on, &[], k),
        with: qm::minimize(on, dc, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote3_example() {
        // Domain {a=00, b=01, c=10}; select {b, c}; don't-care 11.
        let cmp = compare(&[0b01, 0b10], &[0b11], 2);
        // Without: the XOR shape, 4 literals over 2 vectors.
        assert!(cmp
            .without
            .equivalent(&DnfExpr::parse("B1'B0 + B1B0'", 2).unwrap()));
        assert_eq!(cmp.without.literal_count(), 4);
        // With the don't-care: B1 + B0 — same 2 vectors, 2 literals.
        assert!(cmp.with.covers(0b01) && cmp.with.covers(0b10));
        assert_eq!(cmp.with, DnfExpr::parse("B1 + B0", 2).unwrap());
        assert_eq!(cmp.with.literal_count(), 2);
        assert!(cmp.dontcares_helped());
        assert_eq!(cmp.best(), &cmp.with);
    }

    #[test]
    fn dontcares_never_increase_vector_count() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let k = 4u32;
            let mut on = Vec::new();
            let mut dc = Vec::new();
            for code in 0..(1u64 << k) {
                match next() % 4 {
                    0 => on.push(code),
                    1 => dc.push(code),
                    _ => {}
                }
            }
            if on.is_empty() {
                continue;
            }
            let cmp = compare(&on, &dc, k);
            assert!(
                cmp.with.vectors_accessed() <= cmp.without.vectors_accessed(),
                "on={on:?} dc={dc:?}: {} vs {}",
                cmp.with,
                cmp.without
            );
        }
    }

    #[test]
    fn no_dontcares_means_identical_reductions() {
        let cmp = compare(&[0b00, 0b01], &[], 2);
        assert_eq!(cmp.with, cmp.without);
        assert!(!cmp.dontcares_helped());
    }
}
