//! Disjunctive-normal-form expressions over bitmap-slice variables.

use crate::cube::Cube;
use std::fmt;

/// A sum (OR) of product terms over `k` bitmap-slice variables.
///
/// This is the shape of every retrieval Boolean expression in the paper:
/// the raw form is a sum of min-terms (one per selected value); the reduced
/// form is whatever [`crate::qm::minimize`] produces.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DnfExpr {
    cubes: Vec<Cube>,
    k: u32,
}

/// Error from [`DnfExpr::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse DNF expression: {}", self.detail)
    }
}

impl std::error::Error for ParseExprError {}

impl DnfExpr {
    /// The constant-false expression (empty sum).
    #[must_use]
    pub fn empty(k: u32) -> Self {
        Self {
            cubes: Vec::new(),
            k,
        }
    }

    /// Builds an expression from cubes, normalising order and duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any cube fixes a variable at position `>= k`.
    #[must_use]
    pub fn from_cubes(mut cubes: Vec<Cube>, k: u32) -> Self {
        let universe = if k == 0 { 0 } else { (1u64 << k) - 1 };
        for c in &cubes {
            assert!(
                c.mask() & !universe == 0,
                "cube {c} uses variables beyond k={k}"
            );
        }
        cubes.sort_unstable();
        cubes.dedup();
        Self { cubes, k }
    }

    /// The sum of min-terms for `codes` — the *unreduced* retrieval
    /// expression for the selection `A IN {values encoded as codes}`.
    #[must_use]
    pub fn minterm_sum(codes: &[u64], k: u32) -> Self {
        Self::from_cubes(codes.iter().map(|&c| Cube::minterm(c, k)).collect(), k)
    }

    /// Number of variables (bitmap slices) in scope.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The product terms, sorted.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// `true` if the expression is the empty sum (constant false).
    #[must_use]
    pub fn is_false(&self) -> bool {
        self.cubes.is_empty()
    }

    /// `true` if some cube is the empty product (constant true).
    #[must_use]
    pub fn is_true(&self) -> bool {
        self.cubes.iter().any(|c| c.mask() == 0)
    }

    /// Union of fixed-variable masks: which bitmap slices the expression
    /// reads.
    #[must_use]
    pub fn support(&self) -> u64 {
        self.cubes.iter().fold(0, |acc, c| acc | c.mask())
    }

    /// Number of *distinct bitmap vectors accessed* when evaluating this
    /// expression — the paper's cost metric `c_e` (footnote 4): a vector
    /// is read once whether it appears positively, negated, or both.
    #[must_use]
    pub fn vectors_accessed(&self) -> usize {
        self.support().count_ones() as usize
    }

    /// Total literal count across all product terms (a secondary cost
    /// measure: number of word-level AND/NOT operations).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(|c| c.literal_count() as usize).sum()
    }

    /// `true` if the expression is satisfied by min-term `code`.
    #[must_use]
    pub fn covers(&self, code: u64) -> bool {
        self.cubes.iter().any(|c| c.covers(code))
    }

    /// Enumerates all satisfying codes in `0..2^k`, ascending.
    ///
    /// Intended for verification; cost is `O(cubes · 2^k)` in the worst
    /// case but proportional to the covered set via cube expansion.
    #[must_use]
    pub fn truth_set(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.cubes.iter().flat_map(|c| c.expand(self.k)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Semantic equivalence: identical truth sets.
    #[must_use]
    pub fn equivalent(&self, other: &Self) -> bool {
        self.k == other.k && self.truth_set() == other.truth_set()
    }

    /// Parses the paper's notation: product terms of `B<i>` literals with
    /// optional `'` for negation, joined by `+`. `"0"` parses as the empty
    /// sum and `"1"` as the tautology.
    ///
    /// ```
    /// use ebi_boolean::DnfExpr;
    /// let e = DnfExpr::parse("B2'B1'B0 + B2B1'B0", 3).unwrap();
    /// assert_eq!(e.vectors_accessed(), 3);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input or variables `>= k`.
    pub fn parse(text: &str, k: u32) -> Result<Self, ParseExprError> {
        let trimmed = text.trim();
        if trimmed == "0" {
            return Ok(Self::empty(k));
        }
        let mut cubes = Vec::new();
        for term in trimmed.split('+') {
            let term = term.trim();
            if term == "1" {
                cubes.push(Cube::tautology());
                continue;
            }
            if term.is_empty() {
                return Err(ParseExprError {
                    detail: "empty product term".into(),
                });
            }
            let mut mask = 0u64;
            let mut value = 0u64;
            let mut chars = term.chars().peekable();
            while let Some(ch) = chars.next() {
                if ch.is_whitespace() {
                    continue;
                }
                if ch != 'B' {
                    return Err(ParseExprError {
                        detail: format!("expected 'B', found {ch:?} in {term:?}"),
                    });
                }
                let mut digits = String::new();
                while let Some(d) = chars.peek().filter(|d| d.is_ascii_digit()) {
                    digits.push(*d);
                    chars.next();
                }
                if digits.is_empty() {
                    return Err(ParseExprError {
                        detail: format!("'B' without index in {term:?}"),
                    });
                }
                let idx: u32 = digits.parse().map_err(|_| ParseExprError {
                    detail: format!("bad index {digits:?}"),
                })?;
                if idx >= k {
                    return Err(ParseExprError {
                        detail: format!("variable B{idx} out of range for k={k}"),
                    });
                }
                let negated = chars.peek() == Some(&'\'');
                if negated {
                    chars.next();
                }
                if mask >> idx & 1 == 1 {
                    return Err(ParseExprError {
                        detail: format!("variable B{idx} repeated in {term:?}"),
                    });
                }
                mask |= 1 << idx;
                if !negated {
                    value |= 1 << idx;
                }
            }
            cubes.push(Cube::new(value, mask));
        }
        Ok(Self::from_cubes(cubes, k))
    }
}

impl fmt::Display for DnfExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("0");
        }
        let rendered: Vec<String> = self.cubes.iter().map(Cube::display).collect();
        f.write_str(&rendered.join(" + "))
    }
}

impl fmt::Debug for DnfExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DnfExpr[k={}]({self})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_sum_covers_exactly_its_codes() {
        let e = DnfExpr::minterm_sum(&[0b00, 0b10], 2);
        assert_eq!(e.truth_set(), vec![0b00, 0b10]);
        assert!(e.covers(0b10));
        assert!(!e.covers(0b01));
        assert_eq!(e.vectors_accessed(), 2);
        assert_eq!(e.literal_count(), 4);
    }

    #[test]
    fn parse_roundtrips_display() {
        for text in ["B1'", "B2'B1'B0 + B2B1'", "B0", "1", "0"] {
            let e = DnfExpr::parse(text, 3).unwrap();
            let again = DnfExpr::parse(&e.to_string(), 3).unwrap();
            assert_eq!(e, again, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(DnfExpr::parse("X1", 2).is_err());
        assert!(DnfExpr::parse("B", 2).is_err());
        assert!(DnfExpr::parse("B5", 2).is_err(), "variable out of range");
        assert!(DnfExpr::parse("B1B1", 2).is_err(), "repeated variable");
        assert!(DnfExpr::parse("B1 + ", 2).is_err(), "trailing +");
    }

    #[test]
    fn parse_accepts_whitespace_and_multidigit_indices() {
        let e = DnfExpr::parse("B13' B2", 14).unwrap();
        assert_eq!(e.support(), (1 << 13) | (1 << 2));
    }

    #[test]
    fn constants_behave() {
        let f = DnfExpr::empty(3);
        assert!(f.is_false() && !f.is_true());
        assert!(f.truth_set().is_empty());
        let t = DnfExpr::parse("1", 3).unwrap();
        assert!(t.is_true() && !t.is_false());
        assert_eq!(t.truth_set().len(), 8);
        assert_eq!(t.vectors_accessed(), 0);
    }

    #[test]
    fn equivalence_is_semantic_not_syntactic() {
        // B1'B0' + B1'B0  ≡  B1'
        let raw = DnfExpr::minterm_sum(&[0b00, 0b01], 2);
        let reduced = DnfExpr::parse("B1'", 2).unwrap();
        assert!(raw.equivalent(&reduced));
        assert_ne!(raw, reduced);
        let other = DnfExpr::parse("B0'", 2).unwrap();
        assert!(!raw.equivalent(&other));
    }

    #[test]
    fn duplicate_cubes_are_normalised_away() {
        let e = DnfExpr::from_cubes(
            vec![
                Cube::minterm(1, 2),
                Cube::minterm(1, 2),
                Cube::minterm(2, 2),
            ],
            2,
        );
        assert_eq!(e.cubes().len(), 2);
    }

    #[test]
    fn support_counts_negated_variables_too() {
        // Reading B2' still requires fetching bitmap vector B2.
        let e = DnfExpr::parse("B2'B0", 3).unwrap();
        assert_eq!(e.vectors_accessed(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond k")]
    fn from_cubes_rejects_out_of_scope_variables() {
        let _ = DnfExpr::from_cubes(vec![Cube::minterm(0b100, 3)], 2);
    }
}
