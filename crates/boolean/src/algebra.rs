//! Boolean algebra over [`DnfExpr`]: conjunction, disjunction and
//! complement with re-minimisation.
//!
//! Compound selections on one attribute — `(A IN s1 AND A NOT IN s2) OR
//! A = v` — reduce to a single retrieval expression instead of several
//! bitmap round trips; the combinators below build that expression and
//! re-run logical reduction so the vector count stays minimal.
//!
//! All operations work on the truth sets (`2^k` enumeration), so they
//! are intended for the index widths the paper deals in (`k ≤ ~20`),
//! not arbitrary formulas.

use crate::expr::DnfExpr;
use crate::qm;

/// Disjunction: `a + b`, re-minimised against the shared don't-cares.
#[must_use]
pub fn or(a: &DnfExpr, b: &DnfExpr, dc: &[u64]) -> DnfExpr {
    assert_eq!(a.k(), b.k(), "operands over different variable counts");
    let mut on = a.truth_set();
    on.extend(b.truth_set());
    on.sort_unstable();
    on.dedup();
    let on: Vec<u64> = on.into_iter().filter(|c| !dc.contains(c)).collect();
    qm::minimize(&on, dc, a.k())
}

/// Conjunction: `a · b`, re-minimised against the shared don't-cares.
#[must_use]
pub fn and(a: &DnfExpr, b: &DnfExpr, dc: &[u64]) -> DnfExpr {
    assert_eq!(a.k(), b.k(), "operands over different variable counts");
    let tb = b.truth_set();
    let on: Vec<u64> = a
        .truth_set()
        .into_iter()
        .filter(|c| tb.binary_search(c).is_ok())
        .filter(|c| !dc.contains(c))
        .collect();
    qm::minimize(&on, dc, a.k())
}

/// Complement: `a'`, re-minimised against the don't-cares. Codes in
/// `dc` stay free (they belong to no selection either way).
#[must_use]
pub fn complement(a: &DnfExpr, dc: &[u64]) -> DnfExpr {
    let ta = a.truth_set();
    let on: Vec<u64> = (0..(1u64 << a.k()))
        .filter(|c| ta.binary_search(c).is_err())
        .filter(|c| !dc.contains(c))
        .collect();
    qm::minimize(&on, dc, a.k())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(text: &str, k: u32) -> DnfExpr {
        DnfExpr::parse(text, k).unwrap()
    }

    #[test]
    fn or_reduces_adjacent_minterms() {
        let a = expr("B1'B0'", 2);
        let b = expr("B1'B0", 2);
        assert_eq!(or(&a, &b, &[]), expr("B1'", 2));
    }

    #[test]
    fn and_intersects_truth_sets() {
        let a = expr("B1'", 2); // {00, 01}
        let b = expr("B0", 2); // {01, 11}
        assert_eq!(and(&a, &b, &[]), expr("B1'B0", 2));
        // Disjoint conjunction is false.
        assert!(and(&expr("B1", 2), &expr("B1'", 2), &[]).is_false());
    }

    #[test]
    fn complement_respects_dontcares() {
        // k=2, a covers {00}; dc {11}: complement covers {01, 10} and
        // may cover 11 freely.
        let a = expr("B1'B0'", 2);
        let c = complement(&a, &[0b11]);
        assert!(!c.covers(0b00));
        assert!(c.covers(0b01) && c.covers(0b10));
        // With the dc the reduction is B1 + B0 (2 literals).
        assert_eq!(c, expr("B1 + B0", 2));
        // Without: the XOR shape.
        let c2 = complement(&a, &[]);
        assert!(c2.equivalent(&expr("B1'B0 + B1B0'", 2)) || c2.covers(0b11));
    }

    #[test]
    fn de_morgan_holds_semantically() {
        let a = expr("B2'B1", 3);
        let b = expr("B0", 3);
        let lhs = complement(&or(&a, &b, &[]), &[]);
        let rhs = and(&complement(&a, &[]), &complement(&b, &[]), &[]);
        assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn double_complement_is_identity_modulo_dontcares() {
        let a = expr("B2B1' + B2'B0", 3);
        let back = complement(&complement(&a, &[]), &[]);
        assert!(back.equivalent(&a));
    }

    #[test]
    fn composition_keeps_vector_counts_minimal() {
        // ({00,01} OR {10,11}) = everything → tautology, 0 vectors.
        let a = expr("B1'", 2);
        let b = expr("B1", 2);
        let u = or(&a, &b, &[]);
        assert!(u.is_true());
        assert_eq!(u.vectors_accessed(), 0);
    }

    #[test]
    #[should_panic(expected = "different variable counts")]
    fn mismatched_widths_panic() {
        let _ = or(&expr("B0", 1), &expr("B1", 2), &[]);
    }
}
