//! Boolean-function machinery for encoded bitmap indexing.
//!
//! Wu & Buchmann's encoded bitmap index answers a selection by evaluating a
//! *retrieval Boolean function* — a sum of `k`-variable min-terms, one per
//! selected value — over the `k` bitmap slices. The whole performance story
//! of the paper rests on **logical reduction**: `B1'B0' + B1'B0` collapses
//! to `B1'`, and the number of *distinct bitmap vectors* referenced after
//! reduction is the dominant query cost (footnote 4 of the paper).
//!
//! This crate provides:
//!
//! * [`Cube`] — an implicant (product term) over up to 63 variables;
//! * [`DnfExpr`] — a sum of cubes, with evaluation over bitmap slices,
//!   truth-set enumeration, and a small parser for paper-style formulas
//!   (`"B2'B1 + B2B1'"`);
//! * [`qm`] — Quine–McCluskey prime-implicant generation with don't-cares
//!   plus Petrick/greedy cover selection (the "logical reduction" whose
//!   brute-force cost the paper calls exponential);
//! * [`support`] — the *exact* minimum number of bitmap vectors any
//!   expression for the selection must read, computed as a minimum hitting
//!   set (used to verify Theorems 2.2/2.3 and generate Figure 9's
//!   best-case curve);
//! * [`eval`] — expression evaluation over `&[BitVec]` slices with a
//!   vectors-accessed tracker implementing the paper's cost metric;
//! * [`dontcare`] — footnote 3's don't-care optimisation;
//! * [`algebra`] — AND/OR/NOT composition of reduced expressions for
//!   compound single-attribute selections.
//!
//! # Example
//!
//! ```
//! use ebi_boolean::{qm, DnfExpr};
//!
//! // Figure 1: select A=a (code 00) OR A=b (code 01) over k=2 slices.
//! let reduced = qm::minimize(&[0b00, 0b01], &[], 2);
//! // The sum of min-terms B1'B0' + B1'B0 reduces to B1'.
//! assert_eq!(reduced, DnfExpr::parse("B1'", 2).unwrap());
//! assert_eq!(reduced.vectors_accessed(), 1);
//! ```

pub mod algebra;
pub mod cube;
pub mod dontcare;
pub mod eval;
pub mod expr;
pub mod qm;
pub mod support;

pub use cube::Cube;
pub use eval::{
    eval_expr, eval_expr_naive, eval_expr_stored, eval_expr_summarized, eval_expr_tracked,
    AccessTracker, EvalError, FusedPlan, StoredPlan,
};
pub use expr::DnfExpr;
pub use qm::{CoverMethod, ReduceStats};
