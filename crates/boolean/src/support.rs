//! Exact minimum bitmap-vector support of a selection.
//!
//! Independent of *which* reduced expression is chosen, a selection with
//! on-set `ON` and off-set `OFF` can be expressed using only the bitmap
//! vectors in a variable set `V` **iff** no on-code and off-code agree on
//! every variable of `V` — i.e. `V` hits the XOR-difference mask of every
//! (on, off) pair. The minimum number of vectors any retrieval expression
//! must read is therefore a *minimum hitting set* over those difference
//! masks.
//!
//! This gives the exact lower bound the paper's Theorems 2.2/2.3 speak
//! about ("the number of bit vectors which need to be accessed is
//! minimized") and drives the best-case `c_e` curve of Figure 9.

use crate::expr::DnfExpr;
use crate::qm;
use std::collections::HashSet;

/// Practical cap on `k` for exact support computation: the off-set is
/// enumerated, so `2^k` must stay small.
pub const MAX_SUPPORT_VARS: u32 = 22;

/// Returns the lexicographically-smallest minimum-cardinality variable set
/// (as a bitmask) sufficient to express the selection, or `0` when the
/// selection is constant (empty on-set, or on ∪ dc = universe).
///
/// # Panics
///
/// Panics if `k > MAX_SUPPORT_VARS`.
#[must_use]
pub fn min_support(on: &[u64], dc: &[u64], k: u32) -> u64 {
    let masks = difference_masks(on, dc, k);
    minimum_hitting_set(&masks, k)
}

/// Number of vectors in the minimum support — the exact optimal `c_e`.
#[must_use]
pub fn min_vectors(on: &[u64], dc: &[u64], k: u32) -> usize {
    min_support(on, dc, k).count_ones() as usize
}

/// Produces a reduced expression that achieves the minimum vector count:
/// projects the selection onto the minimum support and runs
/// Quine–McCluskey in the projected space.
///
/// The result is semantically equivalent to `minimize(on, dc, k)` on all
/// non-don't-care codes, but is guaranteed vector-optimal.
#[must_use]
pub fn minimize_vectors(on: &[u64], dc: &[u64], k: u32) -> DnfExpr {
    if on.is_empty() {
        return DnfExpr::empty(k);
    }
    let support = min_support(on, dc, k);
    let vars: Vec<u32> = (0..k).filter(|&i| support >> i & 1 == 1).collect();
    let kk = vars.len() as u32;

    let project = |code: u64| -> u64 {
        vars.iter()
            .enumerate()
            .fold(0u64, |acc, (slot, &v)| acc | ((code >> v & 1) << slot))
    };
    // A projected code is ON if any on-code projects to it; OFF if any
    // off-code does (support validity guarantees no overlap); DC otherwise.
    let on_proj: HashSet<u64> = on.iter().map(|&c| project(c)).collect();
    let mut off_proj: HashSet<u64> = HashSet::new();
    let dc_set: HashSet<u64> = dc.iter().copied().collect();
    let on_set: HashSet<u64> = on.iter().copied().collect();
    for code in 0..(1u64 << k) {
        if !on_set.contains(&code) && !dc_set.contains(&code) {
            off_proj.insert(project(code));
        }
    }
    let dc_proj: Vec<u64> = (0..(1u64 << kk))
        .filter(|p| !on_proj.contains(p) && !off_proj.contains(p))
        .collect();
    let on_proj_vec: Vec<u64> = {
        let mut v: Vec<u64> = on_proj.into_iter().collect();
        v.sort_unstable();
        v
    };
    let reduced = qm::minimize(&on_proj_vec, &dc_proj, kk);

    // Lift the projected cubes back to the original variable indices.
    let cubes = reduced
        .cubes()
        .iter()
        .map(|c| {
            let mut value = 0u64;
            let mut mask = 0u64;
            for (slot, &v) in vars.iter().enumerate() {
                if c.mask() >> slot & 1 == 1 {
                    mask |= 1 << v;
                    if c.value() >> slot & 1 == 1 {
                        value |= 1 << v;
                    }
                }
            }
            crate::cube::Cube::new(value, mask)
        })
        .collect();
    DnfExpr::from_cubes(cubes, k)
}

/// Collects the distinct XOR-difference masks between the on-set and the
/// off-set (universe minus on minus dc).
fn difference_masks(on: &[u64], dc: &[u64], k: u32) -> Vec<u64> {
    assert!(
        k <= MAX_SUPPORT_VARS,
        "min_support limited to k <= {MAX_SUPPORT_VARS}, got {k}"
    );
    let on_set: HashSet<u64> = on.iter().copied().collect();
    let dc_set: HashSet<u64> = dc.iter().copied().collect();
    let mut masks: HashSet<u64> = HashSet::new();
    for code in 0..(1u64 << k) {
        if on_set.contains(&code) || dc_set.contains(&code) {
            continue;
        }
        for &o in &on_set {
            masks.insert(o ^ code);
        }
    }
    let mut v: Vec<u64> = masks.into_iter().collect();
    v.sort_unstable();
    v
}

/// Minimum hitting set over difference masks, found by branch-and-bound.
/// Ties are broken toward the lexicographically smallest variable mask.
fn minimum_hitting_set(masks: &[u64], k: u32) -> u64 {
    if masks.is_empty() {
        return 0;
    }
    // Remove masks that are supersets of other masks — hitting the subset
    // hits the superset too.
    let mut reduced: Vec<u64> = Vec::new();
    let mut sorted = masks.to_vec();
    sorted.sort_unstable_by_key(|m| m.count_ones());
    for &m in &sorted {
        // Not a `contains`: r ranges over reduced (clippy false positive).
        #[allow(clippy::manual_contains)]
        if !reduced.iter().any(|&r| m & r == r) {
            reduced.push(m);
        }
    }

    // Seed branch-and-bound with a greedy hitting set so pruning bites
    // immediately even on adversarial mask families.
    let mut best: u64 = greedy_hitting_set(&reduced, k);
    let mut best_size = best.count_ones();
    search(&reduced, 0, 0, &mut best, &mut best_size);
    best
}

/// Greedy hitting set: repeatedly take the variable hitting the most
/// still-unhit masks.
fn greedy_hitting_set(masks: &[u64], k: u32) -> u64 {
    let mut chosen = 0u64;
    let mut unhit: Vec<u64> = masks.to_vec();
    while !unhit.is_empty() {
        let var = (0..k)
            .max_by_key(|&v| unhit.iter().filter(|&&m| m >> v & 1 == 1).count())
            .expect("k > 0 when masks remain");
        chosen |= 1 << var;
        unhit.retain(|&m| m & chosen == 0);
    }
    chosen
}

fn search(masks: &[u64], chosen: u64, depth: u32, best: &mut u64, best_size: &mut u32) {
    // Find the first mask not yet hit.
    let unhit = masks.iter().copied().find(|&m| m & chosen == 0);
    let Some(m) = unhit else {
        if depth < *best_size || (depth == *best_size && chosen < *best) {
            *best = chosen;
            *best_size = depth;
        }
        return;
    };
    if depth + 1 > *best_size {
        return; // cannot improve
    }
    let mut bits = m;
    while bits != 0 {
        let bit = bits & bits.wrapping_neg();
        bits &= bits - 1;
        search(masks, chosen | bit, depth + 1, best, best_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_block_support() {
        // Codes 0..2^j out of 2^k need exactly the top k-j vectors.
        let k = 6u32;
        for j in 0..=k {
            let on: Vec<u64> = (0..(1u64 << j)).collect();
            assert_eq!(min_vectors(&on, &[], k), (k - j) as usize, "j={j}");
        }
    }

    #[test]
    fn full_and_empty_selection_need_no_vectors() {
        let all: Vec<u64> = (0..8).collect();
        assert_eq!(min_vectors(&all, &[], 3), 0);
        assert_eq!(min_vectors(&[], &[], 3), 0);
    }

    #[test]
    fn single_value_needs_all_vectors_without_dontcares() {
        assert_eq!(min_vectors(&[0b101], &[], 3), 3);
        // ...but don't-cares can reduce it: with only codes {101, 010}
        // meaningful (everything else dc), one variable separates them.
        let dc: Vec<u64> = (0..8).filter(|&c| c != 0b101 && c != 0b010).collect();
        assert_eq!(min_vectors(&[0b101], &dc, 3), 1);
    }

    #[test]
    fn matches_figure3_costs() {
        // Figure 3(a): {000,100,001,101} needs 1 vector (B1).
        assert_eq!(min_vectors(&[0b000, 0b100, 0b001, 0b101], &[], 3), 1);
        // Figure 3(b): {000,011,001,101} needs 3.
        assert_eq!(min_vectors(&[0b000, 0b011, 0b001, 0b101], &[], 3), 3);
    }

    #[test]
    fn minimize_vectors_is_vector_optimal_and_correct() {
        let mut state = 0xDEADBEEFCAFEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in [3u32, 4, 5] {
            for _ in 0..25 {
                let mut on = Vec::new();
                let mut dc = Vec::new();
                for code in 0..(1u64 << k) {
                    match next() % 5 {
                        0 | 1 => on.push(code),
                        2 => dc.push(code),
                        _ => {}
                    }
                }
                let opt = minimize_vectors(&on, &dc, k);
                assert_eq!(
                    opt.vectors_accessed(),
                    min_vectors(&on, &dc, k),
                    "on={on:?} dc={dc:?}"
                );
                // Correctness on all non-dc codes.
                let dc_set: HashSet<u64> = dc.iter().copied().collect();
                for code in 0..(1u64 << k) {
                    if dc_set.contains(&code) {
                        continue;
                    }
                    assert_eq!(opt.covers(code), on.contains(&code), "code {code:#b}");
                }
            }
        }
    }

    #[test]
    fn qm_minimize_matches_exact_bound_on_small_cases() {
        // For small instances the Petrick path of qm::minimize should
        // reach the exact vector optimum.
        for on in [
            vec![0b00u64, 0b01],
            vec![0b000, 0b100, 0b001, 0b101],
            vec![0b001, 0b101, 0b011, 0b111],
            vec![0b0u64],
        ] {
            let k = 3;
            let e = qm::minimize(&on, &[], k);
            assert_eq!(
                e.vectors_accessed(),
                min_vectors(&on, &[], k),
                "on={on:?} expr={e}"
            );
        }
    }

    #[test]
    fn hitting_set_prefers_smallest_lexicographic() {
        // Two symmetric options {var0} or {var1}: picks var0.
        let masks = vec![0b11u64];
        assert_eq!(minimum_hitting_set(&masks, 2), 0b01);
    }
}
