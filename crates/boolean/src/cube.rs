//! Implicants (product terms) over bitmap-slice variables.

use std::fmt;

/// Maximum number of Boolean variables (bitmap slices) supported.
///
/// `k = ceil(log2 |A|)`, so 63 slices covers attribute cardinalities far
/// beyond anything a warehouse dimension reaches (2^63 distinct values).
pub const MAX_VARS: u32 = 63;

/// A product term (implicant) over `k` Boolean variables.
///
/// Variable `i` corresponds to bitmap slice `B_i` (LSB-first, matching the
/// paper's `B_0 … B_{k-1}`). A cube fixes some variables to a polarity and
/// leaves the rest absent:
///
/// * `mask` bit `i` = 1 ⇒ variable `i` appears in the product;
/// * `value` bit `i` (only meaningful where `mask` is set) ⇒ the variable
///   appears positively (`B_i`) if 1, negated (`B_i'`) if 0.
///
/// A full-mask cube over `k` variables is a *min-term* — the paper's
/// fundamental conjunction of Definition 2.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    value: u64,
    mask: u64,
}

impl Cube {
    /// Creates a cube from fixed-variable `mask` and polarity `value`.
    ///
    /// Bits of `value` outside `mask` are cleared, so equal cubes compare
    /// equal regardless of how the caller set don't-care value bits.
    #[must_use]
    pub fn new(value: u64, mask: u64) -> Self {
        Self {
            value: value & mask,
            mask,
        }
    }

    /// The min-term for `code` over `k` variables: every variable fixed.
    ///
    /// This is the retrieval function `f_v` of Definition 2.1 for a value
    /// encoded as `code`.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_VARS` or `code` does not fit in `k` bits.
    #[must_use]
    pub fn minterm(code: u64, k: u32) -> Self {
        assert!(k <= MAX_VARS, "k={k} exceeds MAX_VARS");
        let mask = if k == 0 { 0 } else { (1u64 << k) - 1 };
        assert!(code & !mask == 0, "code {code:#b} does not fit in {k} bits");
        Self::new(code, mask)
    }

    /// The always-true cube (empty product).
    #[must_use]
    pub fn tautology() -> Self {
        Self { value: 0, mask: 0 }
    }

    /// Polarity bits (meaningful where [`Cube::mask`] is set).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Fixed-variable mask.
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of literals in the product term.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// `true` if this cube's truth set contains min-term `code`.
    #[must_use]
    pub fn covers(&self, code: u64) -> bool {
        code & self.mask == self.value
    }

    /// `true` if every min-term covered by `other` is covered by `self`.
    #[must_use]
    pub fn subsumes(&self, other: &Cube) -> bool {
        // self's fixed vars must be a subset of other's, with equal polarity.
        self.mask & !other.mask == 0 && other.value & self.mask == self.value
    }

    /// Attempts the Quine–McCluskey merge: if the cubes fix the same
    /// variables and differ in exactly one polarity bit, returns the merged
    /// cube with that variable dropped.
    #[must_use]
    pub fn combine(&self, other: &Cube) -> Option<Cube> {
        if self.mask != other.mask {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() != 1 {
            return None;
        }
        Some(Cube::new(self.value & !diff, self.mask & !diff))
    }

    /// Enumerates the min-terms (over `k` variables) covered by this cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube fixes variables at positions `>= k`.
    pub fn expand(&self, k: u32) -> Vec<u64> {
        let universe = if k == 0 { 0 } else { (1u64 << k) - 1 };
        assert!(self.mask & !universe == 0, "cube uses variables >= k");
        let free = universe & !self.mask;
        // Iterate all subsets of the free positions.
        let mut out = Vec::with_capacity(1 << free.count_ones());
        let mut sub = 0u64;
        loop {
            out.push(self.value | sub);
            if sub == free {
                break;
            }
            sub = (sub.wrapping_sub(free)) & free;
        }
        out.sort_unstable();
        out
    }

    /// Renders in the paper's notation: `B2'B1B0`, MSB-first; the empty
    /// product renders as `1`.
    #[must_use]
    pub fn display(&self) -> String {
        if self.mask == 0 {
            return "1".to_string();
        }
        let mut s = String::new();
        for i in (0..=63u32).rev() {
            if self.mask >> i & 1 == 1 {
                s.push('B');
                s.push_str(&i.to_string());
                if self.value >> i & 1 == 0 {
                    s.push('\'');
                }
            }
        }
        s
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.display())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_fixes_all_variables() {
        let m = Cube::minterm(0b101, 3);
        assert_eq!(m.literal_count(), 3);
        assert!(m.covers(0b101));
        assert!(!m.covers(0b100));
        assert_eq!(m.display(), "B2B1'B0");
    }

    #[test]
    fn value_bits_outside_mask_are_normalised() {
        let a = Cube::new(0b111, 0b101);
        let b = Cube::new(0b101, 0b101);
        assert_eq!(a, b);
    }

    #[test]
    fn combine_merges_distance_one_cubes() {
        // B1'B0' + B1'B0 -> B1'  (Figure 1's reduction for {a, b}).
        let a = Cube::minterm(0b00, 2);
        let b = Cube::minterm(0b01, 2);
        let merged = a.combine(&b).unwrap();
        assert_eq!(merged.display(), "B1'");
        assert!(merged.covers(0b00) && merged.covers(0b01));
        assert!(!merged.covers(0b10));
    }

    #[test]
    fn combine_rejects_distance_two_or_mask_mismatch() {
        let a = Cube::minterm(0b00, 2);
        let c = Cube::minterm(0b11, 2);
        assert_eq!(a.combine(&c), None);
        let wide = Cube::new(0b0, 0b01);
        assert_eq!(a.combine(&wide), None);
    }

    #[test]
    fn subsumes_orders_by_generality() {
        let general = Cube::new(0b00, 0b10); // B1'
        let specific = Cube::minterm(0b01, 2); // B1'B0
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
        assert!(general.subsumes(&general));
        assert!(Cube::tautology().subsumes(&specific));
    }

    #[test]
    fn expand_enumerates_covered_minterms() {
        let c = Cube::new(0b00, 0b10); // B1' over k=3 leaves vars 0 and 2 free
        assert_eq!(c.expand(3), vec![0b000, 0b001, 0b100, 0b101]);
        assert_eq!(Cube::tautology().expand(2), vec![0, 1, 2, 3]);
        assert_eq!(Cube::minterm(0b11, 2).expand(2), vec![3]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Cube::minterm(0b000, 3).display(), "B2'B1'B0'");
        assert_eq!(Cube::new(0b100, 0b110).display(), "B2B1'");
        assert_eq!(Cube::tautology().display(), "1");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn minterm_rejects_oversized_code() {
        let _ = Cube::minterm(0b100, 2);
    }
}
