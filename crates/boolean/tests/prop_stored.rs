//! Differential property tests for compressed-domain evaluation.
//!
//! [`eval_expr_stored`] consumes slices in whatever container each one
//! landed in ([`SliceStorage`]); its result must be bit-identical to
//! the naive evaluator running over fully dense copies, for every
//! mixture of Dense/Roaring/WAH slices, with and without segment
//! summaries — and the paper's `vectors_accessed` metric must not
//! notice the container choice at all.

use ebi_bitvec::{BitVec, SliceStorage, StoragePolicy};
use ebi_boolean::{eval_expr_naive, eval_expr_stored, AccessTracker, Cube, DnfExpr};
use proptest::prelude::*;

/// Deterministic xorshift so slice contents derive from one seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds `k` bitmap slices for `rows` pseudo-random codes, skewed so
/// high-order slices carry long zero runs (the compressible case).
fn random_slices(k: u32, rows: usize, seed: u64) -> Vec<BitVec> {
    let mut slices = vec![BitVec::zeros(rows); k as usize];
    let mut state = seed;
    for row in 0..rows {
        let r = next(&mut state);
        // 3 in 4 rows draw from the two hot low codes; the rest sweep
        // the whole code space.
        let code = if r.is_multiple_of(4) {
            r >> 2 & ((1u64 << k) - 1)
        } else {
            r % 2
        };
        for (i, slice) in slices.iter_mut().enumerate() {
            if code >> i & 1 == 1 {
                slice.set(row, true);
            }
        }
    }
    slices
}

/// Lowers raw `(value, mask, tag)` triples into a DNF over `k` variables.
fn build_expr(specs: &[(u64, u64, u32)], k: u32) -> DnfExpr {
    let universe = (1u64 << k) - 1;
    let cubes = specs
        .iter()
        .map(|&(value, mask, tag)| {
            if tag == 0 {
                Cube::tautology()
            } else {
                Cube::new(value & universe, mask & universe)
            }
        })
        .collect();
    DnfExpr::from_cubes(cubes, k)
}

/// Packs each slice under a pseudo-random per-slice policy.
fn mixed_storage(dense: &[BitVec], seed: u64) -> Vec<SliceStorage> {
    let mut state = seed;
    dense
        .iter()
        .map(|b| {
            let policy = match next(&mut state) % 4 {
                0 => StoragePolicy::Dense,
                1 => StoragePolicy::Roaring,
                2 => StoragePolicy::Wah,
                _ => StoragePolicy::Adaptive,
            };
            SliceStorage::from_dense(b.clone(), policy)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stored_eval_matches_naive_over_mixed_containers(
        seed in any::<u64>(),
        k in 1u32..=6,
        rows in 0usize..30_000,
        specs in prop::collection::vec((any::<u64>(), any::<u64>(), 0u32..8), 0..6),
    ) {
        let dense = random_slices(k, rows, seed);
        let stored = mixed_storage(&dense, seed ^ 0xA5A5);
        let expr = build_expr(&specs, k);
        let naive = eval_expr_naive(&expr, &dense, rows);

        let mut tracker = AccessTracker::new();
        let got = eval_expr_stored(&expr, &stored, None, rows, &mut tracker);
        prop_assert_eq!(&got, &naive, "stored != naive (k={}, rows={})", k, rows);
        // The paper's cost metric counts vectors, not bytes: container
        // choice must leave it untouched.
        prop_assert_eq!(tracker.vectors_accessed(), expr.vectors_accessed());

        // Summary pruning on top of compressed storage changes nothing.
        let summaries: Vec<_> = stored.iter().map(SliceStorage::summary).collect();
        let mut tracker = AccessTracker::new();
        let pruned = eval_expr_stored(&expr, &stored, Some(&summaries), rows, &mut tracker);
        prop_assert_eq!(&pruned, &naive, "summarized stored != naive");
        prop_assert_eq!(tracker.vectors_accessed(), expr.vectors_accessed());
    }

    #[test]
    fn stored_eval_is_storage_independent(
        seed in any::<u64>(),
        k in 1u32..=5,
        rows in 1usize..20_000,
        picks in prop::collection::btree_set(0u64..32, 1..8),
    ) {
        // The same min-term sum under four uniform storage regimes:
        // identical bitmaps, identical vectors_accessed, and the
        // compressed runs charge no fewer *vectors*.
        let codes: Vec<u64> = picks.into_iter().filter(|&c| c < (1 << k)).collect();
        let expr = DnfExpr::minterm_sum(&codes, k);
        let dense = random_slices(k, rows, seed);
        let mut expect: Option<(BitVec, usize)> = None;
        for policy in [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
            StoragePolicy::Adaptive,
        ] {
            let stored: Vec<SliceStorage> = dense
                .iter()
                .map(|b| SliceStorage::from_dense(b.clone(), policy))
                .collect();
            let mut tracker = AccessTracker::new();
            let got = eval_expr_stored(&expr, &stored, None, rows, &mut tracker);
            match &expect {
                None => expect = Some((got, tracker.vectors_accessed())),
                Some((bits, va)) => {
                    prop_assert_eq!(&got, bits, "{:?} diverged", policy);
                    prop_assert_eq!(tracker.vectors_accessed(), *va, "{:?} cost", policy);
                }
            }
        }
    }
}
