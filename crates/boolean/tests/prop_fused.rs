//! Differential property tests for the fused evaluation engine.
//!
//! The fused word-streaming kernels (and their summary-pruned variant)
//! must be **bit-identical** to the retained naive per-cube evaluator
//! [`eval_expr_naive`] on arbitrary DNF expressions. The strategies
//! deliberately cover the awkward corners: negated literals (where the
//! kernel's AND-NOT introduces garbage past `row_count` that tail
//! masking must clear), tautology cubes (empty product — constant
//! true), the empty expression (constant false), row counts that are
//! not multiples of the 4096-bit segment, and zero-row inputs.

use ebi_bitvec::summary::summarize_slices;
use ebi_bitvec::BitVec;
use ebi_boolean::{
    eval_expr_naive, eval_expr_summarized, eval_expr_tracked, AccessTracker, Cube, DnfExpr,
};
use proptest::prelude::*;

/// Deterministic xorshift so slice contents derive from one seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds `k` bitmap slices for `rows` pseudo-random codes.
fn random_slices(k: u32, rows: usize, seed: u64) -> Vec<BitVec> {
    let mut slices = vec![BitVec::zeros(rows); k as usize];
    let mut state = seed;
    for row in 0..rows {
        let code = next(&mut state) % (1u64 << k);
        for (i, slice) in slices.iter_mut().enumerate() {
            if code >> i & 1 == 1 {
                slice.set(row, true);
            }
        }
    }
    slices
}

/// Lowers raw `(value, mask, tag)` triples into a DNF over `k` variables.
/// `tag == 0` forces a tautology cube so the empty product stays covered.
fn build_expr(specs: &[(u64, u64, u32)], k: u32) -> DnfExpr {
    let universe = (1u64 << k) - 1;
    let cubes = specs
        .iter()
        .map(|&(value, mask, tag)| {
            if tag == 0 {
                Cube::tautology()
            } else {
                Cube::new(value & universe, mask & universe)
            }
        })
        .collect();
    DnfExpr::from_cubes(cubes, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fused_matches_naive_on_random_dnf(
        seed in any::<u64>(),
        k in 1u32..=6,
        rows in 0usize..9000,
        specs in prop::collection::vec((any::<u64>(), any::<u64>(), 0u32..8), 0..6),
    ) {
        let slices = random_slices(k, rows, seed);
        let expr = build_expr(&specs, k);
        let naive = eval_expr_naive(&expr, &slices, rows);
        let mut tracker = AccessTracker::new();
        let fused = eval_expr_tracked(&expr, &slices, rows, &mut tracker);
        prop_assert_eq!(&fused, &naive, "fused != naive (k={}, rows={})", k, rows);
        // The paper's cost metric is structural: fusing must not change it.
        prop_assert_eq!(tracker.vectors_accessed(), expr.vectors_accessed());
    }

    #[test]
    fn vectors_accessed_is_invariant_under_forced_kernel_paths(
        seed in any::<u64>(),
        k in 1u32..=6,
        rows in 0usize..9000,
        specs in prop::collection::vec((any::<u64>(), any::<u64>(), 0u32..8), 0..6),
    ) {
        use ebi_bitvec::simd;

        let slices = random_slices(k, rows, seed);
        let expr = build_expr(&specs, k);
        let naive = eval_expr_naive(&expr, &slices, rows);
        // The paper's c_e is a property of the reduced expression, so
        // it may not move when the kernel dispatcher changes tier.
        for path in simd::available_paths() {
            let mut tracker = AccessTracker::new();
            let fused = simd::with_forced_path(path, || {
                eval_expr_tracked(&expr, &slices, rows, &mut tracker)
            });
            prop_assert_eq!(&fused, &naive, "fused != naive on {}", path.name());
            prop_assert_eq!(
                tracker.vectors_accessed(),
                expr.vectors_accessed(),
                "vectors_accessed moved on {}",
                path.name()
            );
        }
    }

    #[test]
    fn summarized_matches_naive_on_random_dnf(
        seed in any::<u64>(),
        k in 1u32..=5,
        rows in 0usize..20_000,
        specs in prop::collection::vec((any::<u64>(), any::<u64>(), 0u32..8), 0..5),
    ) {
        let slices = random_slices(k, rows, seed);
        let summaries = summarize_slices(&slices);
        let expr = build_expr(&specs, k);
        let naive = eval_expr_naive(&expr, &slices, rows);
        let mut tracker = AccessTracker::new();
        let pruned = eval_expr_summarized(&expr, &slices, &summaries, rows, &mut tracker);
        prop_assert_eq!(&pruned, &naive, "summary pruning changed the result");
    }

    #[test]
    fn fused_matches_naive_on_pure_minterm_sums(
        seed in any::<u64>(),
        k in 1u32..=4,
        rows in 1usize..6000,
        picks in prop::collection::btree_set(0u64..16, 0..8),
    ) {
        // Min-term sums are what selections actually lower to.
        let codes: Vec<u64> = picks.into_iter().filter(|&c| c < (1 << k)).collect();
        let slices = random_slices(k, rows, seed);
        let expr = DnfExpr::minterm_sum(&codes, k);
        let naive = eval_expr_naive(&expr, &slices, rows);
        let mut tracker = AccessTracker::new();
        let fused = eval_expr_tracked(&expr, &slices, rows, &mut tracker);
        prop_assert_eq!(&fused, &naive);
        // Row-population sanity: each selected code contributes its rows.
        let expected: usize = expr
            .truth_set()
            .iter()
            .map(|&c| {
                let mut state = seed;
                (0..rows)
                    .filter(|_| next(&mut state) % (1 << k) == c)
                    .count()
            })
            .sum();
        prop_assert_eq!(fused.count_ones(), expected);
    }
}

#[test]
fn empty_expression_is_all_zero_under_both_evaluators() {
    let slices = random_slices(3, 5000, 0xDEAD_BEEF);
    let expr = DnfExpr::empty(3);
    let naive = eval_expr_naive(&expr, &slices, 5000);
    let mut tracker = AccessTracker::new();
    let fused = eval_expr_tracked(&expr, &slices, 5000, &mut tracker);
    assert_eq!(fused, naive);
    assert_eq!(fused.count_ones(), 0);
    assert_eq!(tracker.vectors_accessed(), 0);
}
