//! Page-oriented B+tree — the value-list-index baseline.
//!
//! The paper's §2.1 compares simple bitmap indexes against "B-trees and
//! their variants", using the classic estimates
//!
//! * space: `1.44 · n / M × p` bytes (degree `M`, page size `p`),
//! * build: `O(n · log_{M/2} m) + O(n · log2(p/4))`,
//!
//! and derives the space crossover `m < 11.52 · p / M` (≈ 93 distinct
//! values at `p = 4K`, `M = 512`). This crate supplies both the *measured*
//! side (a real B+tree storing one RID list per key, with node-visit
//! counters, one node = one page) and the *analytic* side
//! ([`model`]) so experiment E12/E13 can print the two next to each other.

pub mod model;
mod node;
mod tree;

pub use tree::{BTreeIndex, BTreeStats};
