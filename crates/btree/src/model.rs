//! The paper's §2.1 analytic cost model for B-trees vs simple bitmaps.
//!
//! All quantities use the paper's symbols: `n = |T|` tuples, `m = |A|`
//! distinct attribute values, `M` B-tree degree, `p` page size in bytes.

/// Space of a B-tree on `n` keys: `1.44 · n / M × p` bytes (§2.1, after
/// Comer/Chu-Knott).
#[must_use]
pub fn btree_space_bytes(n: u64, degree_m: u64, page_size_p: u64) -> f64 {
    1.44 * n as f64 / degree_m as f64 * page_size_p as f64
}

/// Space of a simple bitmap index: `n × m / 8` bytes (§2.1).
#[must_use]
pub fn simple_bitmap_space_bytes(n: u64, m: u64) -> f64 {
    n as f64 * m as f64 / 8.0
}

/// Space of an encoded bitmap index: `n × ceil(log2 m) / 8` bytes plus a
/// mapping table of `m` entries (§3.1). The mapping-table term uses
/// `entry_bytes` per entry.
#[must_use]
pub fn encoded_bitmap_space_bytes(n: u64, m: u64, entry_bytes: u64) -> f64 {
    n as f64 * f64::from(slices_for_cardinality(m)) / 8.0 + (m * entry_bytes) as f64
}

/// `ceil(log2 m)` — bitmap vectors needed by an encoded index. Defined as
/// 1 for `m <= 2` (a one-value domain still needs one vector to exist).
#[must_use]
pub fn slices_for_cardinality(m: u64) -> u32 {
    match m {
        0..=2 => 1,
        _ => (m - 1).ilog2() + 1,
    }
}

/// The §2.1 crossover: a simple bitmap index is smaller than a B-tree iff
/// `m < 11.52 · p / M`.
#[must_use]
pub fn bitmap_smaller_than_btree_cardinality(page_size_p: u64, degree_m: u64) -> f64 {
    11.52 * page_size_p as f64 / degree_m as f64
}

/// Build-cost model of a B-tree (§2.1): `n · log_{M/2}(m) + n · log2(p/4)`
/// abstract operations (descend + leaf insert).
#[must_use]
pub fn btree_build_ops(n: u64, m: u64, degree_m: u64, page_size_p: u64) -> f64 {
    let half_m = degree_m as f64 / 2.0;
    let descend = if m <= 1 {
        0.0
    } else {
        (m as f64).ln() / half_m.ln()
    };
    let leaf = (page_size_p as f64 / 4.0).log2();
    n as f64 * (descend + leaf)
}

/// Build-cost model of a simple bitmap index (§2.1): `O(n × m)`.
#[must_use]
pub fn simple_bitmap_build_ops(n: u64, m: u64) -> f64 {
    (n * m) as f64
}

/// Build-cost model of an encoded bitmap index: `O(n × ceil(log2 m))`.
#[must_use]
pub fn encoded_bitmap_build_ops(n: u64, m: u64) -> f64 {
    n as f64 * f64::from(slices_for_cardinality(m))
}

/// Average sparsity of a simple bitmap vector: `(m-1)/m` (§2.1).
#[must_use]
pub fn simple_bitmap_sparsity(m: u64) -> f64 {
    assert!(m > 0, "cardinality must be positive");
    (m - 1) as f64 / m as f64
}

/// Expected sparsity of an encoded bitmap vector ≈ 1/2, independent of
/// `m` (§3.1).
#[must_use]
pub fn encoded_bitmap_sparsity() -> f64 {
    0.5
}

/// Number of compound B-trees needed to cover every conjunction over `n`
/// attributes: `2^n − 1` (§2.1, "cooperativity of indexes").
#[must_use]
pub fn compound_btrees_needed(attributes: u32) -> u64 {
    (1u64 << attributes) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crossover_is_93() {
        // p = 4K, M = 512 ⇒ m < 92.16, i.e. "smaller than 93".
        let x = bitmap_smaller_than_btree_cardinality(4096, 512);
        assert!((x - 92.16).abs() < 1e-9);
        assert!(simple_bitmap_space_bytes(1_000_000, 92) < btree_space_bytes(1_000_000, 512, 4096));
        assert!(simple_bitmap_space_bytes(1_000_000, 93) > btree_space_bytes(1_000_000, 512, 4096));
    }

    #[test]
    fn slices_match_ceil_log2() {
        let cases = [
            (1u64, 1u32),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (50, 6),
            (1000, 10),
            (1024, 10),
            (1025, 11),
            (12000, 14), // the paper's PRODUCTS example
        ];
        for (m, k) in cases {
            assert_eq!(slices_for_cardinality(m), k, "m={m}");
        }
    }

    #[test]
    fn encoded_space_is_logarithmic() {
        let n = 1_000_000;
        let simple = simple_bitmap_space_bytes(n, 12000);
        let encoded = encoded_bitmap_space_bytes(n, 12000, 8);
        // 12000 vectors vs 14: roughly three orders of magnitude.
        assert!(simple / encoded > 500.0, "{simple} vs {encoded}");
    }

    #[test]
    fn build_ops_ordering_for_small_cardinality() {
        // §2.1: for very large n and very small m, the B-tree build beats
        // O(n·m) only when m is large; at m = 2 the bitmap wins.
        let n = 10_000_000;
        assert!(simple_bitmap_build_ops(n, 2) < btree_build_ops(n, 2, 512, 4096));
        // ...and loses at high cardinality.
        assert!(simple_bitmap_build_ops(n, 10_000) > btree_build_ops(n, 10_000, 512, 4096));
    }

    #[test]
    fn sparsity_formulas() {
        assert!((simple_bitmap_sparsity(2) - 0.5).abs() < 1e-12);
        assert!((simple_bitmap_sparsity(1000) - 0.999).abs() < 1e-12);
        assert!((encoded_bitmap_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cooperativity_counts() {
        assert_eq!(compound_btrees_needed(1), 1);
        assert_eq!(compound_btrees_needed(3), 7);
        assert_eq!(compound_btrees_needed(10), 1023);
    }

    #[test]
    fn encoded_build_ops_beat_simple_at_high_cardinality() {
        let n = 1_000_000;
        assert!(encoded_bitmap_build_ops(n, 12000) < simple_bitmap_build_ops(n, 12000) / 100.0);
    }
}
