//! B+tree node representation (one node = one page).

/// Index of a node in the tree's arena.
pub(crate) type NodeId = usize;

/// A B+tree node.
///
/// Internal nodes hold `keys.len() + 1` children; `keys[i]` is the lowest
/// key reachable under `children[i + 1]`. Leaves hold one RID list per
/// key and are chained left-to-right for range scans.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Internal {
        keys: Vec<u64>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<u64>,
        /// Tuple-id list per key — the "value list" of a value-list index.
        rids: Vec<Vec<u32>>,
        next: Option<NodeId>,
    },
}
