//! The B+tree value-list index.

use crate::node::{Node, NodeId};
use std::cell::Cell;

/// Access and shape statistics for a [`BTreeIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Node visits during searches/scans — one visit = one page read.
    pub node_reads: u64,
    /// Node visits during inserts (descent + splits).
    pub node_writes: u64,
}

/// A B+tree mapping `u64` keys to RID (tuple-id) lists.
///
/// ```
/// use ebi_btree::BTreeIndex;
///
/// let mut t = BTreeIndex::new(8, 4096);
/// for (rid, key) in [(0u32, 10u64), (1, 20), (2, 10)] {
///     t.insert(key, rid);
/// }
/// let mut rids = t.search(10);
/// rids.sort_unstable();
/// assert_eq!(rids, vec![0, 2]);
/// assert_eq!(t.range(10, 20).len(), 3);
/// ```
///
/// * Nodes occupy whole pages; [`BTreeIndex::storage_bytes`] pages each
///   node by its payload, so oversized value lists span several pages
///   (the paper's `p/4` tuple-ids per leaf page).
/// * `degree` is the paper's `M`: the maximum child count of an internal
///   node. Leaves hold up to `degree` keys.
/// * Deletions remove RIDs (and empty keys) without rebalancing — fine
///   for the warehouse read-mostly workload the paper targets, and
///   documented so the space model stays interpretable.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    arena: Vec<Node>,
    root: NodeId,
    degree: usize,
    page_size: usize,
    entries: usize,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl BTreeIndex {
    /// Creates an empty tree with degree `M` and page size `p`.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 4` (splits need room) or `page_size == 0`.
    #[must_use]
    pub fn new(degree: usize, page_size: usize) -> Self {
        assert!(degree >= 4, "degree must be at least 4");
        assert!(page_size > 0, "page size must be positive");
        Self {
            arena: vec![Node::Leaf {
                keys: Vec::new(),
                rids: Vec::new(),
                next: None,
            }],
            root: 0,
            degree,
            page_size,
            entries: 0,
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Creates a tree with the paper's reference parameters:
    /// `M = 512`, `p = 4096`.
    #[must_use]
    pub fn with_paper_parameters() -> Self {
        Self::new(512, 4096)
    }

    /// Total `(key, rid)` insertions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of nodes (= pages) in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Storage footprint: every node occupies whole pages, and a leaf
    /// whose RID lists outgrow one page spans several (the paper's
    /// value-list model: a leaf page holds `p/4` tuple-ids).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.arena
            .iter()
            .map(|node| {
                let payload = match node {
                    Node::Internal { keys, children } => keys.len() * 8 + children.len() * 8,
                    Node::Leaf { keys, rids, .. } => {
                        keys.len() * 8 + rids.iter().map(|r| r.len() * 4).sum::<usize>() + 8
                    }
                };
                payload.div_ceil(self.page_size).max(1) * self.page_size
            })
            .sum()
    }

    /// Height of the tree (1 for a lone leaf).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.arena[node] {
            node = children[0];
            d += 1;
        }
        d
    }

    /// Snapshot of access counters.
    #[must_use]
    pub fn stats(&self) -> BTreeStats {
        BTreeStats {
            node_reads: self.reads.get(),
            node_writes: self.writes.get(),
        }
    }

    /// Resets access counters.
    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Inserts `(key, rid)`.
    pub fn insert(&mut self, key: u64, rid: u32) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid) {
            let new_root = self.arena.len();
            self.arena.push(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
            self.writes.set(self.writes.get() + 1);
        }
        self.entries += 1;
    }

    fn insert_rec(&mut self, node: NodeId, key: u64, rid: u32) -> Option<(u64, NodeId)> {
        self.writes.set(self.writes.get() + 1);
        match &mut self.arena[node] {
            Node::Leaf { keys, rids, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    rids[i].push(rid);
                    None
                }
                Err(i) => {
                    keys.insert(i, key);
                    rids.insert(i, vec![rid]);
                    if keys.len() > self.degree {
                        Some(self.split_leaf(node))
                    } else {
                        None
                    }
                }
            },
            Node::Internal { keys, children } => {
                let slot = keys.partition_point(|&k| k <= key);
                let child = children[slot];
                let split = self.insert_rec(child, key, rid)?;
                let (sep, right) = split;
                if let Node::Internal { keys, children } = &mut self.arena[node] {
                    let slot = keys.partition_point(|&k| k <= sep);
                    keys.insert(slot, sep);
                    children.insert(slot + 1, right);
                    if children.len() > self.degree {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: NodeId) -> (u64, NodeId) {
        let new_id = self.arena.len();
        let Node::Leaf { keys, rids, next } = &mut self.arena[node] else {
            unreachable!("split_leaf on internal node");
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_rids = rids.split_off(mid);
        let sep = right_keys[0];
        let right_next = *next;
        *next = Some(new_id);
        self.arena.push(Node::Leaf {
            keys: right_keys,
            rids: right_rids,
            next: right_next,
        });
        (sep, new_id)
    }

    fn split_internal(&mut self, node: NodeId) -> (u64, NodeId) {
        let new_id = self.arena.len();
        let Node::Internal { keys, children } = &mut self.arena[node] else {
            unreachable!("split_internal on leaf");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid];
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children = children.split_off(mid + 1);
        self.arena.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, new_id)
    }

    /// RIDs for `key` (empty if absent). Counts one node read per level.
    #[must_use]
    pub fn search(&self, key: u64) -> Vec<u32> {
        let leaf = self.descend_to_leaf(key);
        let Node::Leaf { keys, rids, .. } = &self.arena[leaf] else {
            unreachable!("descend_to_leaf returned an internal node");
        };
        match keys.binary_search(&key) {
            Ok(i) => rids[i].clone(),
            Err(_) => Vec::new(),
        }
    }

    /// RIDs for all keys in `lo..=hi`, via the leaf chain. Counts one node
    /// read per node touched.
    #[must_use]
    pub fn range(&self, lo: u64, hi: u64) -> Vec<u32> {
        if lo > hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut node = Some(self.descend_to_leaf(lo));
        let mut first = true;
        while let Some(id) = node {
            if !first {
                self.reads.set(self.reads.get() + 1);
            }
            first = false;
            let Node::Leaf { keys, rids, next } = &self.arena[id] else {
                unreachable!("leaf chain reached an internal node");
            };
            for (i, &k) in keys.iter().enumerate() {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.extend_from_slice(&rids[i]);
                }
            }
            node = *next;
        }
        out
    }

    /// Removes one occurrence of `rid` under `key`. Returns whether it
    /// was present. Empty keys are dropped from their leaf (no rebalance).
    pub fn remove(&mut self, key: u64, rid: u32) -> bool {
        let leaf = self.descend_to_leaf(key);
        let Node::Leaf { keys, rids, .. } = &mut self.arena[leaf] else {
            unreachable!("descend_to_leaf returned an internal node");
        };
        let Ok(i) = keys.binary_search(&key) else {
            return false;
        };
        let Some(pos) = rids[i].iter().position(|&r| r == rid) else {
            return false;
        };
        rids[i].swap_remove(pos);
        if rids[i].is_empty() {
            rids.remove(i);
            keys.remove(i);
        }
        self.entries -= 1;
        self.writes.set(self.writes.get() + 1);
        true
    }

    /// All keys in ascending order (walks the leaf chain; not counted as
    /// reads — it is a verification helper).
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.leftmost_leaf();
        while let Some(id) = node {
            let Node::Leaf { keys, next, .. } = &self.arena[id] else {
                unreachable!("leaf chain reached an internal node");
            };
            out.extend_from_slice(keys);
            node = *next;
        }
        out
    }

    fn leftmost_leaf(&self) -> Option<NodeId> {
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.arena[node] {
            node = children[0];
        }
        Some(node)
    }

    fn descend_to_leaf(&self, key: u64) -> NodeId {
        let mut node = self.root;
        self.reads.set(self.reads.get() + 1);
        while let Node::Internal { keys, children } = &self.arena[node] {
            let slot = keys.partition_point(|&k| k <= key);
            node = children[slot];
            self.reads.set(self.reads.get() + 1);
        }
        node
    }

    /// Verifies structural invariants; used by tests.
    ///
    /// # Panics
    ///
    /// Panics on an invariant violation.
    pub fn check_invariants(&self) {
        self.check_node(self.root, None, None, true);
        // Leaf chain must be globally sorted.
        let keys = self.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys not sorted");
    }

    fn check_node(&self, node: NodeId, lo: Option<u64>, hi: Option<u64>, is_root: bool) -> usize {
        match &self.arena[node] {
            Node::Leaf { keys, rids, .. } => {
                assert_eq!(keys.len(), rids.len());
                assert!(keys.len() <= self.degree, "leaf overflow");
                assert!(keys.windows(2).all(|w| w[0] < w[1]));
                for &k in keys {
                    assert!(lo.is_none_or(|l| k >= l), "leaf key below bound");
                    assert!(hi.is_none_or(|h| k < h), "leaf key above bound");
                }
                assert!(rids.iter().all(|r| !r.is_empty()), "empty rid list kept");
                1
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                assert!(children.len() <= self.degree, "internal overflow");
                if !is_root {
                    assert!(children.len() >= 2, "underfull internal node");
                }
                assert!(keys.windows(2).all(|w| w[0] < w[1]));
                let mut depth = None;
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    let d = self.check_node(child, clo, chi, false);
                    if let Some(prev) = depth {
                        assert_eq!(prev, d, "unbalanced subtree");
                    }
                    depth = Some(d);
                }
                depth.expect("internal node has children") + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_point_search() {
        let mut t = BTreeIndex::new(4, 64);
        for (rid, key) in [(0u32, 5u64), (1, 3), (2, 5), (3, 9), (4, 1)] {
            t.insert(key, rid);
        }
        assert_eq!(t.len(), 5);
        let mut r5 = t.search(5);
        r5.sort_unstable();
        assert_eq!(r5, vec![0, 2]);
        assert_eq!(t.search(3), vec![1]);
        assert!(t.search(7).is_empty());
        t.check_invariants();
    }

    #[test]
    fn many_inserts_keep_invariants_and_order() {
        let mut t = BTreeIndex::new(4, 64);
        // Adversarial order: interleave ascending and descending.
        let keys: Vec<u64> = (0..500u64)
            .map(|i| if i % 2 == 0 { i } else { 1000 - i })
            .collect();
        for (rid, &k) in keys.iter().enumerate() {
            t.insert(k, rid as u32);
            if rid % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        let stored = t.keys();
        let mut expect = keys;
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(stored, expect);
        assert!(t.depth() > 1, "tree should have split at degree 4");
    }

    #[test]
    fn range_scan_matches_filter() {
        let mut t = BTreeIndex::new(6, 64);
        for k in 0..300u64 {
            t.insert(k * 3, k as u32);
        }
        let mut got = t.range(100, 200);
        got.sort_unstable();
        let expect: Vec<u32> = (0..300u32)
            .filter(|&k| (100..=200).contains(&(u64::from(k) * 3)))
            .collect();
        assert_eq!(got, expect);
        assert!(t.range(5000, 9000).is_empty());
        assert!(t.range(10, 5).is_empty(), "inverted range is empty");
    }

    #[test]
    fn node_reads_grow_logarithmically() {
        let mut t = BTreeIndex::new(8, 64);
        for k in 0..4096u64 {
            t.insert(k, k as u32);
        }
        t.reset_stats();
        let _ = t.search(2048);
        let reads = t.stats().node_reads;
        assert_eq!(reads as usize, t.depth(), "one read per level");
        assert!(
            reads <= 6,
            "depth {reads} too deep for degree 8 / 4096 keys"
        );
    }

    #[test]
    fn range_reads_proportional_to_leaves_touched() {
        let mut t = BTreeIndex::new(8, 64);
        for k in 0..1000u64 {
            t.insert(k, k as u32);
        }
        t.reset_stats();
        let r = t.range(0, 999);
        assert_eq!(r.len(), 1000);
        let full_scan_reads = t.stats().node_reads;
        t.reset_stats();
        let r2 = t.range(10, 20);
        assert_eq!(r2.len(), 11);
        assert!(t.stats().node_reads < full_scan_reads / 10);
    }

    #[test]
    fn remove_deletes_rids_then_keys() {
        let mut t = BTreeIndex::new(4, 64);
        t.insert(7, 1);
        t.insert(7, 2);
        t.insert(8, 3);
        assert!(t.remove(7, 1));
        assert_eq!(t.search(7), vec![2]);
        assert!(t.remove(7, 2));
        assert!(t.search(7).is_empty());
        assert_eq!(t.keys(), vec![8]);
        assert!(!t.remove(7, 2), "double remove");
        assert!(!t.remove(99, 0), "missing key");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn storage_pages_by_content() {
        let mut t = BTreeIndex::new(4, 128);
        for k in 0..100u64 {
            t.insert(k, k as u32);
        }
        // Small rid lists: one page per node.
        assert_eq!(t.storage_bytes(), t.node_count() * 128);
        assert!(t.node_count() > 25, "degree-4 tree must have many nodes");
        // A huge value list spans many pages even in one logical leaf —
        // the paper's p/4 tuple-ids per leaf page.
        let mut fat = BTreeIndex::new(512, 128);
        for rid in 0..10_000u32 {
            fat.insert(7, rid);
        }
        assert_eq!(fat.node_count(), 1);
        assert!(
            fat.storage_bytes() >= 10_000 * 4,
            "storage {} must cover the rid payload",
            fat.storage_bytes()
        );
    }

    #[test]
    fn duplicate_keys_share_one_entry() {
        let mut t = BTreeIndex::new(4, 64);
        for rid in 0..50u32 {
            t.insert(42, rid);
        }
        assert_eq!(t.keys(), vec![42]);
        assert_eq!(t.search(42).len(), 50);
        t.check_invariants();
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTreeIndex::new(4, 64);
        assert!(t.is_empty());
        assert!(t.search(1).is_empty());
        assert!(t.range(0, 100).is_empty());
        assert_eq!(t.depth(), 1);
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn paper_parameters_constructor() {
        let t = BTreeIndex::with_paper_parameters();
        assert_eq!(t.storage_bytes(), 4096);
    }
}
