//! In-process end-to-end smoke tests: real sockets against a running
//! service, answers checked bit-identically against the library path,
//! graceful shutdown with traffic in flight.

use ebi_service::{
    parse_dnf, ColumnSpec, ServiceConfig, ServiceHandle, ServiceSummary, ShardedTable, TableOptions,
};
use ebi_storage::Cell;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

fn small_table(shards: usize) -> ShardedTable {
    let rows = 4_003; // prime-ish: shard boundaries land mid-word
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    for i in 0..rows {
        a.push(Cell::Value((i as u64 * 7 + 3) % 6));
        b.push(if i % 97 == 0 {
            Cell::Null
        } else {
            Cell::Value((i as u64 * 13 + 1) % 9)
        });
    }
    ShardedTable::build(
        vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)],
        &TableOptions {
            shards,
            ..TableOptions::default()
        },
    )
    .expect("table builds")
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        max_inflight: 4,
        timeout: Duration::from_secs(5),
        // Force the fan-out path: the smoke table is far below the real
        // auto-serialise floor.
        min_dispatch_words: 0,
        ..ServiceConfig::default()
    }
}

/// Runs `f` against a live service, then shuts it down and returns the
/// drain summary.
fn with_service<F>(table: &ShardedTable, cfg: &ServiceConfig, f: F) -> ServiceSummary
where
    F: FnOnce(&ServiceHandle) + Send,
{
    ebi_obs::set_enabled(true);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = s.spawn(move || ebi_service::run(table, cfg, |h| tx.send(h).expect("send")));
        let handle = rx.recv().expect("service came up");
        f(&handle);
        handle.shutdown();
        server.join().expect("service thread").expect("service ran")
    })
}

fn tcp_line(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    out.trim_end().to_string()
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("write");
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pulls `"key":<number>` out of a flat JSON rendering.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let at = json.find(&format!("\"{key}\":"))?;
    let digits: String = json[at + key.len() + 3..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn tcp_protocol_answers_match_library() {
    let table = small_table(5);
    let query = "a=1 AND b IN 2,3 OR b=7";
    let compiled = table
        .compile(&parse_dnf(query).expect("parses"))
        .expect("compiles");
    let (bitmap, _) = table.eval_local(&compiled);
    let want = bitmap.count_ones() as u64;
    assert!(want > 0, "query should match something");

    let summary = with_service(&table, &test_config(), |h| {
        let addr = h.tcp_addr();
        assert_eq!(tcp_line(addr, "PING"), "PONG");

        let count = tcp_line(addr, &format!("COUNT {query}"));
        assert!(count.starts_with("OK {"), "got {count}");
        assert_eq!(json_u64(&count, "matches"), Some(want));
        assert!(count.contains("\"dispatched\":true"), "got {count}");

        // QUERY rows must be exactly the library bitmap's first ones,
        // in global row-id space.
        let resp = tcp_line(addr, &format!("QUERY {query} LIMIT 10"));
        let lib_rows: Vec<String> = bitmap.iter_ones().take(10).map(|r| r.to_string()).collect();
        assert!(
            resp.contains(&format!("\"rows\":[{}]", lib_rows.join(","))),
            "rows mismatch: {resp}"
        );

        let explain = tcp_line(addr, &format!("EXPLAIN {query}"));
        assert!(explain.contains("EXPLAIN ANALYZE"), "got {explain}");
        assert!(explain.contains("eval.worker"), "got {explain}");

        let stats = tcp_line(addr, "STATS");
        assert_eq!(json_u64(&stats, "shards"), Some(5));
        assert_eq!(json_u64(&stats, "max_inflight"), Some(4));

        let err = tcp_line(addr, "COUNT nosuch=1");
        assert!(err.starts_with("ERR"), "got {err}");
        let bad = tcp_line(addr, "FROB x");
        assert!(bad.starts_with("ERR unknown verb"), "got {bad}");
    });
    assert!(summary.served >= 3, "summary: {summary:?}");
}

#[test]
fn http_frontend_answers_match_library_and_metrics_render() {
    let table = small_table(3);
    let compiled = table
        .compile(&parse_dnf("a BETWEEN 1 3").expect("parses"))
        .expect("compiles");
    let want = table.eval_local(&compiled).0.count_ones() as u64;

    with_service(&table, &test_config(), |h| {
        let addr = h.http_addr();
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!((status, body.trim()), (200, "ok"));

        let (status, body) = http_get(addr, "/query?q=a+BETWEEN+1+3&limit=4");
        assert_eq!(status, 200, "body: {body}");
        assert_eq!(json_u64(&body, "matches"), Some(want));

        let (status, body) = http_get(addr, "/count?q=a%3D2");
        assert_eq!(status, 200);
        let lib = table
            .compile(&parse_dnf("a=2").expect("parses"))
            .expect("compiles");
        assert_eq!(
            json_u64(&body, "matches"),
            Some(table.eval_local(&lib).0.count_ones() as u64)
        );

        let (status, body) = http_get(addr, "/explain?q=a%3D2");
        assert_eq!(status, 200);
        assert!(body.contains("EXPLAIN ANALYZE"), "got {body}");

        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("ebi_service_requests_total"),
            "metrics missing service counters: {body}"
        );
        assert!(body.contains("ebi_service_request_ns_bucket"));
        // Every line must be a comment or `name{labels} value`.
        for line in body
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            let value = line.rsplit(' ').next().expect("value field");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable metric line: {line}"
            );
        }

        let (status, _) = http_get(addr, "/nosuch");
        assert_eq!(status, 404);
        let (status, body) = http_get(addr, "/query?q=a%3Dx");
        assert_eq!(status, 400, "body: {body}");
        let (status, body) = http_get(addr, "/query");
        assert_eq!(status, 400, "body: {body}");
    });
}

/// `STATS` (TCP) and `GET /stats` (HTTP) must expose the same schema:
/// the same key set, including the telemetry additions (uptime,
/// inflight, admission-rejected and slow-query counts).
#[test]
fn tcp_stats_and_http_stats_agree() {
    let table = small_table(3);
    with_service(&table, &test_config(), |h| {
        let _ = tcp_line(h.tcp_addr(), "COUNT a=1");
        let stats = tcp_line(h.tcp_addr(), "STATS");
        let stats = stats.strip_prefix("OK ").expect("OK payload");
        let (status, body) = http_get(h.http_addr(), "/stats");
        assert_eq!(status, 200);
        let keys = |json: &str| -> Vec<String> {
            json.split('"')
                .skip(1)
                .step_by(2)
                .filter(|k| json.contains(&format!("\"{k}\":")))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(keys(stats), keys(body.trim()), "stats schemas diverged");
        for key in [
            "uptime_ms",
            "inflight",
            "rejected_busy",
            "rejected_draining",
            "slow_queries",
        ] {
            assert!(
                json_u64(stats, key).is_some(),
                "STATS missing {key}: {stats}"
            );
            assert!(json_u64(&body, key).is_some(), "/stats missing {key}");
        }
    });
}

#[test]
fn sharded_and_unsharded_services_agree() {
    let sharded = small_table(7);
    let single = small_table(1);
    let queries = ["a=0", "a IN 1,4 AND b=2", "b BETWEEN 0 8", "a=5 OR b=0"];
    for query in queries {
        let dnf = parse_dnf(query).expect("parses");
        let a = sharded.eval_local(&sharded.compile(&dnf).expect("compiles"));
        let b = single.eval_local(&single.compile(&dnf).expect("compiles"));
        assert_eq!(
            a.0.count_ones(),
            b.0.count_ones(),
            "count diverged for {query}"
        );
        assert_eq!(
            a.0.iter_ones().collect::<Vec<_>>(),
            b.0.iter_ones().collect::<Vec<_>>(),
            "bitmap diverged for {query}"
        );
    }
}

#[test]
fn graceful_shutdown_drains_requests_in_flight() {
    let table = small_table(4);
    let cfg = test_config();
    let summary = with_service(&table, &cfg, |h| {
        let tcp = h.tcp_addr();
        let http = h.http_addr();
        std::thread::scope(|s| {
            // Closed-loop clients hammering both frontends...
            for _ in 0..3 {
                s.spawn(move || {
                    for _ in 0..30 {
                        // After the drain completes the listener is
                        // gone; refused connects and clean EOFs are the
                        // expected shapes. What must never happen is a
                        // torn (partial) response on an accepted line.
                        let Ok(mut stream) = TcpStream::connect(tcp) else {
                            break;
                        };
                        if stream.write_all(b"COUNT a=1 OR b=3\n").is_err() {
                            break;
                        }
                        let mut resp = String::new();
                        if BufReader::new(stream).read_line(&mut resp).is_err() {
                            break;
                        }
                        let resp = resp.trim_end();
                        assert!(
                            resp.starts_with("OK {")
                                || resp == "BUSY"
                                || resp.starts_with("ERR draining")
                                || resp.is_empty(),
                            "torn response: {resp:?}"
                        );
                    }
                });
            }
            // ...while the shutdown arrives over HTTP mid-storm.
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                let mut stream = TcpStream::connect(http).expect("connect");
                write!(stream, "POST /shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")
                    .expect("write");
                let mut raw = String::new();
                let _ = BufReader::new(stream).read_to_string(&mut raw);
                assert!(raw.contains("draining"), "got {raw}");
            });
        });
    });
    assert!(summary.served > 0, "summary: {summary:?}");
}
