//! End-to-end telemetry tests: trace propagation and echo on both
//! frontends, tail-sampled trace/slow rings, `/debug/*` endpoints,
//! and the Chrome trace-event export.

use ebi_service::{ColumnSpec, ServiceConfig, ServiceHandle, ShardedTable, TableOptions};
use ebi_storage::Cell;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

fn small_table(shards: usize) -> ShardedTable {
    let rows = 4_003;
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    for i in 0..rows {
        a.push(Cell::Value((i as u64 * 7 + 3) % 6));
        b.push(if i % 97 == 0 {
            Cell::Null
        } else {
            Cell::Value((i as u64 * 13 + 1) % 9)
        });
    }
    ShardedTable::build(
        vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)],
        &TableOptions {
            shards,
            ..TableOptions::default()
        },
    )
    .expect("table builds")
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        max_inflight: 4,
        timeout: Duration::from_secs(5),
        min_dispatch_words: 0,
        ..ServiceConfig::default()
    }
}

fn with_service<F>(table: &ShardedTable, cfg: &ServiceConfig, f: F)
where
    F: FnOnce(&ServiceHandle) + Send,
{
    ebi_obs::set_enabled(true);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = s.spawn(move || ebi_service::run(table, cfg, |h| tx.send(h).expect("send")));
        let handle = rx.recv().expect("service came up");
        f(&handle);
        handle.shutdown();
        server.join().expect("service thread").expect("service ran");
    });
}

/// Sends one line, reads one response line.
fn tcp_line(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    out.trim_end().to_string()
}

/// Sends one line and reads a multi-line `OK <n>` page terminated by a
/// lone `.` line: returns (n, payload lines).
fn tcp_page(addr: SocketAddr, line: &str) -> (usize, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    reader.read_line(&mut head).expect("read head");
    let head = head.trim_end();
    let n: usize = head
        .strip_prefix("OK ")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad page head: {head}"));
    let mut lines = Vec::new();
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).expect("read body");
        let l = l.trim_end().to_string();
        if l == "." {
            break;
        }
        lines.push(l);
    }
    (n, lines)
}

/// GET with optional extra headers; returns (status, raw headers, body).
fn http_get_full(
    addr: SocketAddr,
    target: &str,
    extra: &[(&str, &str)],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (k, v) in extra {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes()).expect("write");
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    (status, head.to_string(), body.to_string())
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let (status, _, body) = http_get_full(addr, target, &[]);
    (status, body)
}

fn json_u64(json: &str, key: &str) -> Option<u64> {
    let at = json.find(&format!("\"{key}\":"))?;
    let digits: String = json[at + key.len() + 3..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Pulls `"key":"value"` out of a flat JSON rendering.
fn json_str(json: &str, key: &str) -> Option<String> {
    let at = json.find(&format!("\"{key}\":\""))?;
    let rest = &json[at + key.len() + 4..];
    Some(rest[..rest.find('"')?].to_string())
}

const TP: &str = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
const TRACE32: &str = "4bf92f3577b34da6a3ce929d0e0e4736";

#[test]
fn tcp_traceparent_is_adopted_and_echoed() {
    let table = small_table(3);
    with_service(&table, &test_config(), |h| {
        let addr = h.tcp_addr();
        let resp = tcp_line(addr, &format!("TRACEPARENT {TP} COUNT a=1"));
        assert!(resp.starts_with("OK {"), "got {resp}");
        let echoed = json_str(&resp, "trace").expect("answer carries trace");
        assert!(
            echoed.starts_with(&format!("00-{TRACE32}-")),
            "inbound trace id not adopted: {echoed}"
        );
        assert!(echoed.ends_with("-01"), "sampled flag lost: {echoed}");
        // The parent span field is the query id, so two queries on the
        // same trace get distinct traceparents.
        let again = tcp_line(addr, &format!("TRACEPARENT {TP} COUNT a=1"));
        assert_ne!(json_str(&again, "trace"), Some(echoed));

        // A malformed traceparent falls back to a minted trace.
        let minted = tcp_line(addr, "TRACEPARENT garbage COUNT a=1");
        let minted = json_str(&minted, "trace").expect("trace");
        assert!(!minted.contains(TRACE32), "garbage adopted: {minted}");
    });
}

#[test]
fn http_traceparent_is_echoed_on_success_and_error() {
    let table = small_table(3);
    with_service(&table, &test_config(), |h| {
        let addr = h.http_addr();
        let (status, head, body) =
            http_get_full(addr, "/count?q=a%3D1", &[("traceparent", TP)]);
        assert_eq!(status, 200, "body: {body}");
        let echo = head
            .lines()
            .find_map(|l| l.strip_prefix("traceparent: "))
            .expect("traceparent response header");
        assert!(echo.starts_with(&format!("00-{TRACE32}-")), "got {echo}");
        assert_eq!(json_str(&body, "trace").as_deref(), Some(echo));

        // Errors still echo, parented at the inbound span.
        let (status, head, _) =
            http_get_full(addr, "/count?q=nosuch%3D1", &[("traceparent", TP)]);
        assert_eq!(status, 400);
        let echo = head
            .lines()
            .find_map(|l| l.strip_prefix("traceparent: "))
            .expect("traceparent echoed on error");
        assert_eq!(echo, TP);
    });
}

#[test]
fn slow_queries_land_in_the_slow_ring_with_full_reports() {
    let table = small_table(4);
    let cfg = ServiceConfig {
        // Threshold 0: every query is "slow", deterministically.
        slow_query_ms: Some(0),
        ..test_config()
    };
    with_service(&table, &cfg, |h| {
        let tcp = h.tcp_addr();
        let http = h.http_addr();
        for _ in 0..3 {
            let resp = tcp_line(tcp, "QUERY a=1 AND b IN 2,3 LIMIT 5");
            assert!(resp.starts_with("OK {"), "got {resp}");
        }

        let (status, body) = http_get(http, "/debug/slow");
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 3, "slow ring missing entries: {body}");
        for line in &lines {
            assert!(line.contains("\"schema\":\"ebi.trace.v1\""), "got {line}");
            assert!(line.contains("\"slow\":true"), "got {line}");
            // The embedded QueryReport is complete: identity, label,
            // counts, and a phase tree with the fan-out workers.
            assert!(json_u64(line, "query_id").is_some(), "got {line}");
            assert!(json_u64(line, "matches").is_some(), "got {line}");
            assert!(line.contains("\"label\""), "got {line}");
            assert!(line.contains("\"phases\""), "got {line}");
            assert!(line.contains("eval.worker"), "got {line}");
        }

        // The slow count surfaces in stats on both frontends.
        let stats = tcp_line(tcp, "STATS");
        assert!(json_u64(&stats, "slow_queries").unwrap_or(0) >= 3, "got {stats}");
        let (_, body) = http_get(http, "/stats");
        assert!(json_u64(&body, "slow_queries").unwrap_or(0) >= 3, "got {body}");
    });
}

#[test]
fn debug_endpoints_serve_traces_vars_and_chrome_export() {
    let table = small_table(3);
    with_service(&table, &test_config(), |h| {
        let tcp = h.tcp_addr();
        let http = h.http_addr();
        let resp = tcp_line(tcp, &format!("TRACEPARENT {TP} COUNT a=1 AND b=2"));
        let echoed = json_str(&resp, "trace").expect("trace");

        // /debug/traces: JSONL, newest last, carrying our trace id.
        let (status, body) = http_get(http, "/debug/traces");
        assert_eq!(status, 200);
        let last = body.lines().last().expect("at least one trace");
        assert!(last.contains("\"schema\":\"ebi.trace.v1\""), "got {last}");
        assert_eq!(json_str(last, "trace").as_deref(), Some(TRACE32));
        assert_eq!(json_str(last, "traceparent").as_deref(), Some(echoed.as_str()));

        // /debug/trace/<id>: Chrome trace-event JSON by trace-hex
        // prefix and by decimal query id.
        for key in [TRACE32.to_string(), TRACE32[..12].to_string()] {
            let (status, body) = http_get(http, &format!("/debug/trace/{key}"));
            assert_eq!(status, 200, "key {key}: {body}");
            assert!(body.contains("\"traceEvents\":["), "got {body}");
            assert!(body.contains("\"ph\":\"X\""), "got {body}");
            assert!(body.contains("eval.worker"), "got {body}");
            assert!(body.contains("\"displayTimeUnit\":\"ns\""), "got {body}");
        }
        let qid = json_u64(last, "query_id").expect("query id");
        let (status, _) = http_get(http, &format!("/debug/trace/{qid}"));
        assert_eq!(status, 200);
        let (status, _) = http_get(http, "/debug/trace/ffffffffffffffff");
        assert_eq!(status, 404);

        // /debug/vars: admission, ring and metrics state in one page.
        let (status, body) = http_get(http, "/debug/vars");
        assert_eq!(status, 200);
        for key in [
            "uptime_ms",
            "served",
            "traces_recorded",
            "slow_queries",
            "slow_threshold_ns",
            "trace_ring_capacity",
        ] {
            assert!(json_u64(&body, key).is_some(), "missing {key}: {body}");
        }
        assert!(body.contains("\"metrics\":["), "got {body}");
        assert!(body.contains("ebi_service_requests_total"), "got {body}");

        // TCP equivalents page the same rings.
        let (n, lines) = tcp_page(tcp, "TRACES");
        assert_eq!(n, lines.len());
        assert!(n >= 1, "TRACES empty");
        assert!(lines.iter().any(|l| l.contains(TRACE32)), "{lines:?}");
        let (n1, lines1) = tcp_page(tcp, "TRACES 1");
        assert_eq!((n1, lines1.len()), (1, 1));
        let (n_slow, _) = tcp_page(tcp, "SLOW");
        assert_eq!(n_slow, 0, "nothing should be slow here");
    });
}

#[test]
fn shard_labelled_metrics_appear_in_prometheus_export() {
    let table = small_table(3);
    with_service(&table, &test_config(), |h| {
        let _ = tcp_line(h.tcp_addr(), "COUNT a=1");
        let (status, body) = http_get(h.http_addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("ebi_service_shard_evals_total{shard=\"0\"}"),
            "missing shard-labelled counter: {body}"
        );
        assert!(
            body.contains("ebi_service_shard_eval_ns_bucket{shard=\"0\",le=\""),
            "missing shard-labelled histogram buckets: {body}"
        );
        assert!(body.contains("ebi_service_shard_eval_ns_sum{shard=\"2\"}"));
    });
}
