//! Property test for trace propagation across the worker-pool
//! hand-off: whatever the shard count, worker count and query, every
//! `eval.worker` span recorded on a pool thread must carry the root
//! span's trace id — both in the span record itself (cross-thread
//! parentage) and in its explicit `trace` attribute (the value the
//! retained-trace JSONL and Chrome export surface).

use ebi_service::{eval_shard, parse_dnf, ColumnSpec, FanOut, ShardedTable, TableOptions, WorkerPool};
use ebi_storage::{BufferPool, Cell};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn table_strategy() -> impl Strategy<Value = ShardedTable> {
    (
        1usize..=7,
        proptest::collection::vec((0u64..6, 0u64..9), 64..800),
    )
        .prop_map(|(shards, raw)| {
            let a = raw.iter().map(|(va, _)| Cell::Value(*va)).collect();
            let b = raw.iter().map(|(_, vb)| Cell::Value(*vb)).collect();
            ShardedTable::build(
                vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)],
                &TableOptions {
                    shards,
                    ..TableOptions::default()
                },
            )
            .expect("table builds")
        })
}

const QUERIES: &[&str] = &["a=1", "a IN 1,3 AND b=2", "b BETWEEN 0 5 OR a=0"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_ids_survive_the_pool_handoff(
        table in table_strategy(),
        workers in 1usize..=4,
        qsel in 0usize..QUERIES.len(),
    ) {
        ebi_obs::set_enabled(true);
        let compiled = Arc::new(
            table
                .compile(&parse_dnf(QUERIES[qsel]).expect("parses"))
                .expect("compiles"),
        );
        let pools: Vec<BufferPool<'_>> = table
            .shards()
            .iter()
            .map(|s| BufferPool::new(s.pager(), 8))
            .collect();
        let pool = WorkerPool::new(workers);
        let n = table.shards().len();

        let trace = ebi_obs::Trace::begin();
        let root = trace.root_span("query");
        let root_trace = root.handle().trace();
        {
            let fan_span = root.child("fanout");
            let parent = fan_span.handle();
            let fan = Arc::new(FanOut::new(n));
            crossbeam::thread::scope(|scope| {
                for w in 0..workers {
                    let p = &pool;
                    scope.spawn(move |_| p.run_worker(w));
                }
                for shard in table.shards() {
                    let fan = Arc::clone(&fan);
                    let compiled = Arc::clone(&compiled);
                    let i = shard.id();
                    let bp = &pools[i];
                    pool.submit(Box::new(move || {
                        fan.complete(i, Some(eval_shard(shard, bp, &compiled, parent)));
                    }));
                }
                let results = fan.wait(Duration::from_secs(10)).expect("fan-out completes");
                prop_assert_eq!(results.iter().flatten().count(), n);
                pool.close();
                Ok(())
            })
            .expect("workers joined")?;
        }
        drop(root);
        let records = trace.finish();

        let workers_seen: Vec<_> = records.iter().filter(|r| r.name == "eval.worker").collect();
        prop_assert_eq!(workers_seen.len(), n, "one eval.worker span per shard");
        for rec in workers_seen {
            prop_assert_eq!(
                rec.trace, root_trace,
                "span record left the root trace: {:?}", rec
            );
            let attr = rec
                .attrs
                .iter()
                .find(|(k, _)| k == "trace")
                .map(|(_, v)| *v);
            prop_assert_eq!(
                attr, Some(root_trace),
                "trace attribute missing or wrong: {:?}", rec
            );
        }
    }
}
