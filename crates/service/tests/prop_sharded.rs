//! Property tests for the sharding contract: a row-range-sharded table
//! is *observationally identical* to a single-index build — same
//! selection bitmap in global row ids, same paper cost metric — across
//! shard counts, storage containers, kernel tiers and per-shard row
//! orders, with shard-edge rows checked explicitly.

use ebi_bitvec::simd::{available_paths, with_forced_path};
use ebi_bitvec::StoragePolicy;
use ebi_core::index::QueryOptions;
use ebi_core::RowOrder;
use ebi_service::{parse_dnf, ColumnSpec, ShardedTable, TableOptions};
use ebi_storage::Cell;
use proptest::prelude::*;

/// Two equal-length columns drawn jointly (the vendored proptest stub
/// has no `prop_flat_map`; domains are applied by modulus).
fn columns_strategy() -> impl Strategy<Value = Vec<ColumnSpec>> {
    (
        2u64..12,
        2u64..20,
        proptest::collection::vec((0u64..10_000, 0u64..10_000, 0u32..11), 1..500),
    )
        .prop_map(|(ma, mb, raw)| {
            let mut a = Vec::with_capacity(raw.len());
            let mut b = Vec::with_capacity(raw.len());
            for (va, vb, null_sel) in raw {
                a.push(Cell::Value(va % ma));
                b.push(if null_sel == 0 {
                    Cell::Null
                } else {
                    Cell::Value(vb % mb)
                });
            }
            vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)]
        })
}

/// NULL-free variant: exact `vectors_accessed` additivity only holds
/// when no shard carries a `B_NULL` companion vector — a shard whose
/// row range happens to contain no NULLs stores one vector fewer than
/// a shard that does, so with NULLs the sum is data-dependent.
fn dense_columns_strategy() -> impl Strategy<Value = Vec<ColumnSpec>> {
    (
        2u64..12,
        2u64..20,
        proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..500),
    )
        .prop_map(|(ma, mb, raw)| {
            let a = raw.iter().map(|(va, _)| Cell::Value(va % ma)).collect();
            let b = raw.iter().map(|(_, vb)| Cell::Value(vb % mb)).collect();
            vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)]
        })
}

fn shards_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2usize), Just(7usize)]
}

fn policy_strategy() -> impl Strategy<Value = StoragePolicy> {
    prop_oneof![
        Just(StoragePolicy::Dense),
        Just(StoragePolicy::Roaring),
        Just(StoragePolicy::Wah),
        Just(StoragePolicy::Adaptive),
    ]
}

/// Per-shard row orders, cycled by shard id — includes mixes, so some
/// shards of one table sort while others keep original order.
fn orders_strategy() -> impl Strategy<Value = Vec<RowOrder>> {
    prop_oneof![
        Just(vec![RowOrder::Original]),
        Just(vec![RowOrder::Lexicographic]),
        Just(vec![RowOrder::Gray]),
        Just(vec![
            RowOrder::Original,
            RowOrder::Lexicographic,
            RowOrder::Gray
        ]),
    ]
}

fn build(
    columns: &[ColumnSpec],
    shards: usize,
    orders: &[RowOrder],
    policy: StoragePolicy,
    use_summaries: bool,
) -> ShardedTable {
    let mut table = ShardedTable::build(
        columns.to_vec(),
        &TableOptions {
            shards,
            row_orders: orders.to_vec(),
            rows_per_page: 64,
        },
    )
    .expect("table builds");
    table.set_query_options(QueryOptions {
        storage_policy: policy,
        use_summaries,
        ..QueryOptions::default()
    });
    table
}

const QUERIES: &[&str] = &[
    "a=1",
    "a=0 AND b=1",
    "a IN 1,3,5 OR b IN 0,2",
    "a BETWEEN 1 4 AND b BETWEEN 0 9",
    "b=0 OR a=2 AND b=3",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded evaluation ≡ single-index evaluation, bit for bit in
    /// global row ids, for every shard count × container × kernel tier
    /// × per-shard row-order mix.
    #[test]
    fn sharded_bitmap_matches_single_index(
        columns in columns_strategy(),
        shards in shards_strategy(),
        orders in orders_strategy(),
        policy in policy_strategy(),
    ) {
        let sharded = build(&columns, shards, &orders, policy, true);
        let single = build(&columns, 1, &[], StoragePolicy::Adaptive, true);
        for query in QUERIES {
            let dnf = parse_dnf(query).expect("parses");
            let cq_sharded = sharded.compile(&dnf).expect("compiles");
            let cq_single = single.compile(&dnf).expect("compiles");
            let (got, _) = sharded.eval_local(&cq_sharded);
            let (want, _) = single.eval_local(&cq_single);
            prop_assert_eq!(
                &got, &want,
                "bitmap diverged: {} over {} shards, orders {:?}, {:?}",
                query, shards, &orders, policy
            );
        }
    }

    /// The paper's cost metric is exact under sharding: with summary
    /// pruning off and no NULL companion vectors, every shard reads the
    /// same vectors the single index reads (the compiled expression is
    /// shared), so the summed `vectors_accessed` is exactly
    /// `shards × single`.
    #[test]
    fn vectors_accessed_sums_exactly_across_shards(
        columns in dense_columns_strategy(),
        shards in shards_strategy(),
        orders in orders_strategy(),
    ) {
        let sharded = build(&columns, shards, &orders, StoragePolicy::Adaptive, false);
        let single = build(&columns, 1, &[], StoragePolicy::Adaptive, false);
        let n = sharded.shards().len() as u64; // may be < shards on tiny tables
        for query in QUERIES {
            let dnf = parse_dnf(query).expect("parses");
            let (_, cost) = sharded.eval_local(&sharded.compile(&dnf).expect("compiles"));
            let (_, base) = single.eval_local(&single.compile(&dnf).expect("compiles"));
            prop_assert_eq!(
                cost.vectors_accessed,
                n * base.vectors_accessed,
                "vectors_accessed not additive: {} over {} shards",
                query, n
            );
        }
    }

    /// Kernel tier is invisible: every SIMD path produces the same
    /// merged bitmap and the same `vectors_accessed` on a sharded table.
    #[test]
    fn kernel_tiers_agree_on_sharded_tables(
        columns in columns_strategy(),
        shards in shards_strategy(),
        policy in policy_strategy(),
    ) {
        let sharded = build(&columns, shards, &[], policy, true);
        let dnf = parse_dnf("a IN 1,2,7 OR b BETWEEN 1 6").expect("parses");
        let compiled = sharded.compile(&dnf).expect("compiles");
        let (reference, ref_cost) = sharded.eval_local(&compiled);
        for path in available_paths() {
            with_forced_path(path, || {
                let (got, cost) = sharded.eval_local(&compiled);
                prop_assert_eq!(&got, &reference, "bitmap diverged under {:?}", path);
                prop_assert_eq!(
                    cost.vectors_accessed,
                    ref_cost.vectors_accessed,
                    "cost metric diverged under {:?}",
                    path
                );
                Ok(())
            })?;
        }
    }
}

/// Shard-edge rows, checked deterministically: matches planted exactly
/// at every shard's first and last row (word-unaligned boundaries by
/// construction) survive the offset merge, and no neighbours leak in.
#[test]
fn boundary_rows_survive_the_merge() {
    let rows = 1_003usize;
    for shards in [2usize, 7] {
        // Recompute the build's split to find the boundary rows.
        let base = rows / shards;
        let rem = rows % shards;
        let mut boundaries = Vec::new();
        let mut lo = 0usize;
        for id in 0..shards {
            let len = base + usize::from(id < rem);
            boundaries.push(lo);
            boundaries.push(lo + len - 1);
            lo += len;
        }
        let cells: Vec<Cell> = (0..rows)
            .map(|i| Cell::Value(u64::from(boundaries.contains(&i))))
            .collect();
        let table = ShardedTable::build(
            vec![ColumnSpec::new("a", cells)],
            &TableOptions {
                shards,
                ..TableOptions::default()
            },
        )
        .expect("table builds");
        let compiled = table
            .compile(&parse_dnf("a=1").expect("parses"))
            .expect("compiles");
        let (bitmap, _) = table.eval_local(&compiled);
        let got: Vec<usize> = bitmap.iter_ones().collect();
        let mut want = boundaries.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want, "boundary rows for {shards} shards");
    }
}
