//! The long-running query service: admission, shard fan-out, merge,
//! and the two socket frontends.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept → parse → admit (Permit) → compile once → fan out to shards
//!   on the worker pool → merge at RID offsets → report → respond →
//!   release Permit
//! ```
//!
//! Admission is a counting gate ([`AdmissionGate`]): at most
//! `max_inflight` queries hold permits, the rest get `BUSY`/429
//! immediately (closed-loop clients back off, so the bound is also the
//! concurrency ceiling the bench measures against). Fan-out reuses the
//! core engine's work-estimate heuristic: when the whole query's
//! post-pruning estimate is below
//! [`ebi_core::parallel::MIN_PARALLEL_WORK_WORDS`], shard slices are
//! evaluated serially on the connection thread — dispatching tiny
//! bitmaps to workers costs more than scanning them.
//!
//! ## Shutdown protocol
//!
//! `SHUTDOWN` (or `POST /shutdown`) flips the handle; the run loop
//! then (1) drains the gate — no new admissions, every in-flight query
//! writes its response and releases its permit; (2) closes the worker
//! pool — queued shard jobs still run; (3) wakes the accept loops with
//! a loopback connect; (4) joins every scoped thread. No admitted
//! request is ever dropped.

use crate::error::ServiceError;
use crate::http::{self, HttpRequest};
use crate::pool::{AdmissionGate, FanOut, Refusal, WorkerPool};
use crate::protocol::{self, Request};
use crate::shard::{merge_cost, CompiledQuery, DnfRequest, ShardOutcome, ShardedTable};
use ebi_obs::export::JsonObject;
use ebi_obs::log as obslog;
use ebi_obs::{
    CostCounters, PhaseNode, QueryReport, StorageCounters, TraceContext, TraceRing,
    TraceRingConfig,
};
use ebi_storage::BufferPool;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Poll interval at which idle connections notice a shutdown.
const IDLE_POLL: Duration = Duration::from_millis(150);

/// Service configuration; every knob has an `EBI_SERVICE_*` env
/// override (see [`ServiceConfig::from_env`] and the README env table).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// TCP line-protocol bind address (`127.0.0.1:0` = ephemeral).
    pub tcp_addr: String,
    /// HTTP/1.1 bind address.
    pub http_addr: String,
    /// Worker threads for shard fan-out (0 = evaluate on connection
    /// threads).
    pub workers: usize,
    /// Maximum concurrently admitted queries; excess gets `BUSY`/429.
    pub max_inflight: usize,
    /// Per-request deadline; an expired query answers `ERR timeout`
    /// / 504 and its remaining shard jobs are cancelled.
    pub timeout: Duration,
    /// Buffer-pool frames per shard.
    pub buffer_frames: usize,
    /// Work-estimate floor (words) below which a query is evaluated
    /// serially on the connection thread instead of fanned out.
    /// Defaults to the core engine's auto-serialise threshold.
    pub min_dispatch_words: u64,
    /// Recent-trace ring capacity (tail sampling; see
    /// [`ebi_obs::trace_ring`]).
    pub trace_ring: usize,
    /// Slow-query log capacity.
    pub slow_ring: usize,
    /// Fixed slow-query threshold in milliseconds; `None` uses the
    /// rolling p99 estimate.
    pub slow_query_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self {
            tcp_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            workers: cores.saturating_sub(1).clamp(1, 8),
            max_inflight: 8,
            timeout: Duration::from_secs(10),
            buffer_frames: 64,
            min_dispatch_words: ebi_core::parallel::MIN_PARALLEL_WORK_WORDS,
            trace_ring: 64,
            slow_ring: 256,
            slow_query_ms: None,
        }
    }
}

impl ServiceConfig {
    /// Defaults overridden by `EBI_SERVICE_ADDR`,
    /// `EBI_SERVICE_HTTP_ADDR`, `EBI_SERVICE_WORKERS`,
    /// `EBI_SERVICE_MAX_INFLIGHT`, `EBI_SERVICE_TIMEOUT_MS`,
    /// `EBI_SERVICE_MIN_DISPATCH_WORDS`, `EBI_SERVICE_TRACE_RING`,
    /// `EBI_SERVICE_SLOW_RING` and `EBI_SLOW_QUERY_MS`.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("EBI_SERVICE_ADDR") {
            cfg.tcp_addr = v;
        }
        if let Ok(v) = std::env::var("EBI_SERVICE_HTTP_ADDR") {
            cfg.http_addr = v;
        }
        if let Some(v) = env_usize("EBI_SERVICE_WORKERS") {
            cfg.workers = v;
        }
        if let Some(v) = env_usize("EBI_SERVICE_MAX_INFLIGHT") {
            cfg.max_inflight = v.max(1);
        }
        if let Some(v) = env_usize("EBI_SERVICE_TIMEOUT_MS") {
            cfg.timeout = Duration::from_millis(v as u64);
        }
        if let Some(v) = env_usize("EBI_SERVICE_MIN_DISPATCH_WORDS") {
            cfg.min_dispatch_words = v as u64;
        }
        if let Some(v) = env_usize("EBI_SERVICE_TRACE_RING") {
            cfg.trace_ring = v.max(1);
        }
        if let Some(v) = env_usize("EBI_SERVICE_SLOW_RING") {
            cfg.slow_ring = v.max(1);
        }
        if let Some(v) = env_usize("EBI_SLOW_QUERY_MS") {
            cfg.slow_query_ms = Some(v as u64);
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

struct HandleInner {
    stopping: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    tcp: SocketAddr,
    http: SocketAddr,
}

/// A cloneable handle to a running service: its bound addresses and
/// the shutdown trigger.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<HandleInner>,
}

impl ServiceHandle {
    /// Address the TCP line protocol is listening on.
    #[must_use]
    pub fn tcp_addr(&self) -> SocketAddr {
        self.inner.tcp
    }

    /// Address the HTTP frontend is listening on.
    #[must_use]
    pub fn http_addr(&self) -> SocketAddr {
        self.inner.http
    }

    /// Begins graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        let _guard = self.inner.lock.lock().expect("handle poisoned");
        self.inner.cv.notify_all();
    }

    fn is_stopping(&self) -> bool {
        self.inner.stopping.load(Ordering::Acquire)
    }

    fn wait(&self) {
        let mut guard = self.inner.lock.lock().expect("handle poisoned");
        while !self.is_stopping() {
            guard = self.inner.cv.wait(guard).expect("handle poisoned");
        }
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("tcp", &self.inner.tcp)
            .field("http", &self.inner.http)
            .field("stopping", &self.is_stopping())
            .finish()
    }
}

/// Lifetime totals returned by [`run`] after shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Queries answered (COUNT/QUERY/EXPLAIN with a result).
    pub served: u64,
    /// Admissions refused at the in-flight bound.
    pub rejected_busy: u64,
    /// Admissions refused during drain.
    pub rejected_draining: u64,
    /// Queries that hit the per-request deadline.
    pub timeouts: u64,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_draining: AtomicU64,
    timeouts: AtomicU64,
}

/// Everything a connection thread needs, borrowed for the serve scope.
///
/// Two lifetimes by necessity: `'env` is the data region the worker
/// pool's queued jobs may borrow (table, buffer pools, gate — all
/// declared before the pool so they outlive its drop), while `'p` is
/// the strictly shorter region in which the pool itself is borrowed
/// (dropck forbids `&'env WorkerPool<'env>`: the pool's destructor may
/// run queued `'env` jobs, so `'env` must outlive the pool).
struct ServeCtx<'p, 'env: 'p> {
    table: &'env ShardedTable,
    pools: &'env [BufferPool<'env>],
    workers: &'p WorkerPool<'env>,
    gate: &'env AdmissionGate,
    counters: &'env Counters,
    ring: &'env TraceRing,
    cfg: &'env ServiceConfig,
    handle: ServiceHandle,
    started: Instant,
}

/// The result of one admitted query.
#[derive(Debug)]
pub struct Answer {
    /// Process-unique query id.
    pub query_id: u64,
    /// Outbound `traceparent` (the request's trace id with this
    /// query's id as the parent span field), echoed to the client.
    pub traceparent: String,
    /// Matching rows (global row-id space).
    pub matches: u64,
    /// Up to `limit` matching global row ids.
    pub rows: Vec<u64>,
    /// End-to-end wall time, nanoseconds.
    pub wall_ns: u64,
    /// Whether shard jobs went to the worker pool (`false` = the
    /// work-estimate heuristic evaluated serially).
    pub dispatched: bool,
    /// The full query report (phases, cost, per-shard layouts).
    pub report: QueryReport,
}

enum Outcome {
    Answer(Box<Answer>),
    TimedOut,
    Bad(String),
}

/// Runs the service until a graceful shutdown completes.
///
/// Binds both listeners, spawns the worker pool and accept loops on
/// scoped threads (so shards and buffer pools are *borrowed*, never
/// leaked), then hands a [`ServiceHandle`] to `on_ready` — typically
/// sent over a channel to the controlling thread or used to print the
/// bound addresses.
///
/// # Errors
///
/// Fails only on listener bind errors; per-connection errors are
/// contained.
pub fn run(
    table: &ShardedTable,
    cfg: &ServiceConfig,
    on_ready: impl FnOnce(ServiceHandle) + Send,
) -> Result<ServiceSummary, ServiceError> {
    let tcp = TcpListener::bind(&cfg.tcp_addr)?;
    let http = TcpListener::bind(&cfg.http_addr)?;
    let handle = ServiceHandle {
        inner: Arc::new(HandleInner {
            stopping: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            tcp: tcp.local_addr()?,
            http: http.local_addr()?,
        }),
    };
    let pools: Vec<BufferPool<'_>> = table
        .shards()
        .iter()
        .map(|s| BufferPool::new(s.pager(), cfg.buffer_frames.max(1)))
        .collect();
    // Declaration order fixes drop order: the worker pool (whose queued
    // jobs borrow everything above) must drop before the gate, counters
    // and buffer pools those jobs reference.
    let gate = AdmissionGate::new(cfg.max_inflight);
    let counters = Counters::default();
    let ring = TraceRing::new(TraceRingConfig {
        capacity: cfg.trace_ring,
        slow_capacity: cfg.slow_ring,
        slow_threshold_ns: cfg.slow_query_ms.map(|ms| ms.saturating_mul(1_000_000)),
    });
    let workers = WorkerPool::new(cfg.workers);
    let ctx = ServeCtx {
        table,
        pools: &pools,
        workers: &workers,
        gate: &gate,
        counters: &counters,
        ring: &ring,
        cfg,
        handle: handle.clone(),
        started: Instant::now(),
    };
    obslog::info("service.server", "service listening")
        .str("tcp", &handle.tcp_addr().to_string())
        .str("http", &handle.http_addr().to_string())
        .u64("workers", cfg.workers as u64)
        .u64("max_inflight", cfg.max_inflight as u64);
    crossbeam::thread::scope(|scope| {
        for i in 0..cfg.workers {
            let w = &workers;
            scope.spawn(move |_| w.run_worker(i));
        }
        let ctx_ref = &ctx;
        scope.spawn(move |s| accept_loop(s, &tcp, ctx_ref, Proto::Tcp));
        scope.spawn(move |s| accept_loop(s, &http, ctx_ref, Proto::Http));
        on_ready(handle.clone());
        handle.wait();
        // Drain: refuse new work, let every admitted query answer.
        obslog::info("service.server", "draining").u64("inflight", gate.inflight() as u64);
        gate.begin_drain();
        gate.await_drain();
        workers.close();
        wake(handle.tcp_addr());
        wake(handle.http_addr());
    })
    .expect("service threads joined");
    Ok(ServiceSummary {
        served: counters.served.load(Ordering::Relaxed),
        rejected_busy: counters.rejected_busy.load(Ordering::Relaxed),
        rejected_draining: counters.rejected_draining.load(Ordering::Relaxed),
        timeouts: counters.timeouts.load(Ordering::Relaxed),
    })
}

/// Unblocks a listener stuck in `accept` after the stop flag is set.
fn wake(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Tcp,
    Http,
}

impl Proto {
    fn label(self) -> &'static str {
        match self {
            Self::Tcp => "tcp",
            Self::Http => "http",
        }
    }
}

// The scope's data lifetime `'env` and the worker pool's job lifetime
// inside `ServeCtx` are deliberately distinct parameters: unifying them
// would drag every scoped-thread capture into the pool's dropck region.
fn accept_loop<'scope, 'env, 'p, 'data>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    listener: &TcpListener,
    ctx: &'scope ServeCtx<'p, 'data>,
    proto: Proto,
) {
    for stream in listener.incoming() {
        if ctx.handle.is_stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        scope.spawn(move |_| match proto {
            Proto::Tcp => serve_tcp_conn(ctx, stream),
            Proto::Http => serve_http_conn(ctx, stream),
        });
    }
}

fn record_request(proto: Proto, status: &'static str, ns: u64) {
    if !ebi_obs::enabled() {
        return;
    }
    let reg = ebi_obs::metrics::global();
    reg.counter(
        "ebi_service_requests_total",
        &[("proto", proto.label()), ("status", status)],
    )
    .inc();
    reg.histogram("ebi_service_request_ns", &[("proto", proto.label())])
        .record(ns);
}

// ---------------------------------------------------------------------------
// TCP line protocol
// ---------------------------------------------------------------------------

fn serve_tcp_conn(ctx: &ServeCtx<'_, '_>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let started = Instant::now();
                let (response, close) = handle_tcp_line(ctx, line.trim());
                let ok = writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_ok();
                record_request(
                    Proto::Tcp,
                    status_of(&response),
                    started.elapsed().as_nanos() as u64,
                );
                if close || !ok {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.handle.is_stopping() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn status_of(response: &str) -> &'static str {
    if response.starts_with("OK") || response.starts_with("PONG") {
        "ok"
    } else if response.starts_with("BUSY") {
        "busy"
    } else {
        "error"
    }
}

/// Answers one protocol line; the bool asks the caller to close the
/// connection afterwards. A leading `TRACEPARENT <value>` field is
/// adopted as the request's trace identity (a fresh one is minted when
/// absent or malformed) and echoed in query answers.
fn handle_tcp_line(ctx: &ServeCtx<'_, '_>, line: &str) -> (String, bool) {
    let (tp, line) = protocol::split_traceparent(line);
    let tctx = tp
        .and_then(TraceContext::parse)
        .unwrap_or_else(TraceContext::mint);
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(msg) => return (format!("ERR {msg}"), false),
    };
    match request {
        Request::Ping => ("PONG".into(), false),
        Request::Stats => (format!("OK {}", stats_json(ctx)), false),
        Request::Shutdown => {
            ctx.handle.shutdown();
            ("OK draining".into(), true)
        }
        Request::Traces(n) => (trace_page(&ctx.ring.recent(), n), false),
        Request::Slow(n) => (trace_page(&ctx.ring.slow(), n), false),
        Request::Count(d) => (admitted(ctx, &d, 0, false, tctx), false),
        Request::Query(d, limit) => (admitted(ctx, &d, limit, false, tctx), false),
        Request::Explain(d) => (admitted(ctx, &d, 0, true, tctx), false),
    }
}

/// Renders a retained-trace page for `TRACES` / `SLOW`: an `OK <n>`
/// line, the newest `n` traces as JSON lines, and a lone `.`
/// terminator (the caller appends the final newline).
fn trace_page(traces: &[Arc<ebi_obs::RetainedTrace>], n: usize) -> String {
    let tail = &traces[traces.len().saturating_sub(n)..];
    format!(
        "OK {}\n{}.",
        tail.len(),
        TraceRing::render_json_lines(tail)
    )
}

/// Admission + execution + rendering for the TCP protocol.
fn admitted(
    ctx: &ServeCtx<'_, '_>,
    dnf: &DnfRequest,
    limit: usize,
    explain: bool,
    tctx: TraceContext,
) -> String {
    let permit = match ctx.gate.try_admit() {
        Ok(p) => p,
        Err(Refusal::Busy) => {
            ctx.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
            obslog::debug("service.server", "admission rejected")
                .ctx(&tctx)
                .str("proto", "tcp")
                .str("reason", "busy");
            return "BUSY".into();
        }
        Err(Refusal::Draining) => {
            ctx.counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            obslog::debug("service.server", "admission rejected")
                .ctx(&tctx)
                .str("proto", "tcp")
                .str("reason", "draining");
            return "ERR draining".into();
        }
    };
    let out = match execute(ctx, dnf, limit, tctx) {
        Outcome::Answer(a) => {
            ctx.counters.served.fetch_add(1, Ordering::Relaxed);
            let mut body = answer_json(&a);
            if explain {
                body = JsonObject::new()
                    .raw("result", &body)
                    .str("explain", &a.report.explain_analyze())
                    .finish();
            }
            format!("OK {body}")
        }
        Outcome::TimedOut => {
            ctx.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            obslog::warn("service.server", "query timeout")
                .ctx(&tctx)
                .str("proto", "tcp")
                .u64("timeout_ms", ctx.cfg.timeout.as_millis() as u64);
            "ERR timeout".into()
        }
        Outcome::Bad(msg) => format!("ERR {msg}"),
    };
    // The permit outlives rendering: a drain that begins mid-query
    // waits for this response to be fully built.
    drop(permit);
    out
}

// ---------------------------------------------------------------------------
// HTTP frontend
// ---------------------------------------------------------------------------

fn serve_http_conn(ctx: &ServeCtx<'_, '_>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(reader_stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(req)) => {
                let started = Instant::now();
                let keep = req.keep_alive && !ctx.handle.is_stopping();
                let (status, reason, ctype, body, traceparent) = route_http(ctx, &req);
                let extra: Vec<(&str, &str)> = traceparent
                    .as_deref()
                    .map(|tp| ("traceparent", tp))
                    .into_iter()
                    .collect();
                let ok =
                    http::write_response(&mut writer, status, reason, ctype, &body, keep, &extra)
                        .is_ok();
                record_request(
                    Proto::Http,
                    if status < 400 {
                        "ok"
                    } else if status == 429 {
                        "busy"
                    } else {
                        "error"
                    },
                    started.elapsed().as_nanos() as u64,
                );
                if !keep || !ok {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.handle.is_stopping() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// `(status, reason, content-type, body, echoed traceparent)`.
type HttpAnswer = (u16, &'static str, &'static str, String, Option<String>);

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";
const NDJSON: &str = "application/x-ndjson";

fn plain(status: u16, reason: &'static str, ctype: &'static str, body: String) -> HttpAnswer {
    (status, reason, ctype, body, None)
}

fn route_http(ctx: &ServeCtx<'_, '_>, req: &HttpRequest) -> HttpAnswer {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => plain(200, "OK", TEXT, "ok\n".into()),
        ("GET", "/metrics") => plain(
            200,
            "OK",
            TEXT,
            ebi_obs::metrics::global().render_prometheus(),
        ),
        ("GET", "/stats") => plain(200, "OK", JSON, stats_json(ctx)),
        ("GET", "/debug/traces") => plain(
            200,
            "OK",
            NDJSON,
            TraceRing::render_json_lines(&ctx.ring.recent()),
        ),
        ("GET", "/debug/slow") => plain(
            200,
            "OK",
            NDJSON,
            TraceRing::render_json_lines(&ctx.ring.slow()),
        ),
        ("GET", "/debug/vars") => plain(200, "OK", JSON, vars_json(ctx)),
        ("GET", path) if path.starts_with("/debug/trace/") => {
            let key = &path["/debug/trace/".len()..];
            match ctx.ring.find(key) {
                Some(t) => {
                    let tp = t.traceparent();
                    (200, "OK", JSON, ebi_obs::chrome::retained_to_chrome(&t), Some(tp))
                }
                None => plain(404, "Not Found", JSON, err_json("no such trace")),
            }
        }
        ("POST", "/shutdown") => {
            ctx.handle.shutdown();
            plain(200, "OK", JSON, r#"{"status":"draining"}"#.into())
        }
        ("GET" | "POST", "/count") => http_query(ctx, req, 0, false),
        ("GET" | "POST", "/query") => {
            let limit = http::query_param(&req.query, "limit")
                .and_then(|l| l.parse().ok())
                .unwrap_or(protocol::DEFAULT_LIMIT)
                .min(protocol::MAX_LIMIT);
            http_query(ctx, req, limit, false)
        }
        ("GET" | "POST", "/explain") => http_query(ctx, req, 0, true),
        _ => plain(404, "Not Found", JSON, r#"{"error":"not found"}"#.into()),
    }
}

/// Pulls the query text from `?q=`, a raw text body, or a tiny JSON
/// body of the form `{"q": "..."}`.
fn http_query_text(req: &HttpRequest) -> Option<String> {
    if let Some(q) = http::query_param(&req.query, "q") {
        return Some(q);
    }
    let body = req.body.trim();
    if body.is_empty() {
        return None;
    }
    if body.starts_with('{') {
        // Hand-rolled extraction of a flat {"q":"..."} — the vendored
        // serde has no derive, and the grammar needs nothing more.
        let key = body.find("\"q\"")?;
        let colon = body[key + 3..].find(':')? + key + 4;
        let rest = body[colon..].trim_start();
        let rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        return Some(rest[..end].to_string());
    }
    Some(body.to_string())
}

fn http_query(
    ctx: &ServeCtx<'_, '_>,
    req: &HttpRequest,
    limit: usize,
    explain: bool,
) -> HttpAnswer {
    // Adopt the client's traceparent (W3C header) or mint a fresh
    // identity; every outcome, including refusals, echoes the trace so
    // the client can correlate with the server's logs.
    let tctx = req
        .traceparent
        .as_deref()
        .and_then(TraceContext::parse)
        .unwrap_or_else(TraceContext::mint);
    let echo = Some(tctx.to_traceparent(tctx.parent_id()));
    let Some(text) = http_query_text(req) else {
        return (400, "Bad Request", JSON, err_json("missing query (q=)"), echo);
    };
    let dnf = match protocol::parse_dnf(&text) {
        Ok(d) => d,
        Err(msg) => return (400, "Bad Request", JSON, err_json(&msg), echo),
    };
    let permit = match ctx.gate.try_admit() {
        Ok(p) => p,
        Err(Refusal::Busy) => {
            ctx.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
            obslog::debug("service.server", "admission rejected")
                .ctx(&tctx)
                .str("proto", "http")
                .str("reason", "busy");
            return (429, "Too Many Requests", JSON, err_json("busy"), echo);
        }
        Err(Refusal::Draining) => {
            ctx.counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            obslog::debug("service.server", "admission rejected")
                .ctx(&tctx)
                .str("proto", "http")
                .str("reason", "draining");
            return (503, "Service Unavailable", JSON, err_json("draining"), echo);
        }
    };
    let out = match execute(ctx, &dnf, limit, tctx) {
        Outcome::Answer(a) => {
            ctx.counters.served.fetch_add(1, Ordering::Relaxed);
            let mut body = answer_json(&a);
            if explain {
                body = JsonObject::new()
                    .raw("result", &body)
                    .str("explain", &a.report.explain_analyze())
                    .finish();
            }
            let echo = Some(a.traceparent.clone());
            (200, "OK", JSON, body, echo)
        }
        Outcome::TimedOut => {
            ctx.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            obslog::warn("service.server", "query timeout")
                .ctx(&tctx)
                .str("proto", "http")
                .u64("timeout_ms", ctx.cfg.timeout.as_millis() as u64);
            (504, "Gateway Timeout", JSON, err_json("timeout"), echo)
        }
        Outcome::Bad(msg) => (400, "Bad Request", JSON, err_json(&msg), echo),
    };
    drop(permit);
    out
}

fn err_json(msg: &str) -> String {
    JsonObject::new().str("error", msg).finish()
}

// ---------------------------------------------------------------------------
// Query execution (shared by both protocols)
// ---------------------------------------------------------------------------

/// Compiles, fans out, merges and reports one admitted query. `tctx`
/// is the request's trace identity: it correlates the retained trace,
/// the structured log lines, and the `traceparent` echoed in the
/// answer.
fn execute(ctx: &ServeCtx<'_, '_>, dnf: &DnfRequest, limit: usize, tctx: TraceContext) -> Outcome {
    let started = Instant::now();
    let query_id = ebi_obs::next_query_id();
    let trace = ebi_obs::Trace::begin();
    let table = ctx.table;
    let n = table.shards().len();

    let mut root = trace.root_span("query");
    root.attr("query_id", query_id);

    let compiled = {
        let _span = root.child("compile");
        match table.compile(dnf) {
            Ok(c) => Arc::new(c),
            Err(e) => {
                drop(root);
                drop(trace);
                return Outcome::Bad(e.to_string());
            }
        }
    };

    // The core engine's auto-serialise heuristic, lifted to shards:
    // when the whole query's post-pruning kernel traffic is below the
    // parallel work floor, handing slices to workers costs more than
    // scanning them on this thread.
    let estimate = table.estimated_work_words(&compiled);
    let dispatched = ctx.workers.workers() > 0 && n > 1 && estimate >= ctx.cfg.min_dispatch_words;

    let outcomes: Vec<Option<ShardOutcome>> = {
        let mut fan_span = root.child("fanout");
        fan_span.attr("shards", n as u64);
        fan_span.attr("estimated_work_words", estimate);
        fan_span.attr("dispatched", u64::from(dispatched));
        let parent = fan_span.handle();
        if dispatched {
            let fan = Arc::new(FanOut::<ShardOutcome>::new(n));
            for shard in table.shards() {
                let fan = Arc::clone(&fan);
                let compiled = Arc::clone(&compiled);
                let i = shard.id();
                let pool = &ctx.pools[i];
                ctx.workers.submit(Box::new(move || {
                    if fan.is_cancelled() {
                        fan.complete(i, None);
                        return;
                    }
                    fan.complete(i, Some(eval_shard(shard, pool, &compiled, parent)));
                }));
            }
            match fan.wait(ctx.cfg.timeout) {
                Some(results) => results,
                None => {
                    drop(fan_span);
                    drop(root);
                    drop(trace);
                    return Outcome::TimedOut;
                }
            }
        } else {
            table
                .shards()
                .iter()
                .map(|s| Some(eval_shard(s, &ctx.pools[s.id()], &compiled, parent)))
                .collect()
        }
    };

    let (bitmap, cost, storage) = {
        let mut span = root.child("merge");
        let mut cost = CostCounters::default();
        let mut storage = StorageCounters::default();
        let mut order: Option<&'static str> = None;
        for (shard, outcome) in table.shards().iter().zip(&outcomes) {
            let Some(o) = outcome else { continue };
            merge_cost(&mut cost, &o.cost);
            storage.pager_reads += o.buffer.1; // misses reach the pager
            storage.buffer_hits += o.buffer.0;
            storage.buffer_misses += o.buffer.1;
            storage.buffer_evictions += o.buffer.2;
            for il in shard.layouts(table.columns()) {
                storage.slice_runs += il.slice_runs;
                storage.slice_longest_run = storage.slice_longest_run.max(il.slice_longest_run);
                storage.slice_fill_words += il.slice_fill_words;
                storage.slice_total_words += il.slice_total_words;
                order = Some(match order {
                    None => il.row_order,
                    Some(prev) if prev == il.row_order => il.row_order,
                    Some(_) => "mixed",
                });
                storage.index_layouts.push(il);
            }
        }
        storage.row_order = order.unwrap_or("original");
        let bitmap = table.merge(
            outcomes
                .iter()
                .enumerate()
                .filter_map(|(i, o)| o.as_ref().map(|o| (i, &o.bitmap))),
        );
        span.attr("matches", bitmap.count_ones() as u64);
        (bitmap, cost, storage)
    };

    drop(root);
    let records = trace.finish();
    let matches = bitmap.count_ones() as u64;
    let rows: Vec<u64> = bitmap.iter_ones().take(limit).map(|r| r as u64).collect();
    let report = QueryReport {
        query_id,
        label: render_label(dnf),
        rows: table.rows() as u64,
        matches,
        wall_ns: started.elapsed().as_nanos() as u64,
        expressions: compiled.rendered(),
        phases: PhaseNode::forest(&records),
        cost,
        storage,
    };
    if ebi_obs::enabled() {
        report.publish(ebi_obs::metrics::global());
    }
    // Tail sampling is always on: the ring keeps the N most recent
    // traces plus everything over the slow threshold, independent of
    // the span subscriber (with it disabled the retained report simply
    // has no phase tree).
    let retained = ctx.ring.record(tctx, query_id, report.clone());
    if retained.slow {
        if ebi_obs::enabled() {
            ebi_obs::metrics::global()
                .counter("ebi_service_slow_queries_total", &[])
                .inc();
        }
        obslog::warn("service.server", "slow query")
            .ctx(&tctx)
            .query(query_id)
            .u64("wall_ns", retained.wall_ns)
            .u64("threshold_ns", retained.threshold_ns)
            .str("label", &report.label);
    }
    Outcome::Answer(Box::new(Answer {
        query_id,
        traceparent: tctx.to_traceparent(query_id),
        matches,
        rows,
        wall_ns: report.wall_ns,
        dispatched,
        report,
    }))
}

/// Evaluates one shard and fetches its matching heap pages — the unit
/// of work a pool worker runs, wrapped in an `eval.worker` span hung
/// off the query's `fanout` span (cross-thread parentage via the
/// captured handle, same idiom as the core parallel engine). The span
/// carries the owning trace id (`trace` attribute) so pool hand-off is
/// checkable end to end, and per-shard latency lands in
/// `shard`-labelled service metrics so fan-out skew shows in a scrape.
///
/// Public for the telemetry proptests and benches, which drive real
/// shard evaluations through a [`WorkerPool`] without a socket.
pub fn eval_shard(
    shard: &crate::shard::Shard,
    pool: &BufferPool<'_>,
    compiled: &CompiledQuery,
    parent: ebi_obs::SpanHandle,
) -> ShardOutcome {
    let started = Instant::now();
    let mut span = parent.child("eval.worker");
    let (bitmap, cost) = shard.eval(compiled);
    let before = pool.stats();
    let pages = shard.fetch_matches(&bitmap, Some(pool));
    let after = pool.stats();
    let buffer = (
        after.hits.saturating_sub(before.hits),
        after.misses.saturating_sub(before.misses),
        after.evictions.saturating_sub(before.evictions),
    );
    let wall_ns = started.elapsed().as_nanos() as u64;
    if span.is_live() {
        span.attr("trace", parent.trace());
        span.attr("shard", shard.id() as u64);
        span.attr("rows", shard.rows() as u64);
        span.attr("matches", bitmap.count_ones() as u64);
        span.attr("vectors_accessed", cost.vectors_accessed);
        span.attr("pages", pages);
    }
    if ebi_obs::enabled() {
        let reg = ebi_obs::metrics::global();
        let sid = shard.id().to_string();
        reg.counter("ebi_service_shard_evals_total", &[("shard", &sid)])
            .inc();
        reg.histogram("ebi_service_shard_eval_ns", &[("shard", &sid)])
            .record(wall_ns);
    }
    ShardOutcome {
        shard: shard.id(),
        bitmap,
        cost,
        pages_read: pages,
        buffer,
        wall_ns,
    }
}

fn render_label(dnf: &DnfRequest) -> String {
    let mut out = String::new();
    for (i, d) in dnf.disjuncts.iter().enumerate() {
        if i > 0 {
            out.push_str(" OR ");
        }
        for (j, c) in d.iter().enumerate() {
            if j > 0 {
                out.push_str(" AND ");
            }
            match &c.predicate {
                crate::shard::Predicate::Eq(v) => {
                    out.push_str(&format!("{}={v}", c.column));
                }
                crate::shard::Predicate::In(vs) => {
                    let list: Vec<String> = vs.iter().map(u64::to_string).collect();
                    out.push_str(&format!("{} IN {}", c.column, list.join(",")));
                }
                crate::shard::Predicate::Between(lo, hi) => {
                    out.push_str(&format!("{} BETWEEN {lo} {hi}", c.column));
                }
            }
        }
    }
    out
}

fn answer_json(a: &Answer) -> String {
    let rows: Vec<String> = a.rows.iter().map(u64::to_string).collect();
    JsonObject::new()
        .u64("query_id", a.query_id)
        .str("trace", &a.traceparent)
        .u64("matches", a.matches)
        .raw("rows", &format!("[{}]", rows.join(",")))
        .u64("wall_ns", a.wall_ns)
        .bool("dispatched", a.dispatched)
        .u64("vectors_accessed", a.report.cost.vectors_accessed)
        .str("row_order", a.report.storage.row_order)
        .finish()
}

fn stats_json(ctx: &ServeCtx<'_, '_>) -> String {
    JsonObject::new()
        .u64("rows", ctx.table.rows() as u64)
        .u64("shards", ctx.table.shards().len() as u64)
        .raw(
            "columns",
            &ebi_obs::export::json_str_array(ctx.table.columns()),
        )
        .u64("inflight", ctx.gate.inflight() as u64)
        .u64("max_inflight", ctx.gate.max_inflight() as u64)
        .u64("workers", ctx.workers.workers() as u64)
        .u64("served", ctx.counters.served.load(Ordering::Relaxed))
        .u64(
            "rejected_busy",
            ctx.counters.rejected_busy.load(Ordering::Relaxed),
        )
        .u64(
            "rejected_draining",
            ctx.counters.rejected_draining.load(Ordering::Relaxed),
        )
        .u64("timeouts", ctx.counters.timeouts.load(Ordering::Relaxed))
        .u64("uptime_ms", ctx.started.elapsed().as_millis() as u64)
        .u64("slow_queries", ctx.ring.slow_total())
        .u64("traces_recorded", ctx.ring.total())
        .u64("slow_threshold_ns", ctx.ring.threshold_ns())
        .bool("draining", ctx.handle.is_stopping())
        .finish()
}

/// `/debug/vars`: build identity, uptime, admission/ring state, and a
/// full JSON dump of the metrics registry (one object per instrument,
/// histograms with their complete cumulative bucket series).
fn vars_json(ctx: &ServeCtx<'_, '_>) -> String {
    let metrics: Vec<String> = ebi_obs::metrics::global()
        .render_json_lines()
        .lines()
        .map(str::to_string)
        .collect();
    JsonObject::new()
        .str("build", concat!("ebi-service/", env!("CARGO_PKG_VERSION")))
        .u64("uptime_ms", ctx.started.elapsed().as_millis() as u64)
        .u64("inflight", ctx.gate.inflight() as u64)
        .u64("max_inflight", ctx.gate.max_inflight() as u64)
        .u64("workers", ctx.workers.workers() as u64)
        .u64("served", ctx.counters.served.load(Ordering::Relaxed))
        .u64(
            "rejected_busy",
            ctx.counters.rejected_busy.load(Ordering::Relaxed),
        )
        .u64(
            "rejected_draining",
            ctx.counters.rejected_draining.load(Ordering::Relaxed),
        )
        .u64("timeouts", ctx.counters.timeouts.load(Ordering::Relaxed))
        .u64("traces_recorded", ctx.ring.total())
        .u64("traces_retained", ctx.ring.recent().len() as u64)
        .u64("slow_queries", ctx.ring.slow_total())
        .u64("slow_retained", ctx.ring.slow().len() as u64)
        .u64("slow_threshold_ns", ctx.ring.threshold_ns())
        .u64("trace_ring_capacity", ctx.cfg.trace_ring as u64)
        .u64("slow_ring_capacity", ctx.cfg.slow_ring as u64)
        .bool("draining", ctx.handle.is_stopping())
        .raw("metrics", &ebi_obs::export::json_array(&metrics))
        .finish()
}
