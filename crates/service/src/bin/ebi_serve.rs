//! `ebi_serve` — stand-alone sharded query server over a synthetic
//! fact table.
//!
//! ```text
//! ebi_serve [--rows N] [--shards N] [--workers N] [--max-inflight N]
//! ```
//!
//! Builds a deterministic three-column table (`a`, `b`, `c` with
//! cardinalities 7, 5 and 13), shards it, and serves the TCP line
//! protocol and the HTTP/JSON frontend until `SHUTDOWN` /
//! `POST /shutdown` / SIGPIPE of the controlling pipe. On startup it
//! prints one machine-parseable line with the bound addresses:
//!
//! ```text
//! EBI_SERVICE tcp=127.0.0.1:40231 http=127.0.0.1:40232
//! ```
//!
//! Every flag also has an `EBI_SERVICE_*` environment override (flags
//! win); see `--help`.

use ebi_obs::log as obslog;
use ebi_service::{ColumnSpec, ServiceConfig, ShardedTable, TableOptions};
use ebi_storage::Cell;
use std::io::Write as _;

const USAGE: &str = "\
ebi_serve - sharded concurrent query service over encoded bitmap indexes

USAGE:
    ebi_serve [OPTIONS]

OPTIONS:
    --rows N          synthetic fact-table rows        [default: 100000, env EBI_SERVICE_ROWS]
    --shards N        row-range shards                 [default: 4, env EBI_SERVICE_SHARDS]
    --workers N       fan-out worker threads           [env EBI_SERVICE_WORKERS]
    --max-inflight N  admission bound (excess -> BUSY) [env EBI_SERVICE_MAX_INFLIGHT]
    --timeout-ms N    per-request deadline             [env EBI_SERVICE_TIMEOUT_MS]
    --tcp ADDR        TCP bind address                 [default: 127.0.0.1:0, env EBI_SERVICE_ADDR]
    --http ADDR       HTTP bind address                [default: 127.0.0.1:0, env EBI_SERVICE_HTTP_ADDR]
    --quiet-obs       leave the observability subscriber off
    -h, --help        print this help

PROTOCOLS:
    TCP  : PING | STATS | SHUTDOWN | TRACES [n] | SLOW [n]
           | COUNT <dnf> | QUERY <dnf> [LIMIT k] | EXPLAIN <dnf>
           (any request may be prefixed with `TRACEPARENT <w3c-traceparent>`)
    HTTP : GET /healthz | GET /stats | GET /metrics | GET /query?q=<dnf>&limit=k
           GET /count?q=<dnf> | GET /explain?q=<dnf> | POST /shutdown
           GET /debug/traces | GET /debug/slow | GET /debug/trace/<id> | GET /debug/vars
    <dnf>: clause {AND|OR clause}*   clause: col=v | col IN a,b,c | col BETWEEN lo hi

TELEMETRY:
    Structured JSONL logs go to stderr, or a rotating file via EBI_LOG=<path>
    (EBI_LOG_LEVEL, EBI_LOG_MAX_BYTES). A tail-sampling ring keeps the most
    recent traces plus everything slower than rolling p99 (or a fixed
    EBI_SLOW_QUERY_MS); ring sizes via EBI_SERVICE_TRACE_RING /
    EBI_SERVICE_SLOW_RING. /debug/trace/<id> emits Chrome trace-event JSON.
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut rows = env_usize("EBI_SERVICE_ROWS", 100_000);
    let mut shards = env_usize("EBI_SERVICE_SHARDS", 4);
    let mut cfg = ServiceConfig::from_env();
    let mut obs = true;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--rows" => rows = parse_n(&take(&args, &mut i, "--rows")),
            "--shards" => shards = parse_n(&take(&args, &mut i, "--shards")),
            "--workers" => cfg.workers = parse_n(&take(&args, &mut i, "--workers")),
            "--max-inflight" => {
                cfg.max_inflight = parse_n(&take(&args, &mut i, "--max-inflight")).max(1);
            }
            "--timeout-ms" => {
                cfg.timeout =
                    std::time::Duration::from_millis(
                        parse_n(&take(&args, &mut i, "--timeout-ms")) as u64
                    );
            }
            "--tcp" => cfg.tcp_addr = take(&args, &mut i, "--tcp"),
            "--http" => cfg.http_addr = take(&args, &mut i, "--http"),
            "--quiet-obs" => obs = false,
            other => die(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if rows == 0 {
        die("--rows must be positive");
    }

    ebi_obs::set_enabled(obs);

    let table = match ShardedTable::build(
        synthetic_columns(rows),
        &TableOptions {
            shards,
            ..TableOptions::default()
        },
    ) {
        Ok(t) => t,
        Err(e) => {
            obslog::error("service.bin", "table build failed").str("error", &e.to_string());
            std::process::exit(1);
        }
    };
    obslog::info("service.bin", "table built")
        .u64("rows", table.rows() as u64)
        .u64("shards", table.shards().len() as u64)
        .u64("workers", cfg.workers as u64)
        .u64("max_inflight", cfg.max_inflight as u64);

    let summary = ebi_service::run(&table, &cfg, |handle| {
        // The one machine-parseable line scripts wait for.
        println!(
            "EBI_SERVICE tcp={} http={}",
            handle.tcp_addr(),
            handle.http_addr()
        );
        let _ = std::io::stdout().flush();
    });
    match summary {
        Ok(s) => {
            obslog::info("service.bin", "service drained")
                .u64("served", s.served)
                .u64("busy", s.rejected_busy)
                .u64("draining", s.rejected_draining)
                .u64("timeouts", s.timeouts);
        }
        Err(e) => {
            obslog::error("service.bin", "serve failed").str("error", &e.to_string());
            std::process::exit(1);
        }
    }
}

/// Consumes the value following flag `what`, advancing the cursor.
fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{what} needs a value")))
        .clone()
}

fn parse_n(s: &str) -> usize {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("expected a number, got {s:?}")))
}

/// Deterministic three-column synthetic fact table (xorshift; no rand
/// dependency) with cardinalities 7 / 5 / 13 and ~1% NULLs in `b`.
fn synthetic_columns(rows: usize) -> Vec<ColumnSpec> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    let mut c = Vec::with_capacity(rows);
    for _ in 0..rows {
        a.push(Cell::Value(next() % 7));
        let r = next();
        b.push(if r % 100 == 0 {
            Cell::Null
        } else {
            Cell::Value(r % 5)
        });
        c.push(Cell::Value(next() % 13));
    }
    vec![
        ColumnSpec::new("a", a),
        ColumnSpec::new("b", b),
        ColumnSpec::new("c", c),
    ]
}
