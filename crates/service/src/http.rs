//! A minimal hand-rolled HTTP/1.1 layer — just enough for the JSON
//! frontend: request-line + headers + optional `Content-Length` body,
//! keep-alive, and fixed-length responses. No chunked encoding, no
//! TLS, no async runtime; one blocking thread per connection, which is
//! exactly the closed-loop shape the bench drives.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (uppercased).
    pub method: String,
    /// Path component, percent-decoded.
    pub path: String,
    /// Raw query string (undecoded; parameters are decoded by
    /// [`query_param`]).
    pub query: String,
    /// Request body (empty without `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Raw `traceparent` header value, if the client sent one.
    pub traceparent: Option<String>,
}

/// Reads one request from the stream. `Ok(None)` means the peer
/// closed cleanly before a request line.
///
/// # Errors
///
/// I/O errors (including read timeouts, surfaced as `WouldBlock` /
/// `TimedOut`) and malformed requests (`InvalidData`).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut keep_alive = version.ends_with("1.1");
    let mut content_length = 0usize;
    let mut traceparent = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("eof inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
                if content_length > 1 << 20 {
                    return Err(bad("body too large"));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(HttpRequest {
        method,
        path: percent_decode(path),
        query,
        body,
        keep_alive,
        traceparent,
    }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Extracts and percent-decodes one query-string parameter.
#[must_use]
pub fn query_param(query: &str, name: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == name).then(|| percent_decode(v))
    })
}

/// Decodes `%XX` escapes and `+` (space). Malformed escapes pass
/// through verbatim.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Writes one fixed-length response. `extra_headers` is for
/// response-scoped additions such as the echoed `traceparent`; names
/// and values must already be header-safe (no CR/LF).
///
/// # Errors
///
/// Propagates stream write errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(
            percent_decode("a%3D1+AND+b%20IN%202%2C3"),
            "a=1 AND b IN 2,3"
        );
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }

    #[test]
    fn query_param_lookup() {
        let q = "q=a%3D1&limit=5";
        assert_eq!(query_param(q, "q").as_deref(), Some("a=1"));
        assert_eq!(query_param(q, "limit").as_deref(), Some("5"));
        assert_eq!(query_param(q, "missing"), None);
    }
}
