//! Admission control and the work-stealing worker pool.
//!
//! Three concerns live here, all built on `std::sync` primitives so
//! the service runs on vendored deps only:
//!
//! - [`AdmissionGate`] bounds in-flight queries. A query holds a
//!   [`Permit`] from admission until its response is written; once the
//!   gate starts draining, new admissions are refused and
//!   [`AdmissionGate::await_drain`] blocks until the last permit drops
//!   — that is the graceful-shutdown barrier.
//! - [`WorkerPool`] runs shard-evaluation jobs on long-lived scoped
//!   threads. Each worker owns a deque; submission deals round-robin,
//!   and an idle worker steals the back half of the fullest other
//!   queue — the same rebalancing rule as `ebi-core`'s segment
//!   work-stealing, lifted from units to whole shard jobs.
//! - [`FanOut`] is the per-query completion latch: one slot per shard
//!   job, a deadline-aware wait, and a cancellation flag that late
//!   jobs check so an abandoned (timed-out) query stops consuming
//!   workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queued unit of work: a boxed closure borrowing at most `'env`
/// (the service scope), so jobs can reference shards and buffer pools
/// directly while per-query state travels in `Arc`s.
pub type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolState {
    /// Jobs pushed but not yet claimed; tracked under the sleep mutex
    /// so a submit between a worker's empty scan and its wait cannot
    /// be missed.
    pending: usize,
    /// `false` once [`WorkerPool::close`] ran; workers exit when the
    /// pool is closed *and* every queue is drained.
    open: bool,
}

/// A fixed-size work-stealing pool. Workers are started externally
/// (scoped threads calling [`WorkerPool::run_worker`]) so they may
/// borrow the service environment.
// LINT_LOCK_ORDER: state < queues  (registry copy: lint.toml [[lock_domain]] service.pool; see DESIGN.md §12)
pub struct WorkerPool<'env> {
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    state: Mutex<PoolState>,
    cv: Condvar,
    rr: AtomicUsize,
}

impl<'env> WorkerPool<'env> {
    /// A pool with `workers` queues (0 means every submit runs inline).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                pending: 0,
                open: true,
            }),
            cv: Condvar::new(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of workers the pool was sized for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a job round-robin and wakes one worker. With no
    /// workers, or after [`WorkerPool::close`], the job runs inline on
    /// the caller — submission never silently drops work.
    pub fn submit(&self, job: Job<'env>) {
        if self.queues.is_empty() {
            job();
            return;
        }
        {
            let mut st = self.state.lock().expect("pool state poisoned");
            if !st.open {
                drop(st);
                job();
                return;
            }
            let slot = self.rr.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[slot]
                .lock()
                .expect("queue poisoned")
                .push_back(job);
            st.pending += 1;
        }
        self.cv.notify_one();
    }

    /// The worker loop for queue `me`; call from a dedicated thread.
    /// Returns once the pool is closed and every queue is empty.
    pub fn run_worker(&self, me: usize) {
        loop {
            if let Some(job) = self.claim(me) {
                job();
                continue;
            }
            let st = self.state.lock().expect("pool state poisoned");
            if st.pending > 0 {
                // Pushed between our empty scan and this lock.
                continue;
            }
            if !st.open {
                return;
            }
            // The timeout is a belt-and-braces fallback; the pending
            // counter above makes lost wakeups benign, not possible.
            let _ = self
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .expect("pool state poisoned");
        }
    }

    /// Pops locally, else steals the back half of the fullest other
    /// queue (one job runs now, the rest migrate to our queue).
    ///
    /// Lock order: never hold a queue lock while taking the state lock
    /// — [`WorkerPool::submit`] acquires state → queue, so the reverse
    /// order here would be an AB-BA deadlock. The `popped` binding (not
    /// an `if let` on the locked pop, whose guard temporary would live
    /// through the body) makes the queue guard drop before
    /// `note_claimed` touches state. The order is declared machine-
    /// readably on the struct (`LINT_LOCK_ORDER`) and in `lint.toml`;
    /// `ebi-lint` fails CI on any regression to the old pattern.
    fn claim(&self, me: usize) -> Option<Job<'env>> {
        let popped = self.queues[me].lock().expect("queue poisoned").pop_front();
        if let Some(job) = popped {
            self.note_claimed(1);
            return Some(job);
        }
        let victim = (0..self.queues.len())
            .filter(|&j| j != me)
            .max_by_key(|&j| self.queues[j].lock().expect("queue poisoned").len())?;
        let mut stolen = {
            let mut q = self.queues[victim].lock().expect("queue poisoned");
            let n = q.len();
            if n == 0 {
                return None;
            }
            q.split_off(n - n.div_ceil(2))
        };
        let job = stolen.pop_front();
        let migrated = stolen.len();
        if migrated > 0 {
            self.queues[me]
                .lock()
                .expect("queue poisoned")
                .extend(stolen);
        }
        // Only the job we run now leaves the pending count; migrated
        // jobs are still queued (just on our deque).
        self.note_claimed(usize::from(job.is_some()));
        job
    }

    fn note_claimed(&self, n: usize) {
        if n > 0 {
            let mut st = self.state.lock().expect("pool state poisoned");
            st.pending = st.pending.saturating_sub(n);
        }
    }

    /// Closes the pool: queued jobs still run, new submits run inline,
    /// workers exit once drained.
    pub fn close(&self) {
        self.state.lock().expect("pool state poisoned").open = false;
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for WorkerPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.queues.len())
            .finish()
    }
}

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The in-flight bound is reached — back off and retry (HTTP 429 /
    /// TCP `BUSY`).
    Busy,
    /// The service is draining for shutdown (HTTP 503 / TCP `ERR`).
    Draining,
}

struct GateState {
    inflight: usize,
    draining: bool,
}

/// Bounds concurrent in-flight queries and sequences graceful
/// shutdown.
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cv: Condvar,
    max: usize,
}

impl AdmissionGate {
    /// A gate admitting at most `max` concurrent queries.
    #[must_use]
    pub fn new(max: usize) -> Self {
        Self {
            state: Mutex::new(GateState {
                inflight: 0,
                draining: false,
            }),
            cv: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Tries to admit one query; on success the returned [`Permit`]
    /// must be held until the response is written.
    ///
    /// # Errors
    ///
    /// [`Refusal::Draining`] once shutdown began, [`Refusal::Busy`]
    /// at the in-flight bound.
    pub fn try_admit(&self) -> Result<Permit<'_>, Refusal> {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.draining {
            return Err(Refusal::Draining);
        }
        if st.inflight >= self.max {
            return Err(Refusal::Busy);
        }
        st.inflight += 1;
        Ok(Permit { gate: self })
    }

    /// Queries currently holding permits.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.state.lock().expect("gate poisoned").inflight
    }

    /// The admission bound.
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.max
    }

    /// Stops admitting new queries. In-flight queries keep their
    /// permits.
    pub fn begin_drain(&self) {
        self.state.lock().expect("gate poisoned").draining = true;
        self.cv.notify_all();
    }

    /// Blocks until every admitted query has released its permit.
    /// Call after [`AdmissionGate::begin_drain`].
    pub fn await_drain(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        while st.inflight > 0 {
            st = self.cv.wait(st).expect("gate poisoned");
        }
    }
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("max", &self.max)
            .field("inflight", &self.inflight())
            .finish()
    }
}

/// RAII admission permit; dropping it releases the slot and wakes
/// drain waiters.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().expect("gate poisoned");
        st.inflight -= 1;
        if st.inflight == 0 || st.inflight + 1 >= self.gate.max {
            drop(st);
            self.gate.cv.notify_all();
        }
    }
}

/// Per-query completion latch for shard fan-out: `n` result slots, a
/// deadline-aware wait, and a cancellation flag late jobs observe.
#[derive(Debug)]
pub struct FanOut<T> {
    state: Mutex<(Vec<Option<T>>, usize)>,
    cv: Condvar,
    cancelled: AtomicBool,
}

impl<T> FanOut<T> {
    /// A latch expecting `n` completions.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            state: Mutex::new(((0..n).map(|_| None).collect(), n)),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Records slot `i` (possibly `None` for a cancelled job) and
    /// counts the completion; the last one wakes the waiter.
    pub fn complete(&self, i: usize, value: Option<T>) {
        let mut st = self.state.lock().expect("fanout poisoned");
        st.0[i] = value;
        st.1 = st.1.saturating_sub(1);
        if st.1 == 0 {
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Waits until every slot completed or `timeout` elapses. On
    /// timeout the latch is cancelled (late jobs see
    /// [`FanOut::is_cancelled`] and skip their work) and `None` is
    /// returned.
    pub fn wait(&self, timeout: Duration) -> Option<Vec<Option<T>>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("fanout poisoned");
        while st.1 > 0 {
            let now = Instant::now();
            if now >= deadline {
                self.cancelled.store(true, Ordering::Release);
                return None;
            }
            let (next, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .expect("fanout poisoned");
            st = next;
        }
        Some(std::mem::take(&mut st.0))
    }

    /// Whether the waiter gave up; jobs check this before starting
    /// expensive work.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn pool_runs_every_submitted_job() {
        let counter = AtomicU64::new(0);
        let pool = WorkerPool::new(3);
        crossbeam::thread::scope(|scope| {
            for i in 0..3 {
                let p = &pool;
                scope.spawn(move |_| p.run_worker(i));
            }
            for _ in 0..100 {
                pool.submit(Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
            // Uneven burst onto one logical submitter exercises steal.
            for _ in 0..50 {
                pool.submit(Box::new(|| {
                    std::thread::sleep(Duration::from_micros(50));
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.close();
        })
        .expect("workers joined");
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    /// Regression test for a submit/claim lock-order inversion: submit
    /// takes state → queue, so a claimer holding its queue lock while
    /// updating the pending count (state) deadlocked the whole pool.
    /// Many submitters racing busy workers reproduce that interleaving
    /// within a few thousand iterations.
    #[test]
    fn concurrent_submitters_do_not_deadlock_with_claimers() {
        let counter = AtomicU64::new(0);
        let pool = WorkerPool::new(2);
        crossbeam::thread::scope(|scope| {
            for i in 0..2 {
                let p = &pool;
                scope.spawn(move |_| p.run_worker(i));
            }
            let submitters: Vec<_> = (0..4)
                .map(|_| {
                    let p = &pool;
                    let c = &counter;
                    scope.spawn(move |_| {
                        for _ in 0..2_000 {
                            p.submit(Box::new(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            }));
                        }
                    })
                })
                .collect();
            for s in submitters {
                s.join().expect("submitter");
            }
            pool.close();
        })
        .expect("workers joined");
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 2_000);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let ran = AtomicBool::new(false);
        let pool = WorkerPool::new(0);
        pool.submit(Box::new(|| {
            ran.store(true, Ordering::Relaxed);
        }));
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn closed_pool_runs_submissions_inline() {
        let ran = AtomicBool::new(false);
        let pool = WorkerPool::new(1);
        pool.close();
        pool.submit(Box::new(|| {
            ran.store(true, Ordering::Relaxed);
        }));
        assert!(ran.load(Ordering::Relaxed));
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| pool.run_worker(0)); // exits: closed + empty
        })
        .expect("worker joined");
    }

    #[test]
    fn gate_bounds_inflight_and_drains() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().expect("first");
        let b = gate.try_admit().expect("second");
        assert_eq!(gate.try_admit().unwrap_err(), Refusal::Busy);
        drop(a);
        let c = gate.try_admit().expect("slot freed");
        gate.begin_drain();
        assert_eq!(gate.try_admit().unwrap_err(), Refusal::Draining);
        // await_drain returns once the survivors finish.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                drop(b);
                drop(c);
            });
            gate.await_drain();
        });
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn fanout_collects_and_times_out() {
        let fan = Arc::new(FanOut::<u64>::new(2));
        fan.complete(1, Some(7));
        fan.complete(0, Some(3));
        assert_eq!(
            fan.wait(Duration::from_millis(10)),
            Some(vec![Some(3), Some(7)])
        );

        let slow = Arc::new(FanOut::<u64>::new(1));
        assert_eq!(slow.wait(Duration::from_millis(10)), None);
        assert!(slow.is_cancelled());
    }
}
