//! Row-range sharding of a fact table.
//!
//! A [`ShardedTable`] splits a table's rows into contiguous, disjoint
//! ranges. Each [`Shard`] owns a full encoded bitmap index per column
//! over *its* rows — slice containers, segment summaries, run
//! statistics — plus its own [`Pager`] standing in for the shard's heap
//! pages. Because every shard is built over the **same table-wide
//! [`Mapping`]** per column, a retrieval expression minimized once (on
//! any shard) is valid on all of them: codes and don't-care sets are
//! identical, only the slice contents differ. That is the service's
//! compile-once / evaluate-everywhere contract.
//!
//! Shard results are shard-relative bitmaps; [`ShardedTable::merge`]
//! writes each one back at the shard's global row offset with
//! [`BitVec::or_shifted`]. Shard boundaries are *not* rounded to word
//! multiples, so the unaligned merge path is exercised by construction.

use crate::error::ServiceError;
use ebi_bitvec::BitVec;
use ebi_boolean::DnfExpr;
use ebi_core::index::{BuildOptions, EncodedBitmapIndex};
use ebi_core::{CoreError, Mapping, RowOrder};
use ebi_obs::{CostCounters, IndexLayout};
use ebi_storage::{BufferPool, Cell, PageId, Pager};

/// One input column: a name plus its cell values for every row.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name, used in queries (`name=3`, `name IN 1,2`).
    pub name: String,
    /// Cell per row; all columns of a table must have equal length.
    pub cells: Vec<Cell>,
}

impl ColumnSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, cells: Vec<Cell>) -> Self {
        Self {
            name: name.to_string(),
            cells,
        }
    }
}

/// Build-time knobs for [`ShardedTable::build`].
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Number of row-range shards (clamped to `1..=rows`).
    pub shards: usize,
    /// Physical row order per shard, cycled by shard id; empty means
    /// every shard keeps original order. Each shard sorts its own
    /// slice independently, so a table can be partially reordered.
    pub row_orders: Vec<RowOrder>,
    /// Heap rows represented by one pager page (fetch granularity).
    pub rows_per_page: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            shards: 1,
            row_orders: Vec::new(),
            rows_per_page: 512,
        }
    }
}

/// One compiled clause: a column and its minimized retrieval
/// expression, valid on every shard (shared mapping).
#[derive(Debug, Clone)]
pub struct CompiledClause {
    /// Column position in the table's column list.
    pub column: usize,
    /// Minimized DNF over the column's bit-slices.
    pub expr: DnfExpr,
    /// The expression in the paper's notation, for reports.
    pub rendered: String,
}

/// A query compiled once against the table-wide mappings: a
/// disjunction of conjunctions of [`CompiledClause`]s.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Outer OR of inner ANDs.
    pub disjuncts: Vec<Vec<CompiledClause>>,
}

impl CompiledQuery {
    /// Every clause expression in the paper's notation, in evaluation
    /// order (for `QueryReport::expressions`).
    #[must_use]
    pub fn rendered(&self) -> Vec<String> {
        self.disjuncts
            .iter()
            .flat_map(|d| d.iter().map(|c| c.rendered.clone()))
            .collect()
    }
}

/// A predicate on one column, in value (not code) space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `col = v`.
    Eq(u64),
    /// `col IN vs`.
    In(Vec<u64>),
    /// `lo <= col <= hi` over the mapped value domain.
    Between(u64, u64),
}

/// One clause of a parsed query: column name plus predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Column name.
    pub column: String,
    /// The predicate.
    pub predicate: Predicate,
}

/// A parsed (not yet compiled) DNF query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfRequest {
    /// Outer OR of inner ANDs; never empty after parsing.
    pub disjuncts: Vec<Vec<Clause>>,
}

/// What one shard reports back from evaluating a compiled query.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard id.
    pub shard: usize,
    /// Shard-relative selection bitmap.
    pub bitmap: BitVec,
    /// Evaluation cost counters for this shard.
    pub cost: CostCounters,
    /// Heap pages read while fetching matching rows.
    pub pages_read: u64,
    /// Buffer-pool (hits, misses, evictions) deltas for the fetch.
    pub buffer: (u64, u64, u64),
    /// Shard-local wall time, nanoseconds.
    pub wall_ns: u64,
}

/// One row-range shard: per-column indexes over `rows` rows starting
/// at global row `lo`, plus the shard's own heap pager.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    lo: usize,
    rows: usize,
    indexes: Vec<EncodedBitmapIndex>,
    pager: Pager,
    rows_per_page: usize,
}

impl Shard {
    /// Shard id (position in the table's shard list).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// First global row id owned by this shard.
    #[must_use]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Rows owned by this shard.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The shard's heap pager (for attaching a buffer pool).
    #[must_use]
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// This shard's index for column position `column`.
    #[must_use]
    pub fn column_index(&self, column: usize) -> &EncodedBitmapIndex {
        &self.indexes[column]
    }

    /// Evaluates a compiled query over this shard's rows. The returned
    /// bitmap is shard-relative (bit 0 = global row `lo`).
    #[must_use]
    pub fn eval(&self, query: &CompiledQuery) -> (BitVec, CostCounters) {
        let mut cost = CostCounters::default();
        let mut result: Option<BitVec> = None;
        for disjunct in &query.disjuncts {
            let mut acc: Option<BitVec> = None;
            for clause in disjunct {
                let r = self.indexes[clause.column].run_dnf(&clause.expr);
                add_stats(&mut cost, &r.stats);
                match &mut acc {
                    None => acc = Some(r.bitmap),
                    Some(a) => {
                        cost.literal_ops += 1;
                        a.and_assign(&r.bitmap);
                    }
                }
            }
            let bitmap = acc.unwrap_or_else(|| BitVec::ones(self.rows));
            match &mut result {
                None => result = Some(bitmap),
                Some(a) => {
                    cost.literal_ops += 1;
                    a.or_assign(&bitmap);
                }
            }
        }
        (result.unwrap_or_else(|| BitVec::zeros(self.rows)), cost)
    }

    /// Post-pruning kernel-work estimate (words) for evaluating `query`
    /// here — the same number the parallel engine's auto-serialise
    /// heuristic uses, summed over every clause.
    #[must_use]
    pub fn estimated_work_words(&self, query: &CompiledQuery) -> u64 {
        self.indexes.first().map_or(0, |_| {
            query
                .disjuncts
                .iter()
                .flatten()
                .map(|c| self.indexes[c.column].estimated_work_words(&c.expr))
                .sum()
        })
    }

    /// Reads every heap page holding a matching row, through `pool`
    /// when given, else straight from the shard's pager. Returns the
    /// number of pages touched (ascending row order deduplicates
    /// consecutive same-page hits, like the warehouse executor).
    #[must_use]
    pub fn fetch_matches(&self, bitmap: &BitVec, pool: Option<&BufferPool<'_>>) -> u64 {
        if self.rows == 0 {
            return 0;
        }
        let per = self.rows_per_page.max(1) as u64;
        let mut pages = 0u64;
        let mut last: Option<u64> = None;
        for row in bitmap.iter_ones() {
            let page = row as u64 / per;
            if last == Some(page) {
                continue;
            }
            last = Some(page);
            pages += 1;
            let _ = match pool {
                Some(p) => p.read_page(PageId(page)),
                None => self.pager.read_page(PageId(page)),
            };
        }
        pages
    }

    /// Per-column physical layout of this shard, labelled
    /// `column#shard` for the report's per-index breakdown.
    #[must_use]
    pub fn layouts(&self, columns: &[String]) -> Vec<IndexLayout> {
        self.indexes
            .iter()
            .zip(columns)
            .map(|(idx, name)| {
                let rs = idx.run_stats();
                IndexLayout {
                    index: format!("{name}#{}", self.id),
                    row_order: idx.row_order().as_str(),
                    slice_runs: rs.runs,
                    slice_longest_run: rs.longest_run,
                    slice_fill_words: rs.fill_words,
                    slice_total_words: rs.total_words,
                }
            })
            .collect()
    }
}

/// A fact table partitioned into row-range shards that share one
/// mapping per column.
#[derive(Debug)]
pub struct ShardedTable {
    columns: Vec<String>,
    mappings: Vec<Mapping>,
    rows: usize,
    shards: Vec<Shard>,
}

impl ShardedTable {
    /// Partitions `columns` into `opts.shards` contiguous row ranges
    /// and builds one index per (shard, column) over a shared
    /// table-wide mapping per column.
    ///
    /// # Errors
    ///
    /// Fails when no columns are given, column lengths disagree, or an
    /// index build fails.
    pub fn build(columns: Vec<ColumnSpec>, opts: &TableOptions) -> Result<Self, ServiceError> {
        if columns.is_empty() {
            return Err(ServiceError::Build(
                "table needs at least one column".into(),
            ));
        }
        let rows = columns[0].cells.len();
        if columns.iter().any(|c| c.cells.len() != rows) {
            return Err(ServiceError::Build(format!(
                "column lengths disagree: {:?}",
                columns
                    .iter()
                    .map(|c| (c.name.as_str(), c.cells.len()))
                    .collect::<Vec<_>>()
            )));
        }
        // Table-wide mapping per column: first-seen order over the
        // whole column, so every shard assigns identical codes.
        let mut mappings = Vec::with_capacity(columns.len());
        for col in &columns {
            let mut seen = std::collections::HashSet::new();
            let first_seen: Vec<u64> = col
                .cells
                .iter()
                .filter_map(Cell::value)
                .filter(|v| seen.insert(*v))
                .collect();
            mappings.push(Mapping::from_values(&first_seen).map_err(|e| core_err(&e))?);
        }
        let n = opts.shards.clamp(1, rows.max(1));
        let base = rows / n;
        let rem = rows % n;
        let mut shards = Vec::with_capacity(n);
        let mut lo = 0usize;
        for id in 0..n {
            // First `rem` shards take one extra row, so boundaries land
            // on arbitrary (word-unaligned) offsets.
            let len = base + usize::from(id < rem);
            let order = if opts.row_orders.is_empty() {
                RowOrder::Original
            } else {
                opts.row_orders[id % opts.row_orders.len()]
            };
            let mut indexes = Vec::with_capacity(columns.len());
            for (c, col) in columns.iter().enumerate() {
                let idx = EncodedBitmapIndex::build_with(
                    col.cells[lo..lo + len].iter().copied(),
                    BuildOptions {
                        mapping: Some(mappings[c].clone()),
                        row_order: order,
                        ..BuildOptions::default()
                    },
                )
                .map_err(|e| core_err(&e))?;
                indexes.push(idx);
            }
            let rows_per_page = opts.rows_per_page.max(1);
            let pager = Pager::with_page_size(64);
            let pages = (len.max(1)).div_ceil(rows_per_page) as u64;
            pager.allocate(pages);
            for p in 0..pages {
                // A token heap payload so fetches read real pages.
                pager
                    .write_page(PageId(p), &[(p % 251) as u8; 64])
                    .map_err(|e| ServiceError::Build(e.to_string()))?;
            }
            pager.reset_stats();
            shards.push(Shard {
                id,
                lo,
                rows: len,
                indexes,
                pager,
                rows_per_page,
            });
            lo += len;
        }
        Ok(Self {
            columns: columns.into_iter().map(|c| c.name).collect(),
            mappings,
            rows,
            shards,
        })
    }

    /// Total rows across all shards.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names, in registration order.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The shards, in row order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shared mapping for column position `column`.
    #[must_use]
    pub fn mapping(&self, column: usize) -> &Mapping {
        &self.mappings[column]
    }

    /// Compiles a parsed query once against the shared mappings: each
    /// clause's IN-list is minimized (Quine–McCluskey with don't-cares)
    /// on shard 0's index, and the resulting expression is valid on
    /// every shard.
    ///
    /// # Errors
    ///
    /// Fails on an unknown column or an empty query.
    pub fn compile(&self, request: &DnfRequest) -> Result<CompiledQuery, ServiceError> {
        if request.disjuncts.is_empty() || request.disjuncts.iter().any(Vec::is_empty) {
            return Err(ServiceError::Parse("empty query".into()));
        }
        let mut disjuncts = Vec::with_capacity(request.disjuncts.len());
        for d in &request.disjuncts {
            let mut clauses = Vec::with_capacity(d.len());
            for clause in d {
                let column = self
                    .columns
                    .iter()
                    .position(|c| *c == clause.column)
                    .ok_or_else(|| {
                        ServiceError::Parse(format!("unknown column {:?}", clause.column))
                    })?;
                let values: Vec<u64> = match &clause.predicate {
                    Predicate::Eq(v) => vec![*v],
                    Predicate::In(vs) => vs.clone(),
                    Predicate::Between(lo, hi) => self.mappings[column]
                        .iter()
                        .map(|(v, _)| v)
                        .filter(|v| v >= lo && v <= hi)
                        .collect(),
                };
                let expr = self.shards[0].indexes[column].explain_in_list(&values);
                let rendered = format!("{}: {expr}", clause.column);
                clauses.push(CompiledClause {
                    column,
                    expr,
                    rendered,
                });
            }
            disjuncts.push(clauses);
        }
        Ok(CompiledQuery { disjuncts })
    }

    /// Merges shard-relative bitmaps back into one global bitmap: each
    /// part is OR-written at its shard's row offset. Parts may arrive
    /// in any order; missing parts (cancelled shards) leave zeros.
    #[must_use]
    pub fn merge<'a>(&self, parts: impl IntoIterator<Item = (usize, &'a BitVec)>) -> BitVec {
        let mut global = BitVec::zeros(self.rows);
        for (shard, bitmap) in parts {
            global.or_shifted(bitmap, self.shards[shard].lo);
        }
        global
    }

    /// Serial whole-table evaluation: every shard in row order on the
    /// calling thread, merged. This is the library reference path the
    /// served results must stay bit-identical to (and the serial
    /// fallback when the work estimate says fan-out is not worth it).
    #[must_use]
    pub fn eval_local(&self, query: &CompiledQuery) -> (BitVec, CostCounters) {
        let mut cost = CostCounters::default();
        let parts: Vec<(usize, BitVec)> = self
            .shards
            .iter()
            .map(|s| {
                let (bitmap, c) = s.eval(query);
                merge_cost(&mut cost, &c);
                (s.id, bitmap)
            })
            .collect();
        (self.merge(parts.iter().map(|(i, b)| (*i, b))), cost)
    }

    /// Applies query-time options (storage policy, summaries, …) to
    /// every shard index. Results stay bit-identical across every
    /// combination — the core contract sharding must preserve.
    pub fn set_query_options(&mut self, options: ebi_core::index::QueryOptions) {
        for shard in &mut self.shards {
            for index in &mut shard.indexes {
                index.set_query_options(options);
            }
        }
    }

    /// Sum of every shard's post-pruning work estimate for `query`.
    #[must_use]
    pub fn estimated_work_words(&self, query: &CompiledQuery) -> u64 {
        self.shards
            .iter()
            .map(|s| s.estimated_work_words(query))
            .sum()
    }
}

fn core_err(e: &CoreError) -> ServiceError {
    ServiceError::Build(e.to_string())
}

/// Folds one clause's [`ebi_core::QueryStats`] into cost counters
/// (mirrors the warehouse executor's accounting, so `vectors_accessed`
/// stays the paper's number).
fn add_stats(cost: &mut CostCounters, s: &ebi_core::QueryStats) {
    cost.vectors_accessed += s.vectors_accessed as u64;
    cost.literal_ops += s.literal_ops as u64;
    cost.cube_evals += s.cube_evals as u64;
    cost.words_scanned += s.words_scanned;
    cost.bytes_touched += s.bytes_touched;
    cost.compressed_chunks_skipped += s.compressed_chunks_skipped;
    cost.segments_pruned += s.segments_pruned;
    cost.segments_short_circuited += s.segments_short_circuited;
}

/// Adds one shard's counters into the query totals.
pub(crate) fn merge_cost(total: &mut CostCounters, part: &CostCounters) {
    total.vectors_accessed += part.vectors_accessed;
    total.literal_ops += part.literal_ops;
    total.cube_evals += part.cube_evals;
    total.words_scanned += part.words_scanned;
    total.bytes_touched += part.bytes_touched;
    total.compressed_chunks_skipped += part.compressed_chunks_skipped;
    total.segments_pruned += part.segments_pruned;
    total.segments_short_circuited += part.segments_short_circuited;
}
