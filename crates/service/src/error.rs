//! Service error type.

use std::fmt;

/// Errors surfaced by the service layer.
#[derive(Debug)]
pub enum ServiceError {
    /// Table or index construction failed.
    Build(String),
    /// A query failed to parse or compile.
    Parse(String),
    /// A listener could not be bound or served.
    Io(std::io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Build(msg) => write!(f, "build error: {msg}"),
            Self::Parse(msg) => write!(f, "parse error: {msg}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
