//! Sharded concurrent query service over encoded bitmap indexes.
//!
//! The paper's engine (`ebi-core`) answers one query on one thread.
//! This crate turns it into a *serving* layer, the deployment shape the
//! warehouse literature assumes:
//!
//! * [`shard`] — a fact table partitioned into contiguous row-range
//!   [`Shard`]s, each owning per-column encoded bitmap indexes and its
//!   own heap pager. All shards share one table-wide [`Mapping`] per
//!   column, so a query is **compiled once** (Quine–McCluskey
//!   minimization over the shared code space) and evaluated everywhere;
//!   shard-relative result bitmaps are merged back at global row
//!   offsets with `BitVec::or_shifted`.
//! * [`pool`] — a work-stealing [`WorkerPool`] for shard fan-out, an
//!   [`AdmissionGate`] bounding in-flight queries (backpressure:
//!   `BUSY` / HTTP 429), and a [`FanOut`] latch with per-request
//!   deadlines.
//! * [`protocol`] / [`http`] — two frontends over one grammar: a TCP
//!   line protocol (`COUNT a=1 AND b IN 2,3`) and a hand-rolled
//!   HTTP/1.1 + JSON layer (`GET /query?q=…`, `GET /metrics`). No
//!   async runtime: blocking threads, scoped borrows, vendored deps
//!   only.
//! * [`server`] — admission → compile → fan-out → merge → report.
//!   Every request produces an `ebi-obs` [`QueryReport`] with per-shard
//!   `eval.worker` spans; graceful shutdown drains admitted queries
//!   before the listeners close.
//!
//! Fan-out reuses the core engine's auto-serialise heuristic: a query
//! whose post-pruning work estimate is below
//! [`ebi_core::parallel::MIN_PARALLEL_WORK_WORDS`] runs serially on the
//! connection thread, because dispatching tiny bitmap slices costs more
//! than scanning them.
//!
//! [`Shard`]: shard::Shard
//! [`Mapping`]: ebi_core::Mapping
//! [`WorkerPool`]: pool::WorkerPool
//! [`AdmissionGate`]: pool::AdmissionGate
//! [`FanOut`]: pool::FanOut
//! [`QueryReport`]: ebi_obs::QueryReport

pub mod error;
pub mod http;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod shard;

pub use error::ServiceError;
pub use pool::{AdmissionGate, FanOut, Refusal, WorkerPool};
pub use protocol::{parse_dnf, parse_request, Request};
pub use server::{eval_shard, run, Answer, ServiceConfig, ServiceHandle, ServiceSummary};
pub use shard::{
    Clause, ColumnSpec, CompiledClause, CompiledQuery, DnfRequest, Predicate, Shard, ShardOutcome,
    ShardedTable, TableOptions,
};
