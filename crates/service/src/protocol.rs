//! The line-oriented query grammar shared by both frontends.
//!
//! One request per line:
//!
//! ```text
//! PING
//! STATS
//! SHUTDOWN
//! TRACES [n]
//! SLOW [n]
//! COUNT  <dnf>
//! QUERY  <dnf> [LIMIT k]
//! EXPLAIN <dnf>
//! ```
//!
//! Any line may carry a leading `TRACEPARENT <value>` field — the
//! line-protocol equivalent of the HTTP `traceparent` header — which
//! [`split_traceparent`] strips before verb parsing; the service
//! adopts the carried trace id and echoes it in the answer.
//! `TRACES` and `SLOW` page the retained-trace ring / slow-query log
//! as JSON lines (newest-last, optionally capped at `n`), terminated
//! by a lone `.` line.
//!
//! where `<dnf>` is `clause AND clause ... OR clause AND ...` and a
//! clause is one of
//!
//! ```text
//! col=5            point selection
//! col IN 1,2,3     IN-list
//! col BETWEEN 2 7  value range (inclusive)
//! ```
//!
//! Keywords are case-insensitive; column names are case-sensitive.
//! The HTTP frontend reuses exactly this grammar for the `q=`
//! parameter, so a query pasted from `netcat` works in `curl`
//! unchanged (URL-encoding aside).

use crate::shard::{Clause, DnfRequest, Predicate};

/// A parsed frontend request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered `PONG` without admission.
    Ping,
    /// Service statistics (no admission).
    Stats,
    /// Begin graceful shutdown.
    Shutdown,
    /// Retained recent traces as JSON lines, capped at the count.
    Traces(usize),
    /// Retained slow traces as JSON lines, capped at the count.
    Slow(usize),
    /// COUNT(*) of a selection.
    Count(DnfRequest),
    /// Selection returning matches and up to `limit` row ids.
    Query(DnfRequest, usize),
    /// Selection returning the `EXPLAIN ANALYZE` rendering.
    Explain(DnfRequest),
}

/// Default and maximum row-id list lengths for `QUERY`.
pub const DEFAULT_LIMIT: usize = 20;
/// Hard cap on `LIMIT`, to bound response sizes.
pub const MAX_LIMIT: usize = 10_000;

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for empty input, unknown verbs,
/// or a malformed query body.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "" => Err("empty request".into()),
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "TRACES" => Ok(Request::Traces(parse_count(rest)?)),
        "SLOW" => Ok(Request::Slow(parse_count(rest)?)),
        "COUNT" => Ok(Request::Count(parse_dnf(rest)?)),
        "EXPLAIN" => Ok(Request::Explain(parse_dnf(rest)?)),
        "QUERY" => {
            let (body, limit) = split_limit(rest)?;
            Ok(Request::Query(parse_dnf(body)?, limit))
        }
        other => Err(format!(
            "unknown verb {other:?} (expected PING, STATS, SHUTDOWN, TRACES, SLOW, COUNT, QUERY or EXPLAIN)"
        )),
    }
}

/// Splits a leading `TRACEPARENT <value>` field off a request line,
/// returning the raw value (unvalidated — the server decides whether
/// to adopt or re-mint) and the remaining request text.
#[must_use]
pub fn split_traceparent(line: &str) -> (Option<&str>, &str) {
    let line = line.trim();
    let Some((head, rest)) = line.split_once(char::is_whitespace) else {
        return (None, line);
    };
    if !head.eq_ignore_ascii_case("TRACEPARENT") {
        return (None, line);
    }
    let rest = rest.trim();
    match rest.split_once(char::is_whitespace) {
        Some((value, request)) => (Some(value), request.trim()),
        None => (Some(rest), ""),
    }
}

/// Parses the optional count argument of `TRACES` / `SLOW`
/// (`usize::MAX` when absent = everything retained).
fn parse_count(rest: &str) -> Result<usize, String> {
    if rest.is_empty() {
        return Ok(usize::MAX);
    }
    rest.parse()
        .map_err(|_| format!("bad count {rest:?} (expected an unsigned integer)"))
}

/// Splits a trailing `LIMIT k` off a QUERY body.
fn split_limit(body: &str) -> Result<(&str, usize), String> {
    let tokens: Vec<&str> = body.split_whitespace().collect();
    if tokens.len() >= 2 && tokens[tokens.len() - 2].eq_ignore_ascii_case("LIMIT") {
        let k: usize = tokens[tokens.len() - 1]
            .parse()
            .map_err(|_| format!("bad LIMIT {:?}", tokens[tokens.len() - 1]))?;
        let cut = body
            .to_ascii_uppercase()
            .rfind(" LIMIT ")
            .ok_or("bad LIMIT placement")?;
        Ok((&body[..cut], k.min(MAX_LIMIT)))
    } else {
        Ok((body, DEFAULT_LIMIT))
    }
}

/// Parses the DNF body of a query.
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_dnf(text: &str) -> Result<DnfRequest, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.is_empty() {
        return Err("empty query".into());
    }
    let mut disjuncts: Vec<Vec<Clause>> = Vec::new();
    let mut current: Vec<Clause> = Vec::new();
    let mut i = 0usize;
    loop {
        let (clause, next) = parse_clause(&tokens, i)?;
        current.push(clause);
        i = next;
        match tokens.get(i).map(|t| t.to_ascii_uppercase()) {
            None => break,
            Some(ref op) if op == "AND" => i += 1,
            Some(ref op) if op == "OR" => {
                disjuncts.push(std::mem::take(&mut current));
                i += 1;
            }
            Some(other) => return Err(format!("expected AND or OR, got {other:?}")),
        }
        if i >= tokens.len() {
            return Err("query ends after a connective".into());
        }
    }
    disjuncts.push(current);
    Ok(DnfRequest { disjuncts })
}

/// Parses one clause starting at token `i`; returns it and the index
/// of the first unconsumed token.
fn parse_clause(tokens: &[&str], i: usize) -> Result<(Clause, usize), String> {
    let head = tokens
        .get(i)
        .ok_or_else(|| "expected a clause".to_string())?;
    if let Some((col, val)) = head.split_once('=') {
        if col.is_empty() {
            return Err(format!("missing column in {head:?}"));
        }
        let v = parse_num(val)?;
        return Ok((
            Clause {
                column: col.to_string(),
                predicate: Predicate::Eq(v),
            },
            i + 1,
        ));
    }
    let op = tokens
        .get(i + 1)
        .ok_or_else(|| format!("expected IN or BETWEEN after {head:?}"))?;
    match op.to_ascii_uppercase().as_str() {
        "IN" => {
            let list = tokens
                .get(i + 2)
                .ok_or_else(|| format!("expected a value list after {head} IN"))?;
            let values = list
                .split(',')
                .map(parse_num)
                .collect::<Result<Vec<u64>, String>>()?;
            if values.is_empty() {
                return Err(format!("empty IN list for {head:?}"));
            }
            Ok((
                Clause {
                    column: (*head).to_string(),
                    predicate: Predicate::In(values),
                },
                i + 3,
            ))
        }
        "BETWEEN" => {
            let lo = parse_num(
                tokens
                    .get(i + 2)
                    .ok_or_else(|| format!("expected bounds after {head} BETWEEN"))?,
            )?;
            let hi =
                parse_num(tokens.get(i + 3).ok_or_else(|| {
                    format!("expected an upper bound after {head} BETWEEN {lo}")
                })?)?;
            if lo > hi {
                return Err(format!("BETWEEN bounds reversed: {lo} > {hi}"));
            }
            Ok((
                Clause {
                    column: (*head).to_string(),
                    predicate: Predicate::Between(lo, hi),
                },
                i + 4,
            ))
        }
        other => Err(format!(
            "expected `col=v`, `col IN a,b` or `col BETWEEN lo hi`, got {head} {other}"
        )),
    }
}

fn parse_num(tok: &str) -> Result<u64, String> {
    tok.parse::<u64>()
        .map_err(|_| format!("expected an unsigned integer, got {tok:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_verb() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request(" STATS ").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        let q = parse_request("COUNT a=1").unwrap();
        match q {
            Request::Count(d) => assert_eq!(d.disjuncts.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dnf_with_all_predicate_shapes() {
        let d = parse_dnf("a=1 AND b IN 2,3 OR c BETWEEN 4 9").unwrap();
        assert_eq!(d.disjuncts.len(), 2);
        assert_eq!(d.disjuncts[0].len(), 2);
        assert_eq!(d.disjuncts[0][0].predicate, Predicate::Eq(1));
        assert_eq!(d.disjuncts[0][1].predicate, Predicate::In(vec![2, 3]));
        assert_eq!(d.disjuncts[1][0].predicate, Predicate::Between(4, 9));
    }

    #[test]
    fn query_limit_parses_and_caps() {
        match parse_request("QUERY a=1 LIMIT 5").unwrap() {
            Request::Query(_, 5) => {}
            other => panic!("{other:?}"),
        }
        match parse_request("QUERY a=1").unwrap() {
            Request::Query(_, l) => assert_eq!(l, DEFAULT_LIMIT),
            other => panic!("{other:?}"),
        }
        match parse_request("QUERY a=1 LIMIT 999999999").unwrap() {
            Request::Query(_, l) => assert_eq!(l, MAX_LIMIT),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn traces_and_slow_take_an_optional_count() {
        assert_eq!(parse_request("TRACES").unwrap(), Request::Traces(usize::MAX));
        assert_eq!(parse_request("traces 10").unwrap(), Request::Traces(10));
        assert_eq!(parse_request("SLOW 3").unwrap(), Request::Slow(3));
        assert_eq!(parse_request("SLOW").unwrap(), Request::Slow(usize::MAX));
        assert!(parse_request("TRACES many").is_err());
    }

    #[test]
    fn traceparent_field_strips_off_any_verb() {
        let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let line = format!("TRACEPARENT {tp} COUNT a=1");
        let (got, rest) = split_traceparent(&line);
        assert_eq!(got, Some(tp));
        assert_eq!(rest, "COUNT a=1");
        let (got, rest) = split_traceparent("traceparent xyz PING");
        assert_eq!(got, Some("xyz"));
        assert_eq!(rest, "PING");
        let (got, rest) = split_traceparent("COUNT a=1");
        assert_eq!(got, None);
        assert_eq!(rest, "COUNT a=1");
        let (got, rest) = split_traceparent("TRACEPARENT onlyvalue");
        assert_eq!(got, Some("onlyvalue"));
        assert_eq!(rest, "");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB a=1").is_err());
        assert!(parse_dnf("a=1 AND").is_err());
        assert!(parse_dnf("a=x").is_err());
        assert!(parse_dnf("a BETWEEN 9 1").is_err());
        assert!(parse_dnf("a IN").is_err());
        assert!(parse_dnf("=3").is_err());
        assert!(parse_dnf("a=1 XOR b=2").is_err());
    }
}
