//! The common selection-index interface.

use ebi_core::index::QueryResult;
use ebi_core::{EncodedBitmapIndex, QueryStats};

/// A secondary index answering value selections on one attribute with a
/// row bitmap.
///
/// `vectors_accessed` in the returned [`QueryStats`] counts the index's
/// *logical read units* — bitmap vectors for bitmap-family indexes,
/// nodes (= pages) for tree-family indexes — matching how the paper
/// charges each structure. [`SelectionIndex::query_pages`] converts a
/// query's stats to page reads under that index's own storage layout.
pub trait SelectionIndex {
    /// Index-family name for reports.
    fn name(&self) -> &'static str;

    /// Rows covered (including deleted slots).
    fn rows(&self) -> usize;

    /// `A = value`. Unknown values match nothing.
    fn eq(&self, value: u64) -> QueryResult;

    /// `A IN values`.
    fn in_list(&self, values: &[u64]) -> QueryResult;

    /// `lo <= A <= hi` over value ids.
    fn range(&self, lo: u64, hi: u64) -> QueryResult;

    /// Number of bitmap vectors held (0 for non-bitmap indexes).
    fn bitmap_vector_count(&self) -> usize;

    /// Total storage footprint in bytes.
    fn storage_bytes(&self) -> usize;

    /// Disk pages read by a query with `stats`, under this index's
    /// layout. Default: bitmap-vector model (each accessed vector spans
    /// `ceil(rows/8/page_size)` pages).
    fn query_pages(&self, stats: &QueryStats, page_size: usize) -> u64 {
        stats.page_reads(self.rows(), page_size)
    }

    /// Aggregate run statistics over this index's bitmap vectors, when
    /// the index family tracks them. Default: `None` (tree-family and
    /// other non-bitmap indexes have no slice runs to report).
    fn run_stats(&self) -> Option<ebi_bitvec::RunStats> {
        None
    }

    /// Physical row order the index was built with. Non-reordering
    /// index families always answer `"original"`.
    fn row_order(&self) -> &'static str {
        "original"
    }
}

impl SelectionIndex for EncodedBitmapIndex {
    fn name(&self) -> &'static str {
        "encoded-bitmap"
    }

    fn rows(&self) -> usize {
        self.rows()
    }

    fn eq(&self, value: u64) -> QueryResult {
        EncodedBitmapIndex::eq(self, value).expect("eq is infallible")
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        EncodedBitmapIndex::in_list(self, values).expect("in_list is infallible")
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        EncodedBitmapIndex::range(self, lo, hi).expect("range is infallible")
    }

    fn bitmap_vector_count(&self) -> usize {
        self.bitmap_vector_count()
    }

    fn storage_bytes(&self) -> usize {
        self.storage_bytes()
    }

    fn run_stats(&self) -> Option<ebi_bitvec::RunStats> {
        Some(EncodedBitmapIndex::run_stats(self))
    }

    fn row_order(&self) -> &'static str {
        EncodedBitmapIndex::row_order(self).as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebi_storage::Cell;

    #[test]
    fn encoded_index_implements_the_trait() {
        let idx = EncodedBitmapIndex::build([0u64, 1, 2, 1].map(Cell::Value)).unwrap();
        let dyn_idx: &dyn SelectionIndex = &idx;
        assert_eq!(dyn_idx.name(), "encoded-bitmap");
        assert_eq!(dyn_idx.rows(), 4);
        assert_eq!(dyn_idx.eq(1).bitmap.to_positions(), vec![1, 3]);
        assert_eq!(dyn_idx.in_list(&[0, 2]).bitmap.to_positions(), vec![0, 2]);
        assert_eq!(dyn_idx.range(0, 1).bitmap.count_ones(), 3);
        assert!(dyn_idx.storage_bytes() > 0);
        assert_eq!(dyn_idx.bitmap_vector_count(), 2);
    }

    #[test]
    fn default_page_model_charges_per_vector() {
        let cells: Vec<Cell> = (0..100_000u64).map(|i| Cell::Value(i % 8)).collect();
        let idx = EncodedBitmapIndex::build(cells).unwrap();
        let r = SelectionIndex::eq(&idx, 3);
        // 3 slices read; each spans ceil(100000/8/4096) = 4 pages.
        assert_eq!(idx.query_pages(&r.stats, 4096), 3 * 4);
    }
}
