//! Baseline warehouse indexes — every comparator the paper discusses.
//!
//! | type | paper section | idea |
//! |---|---|---|
//! | [`SimpleBitmapIndex`] | §2.1 | one bitmap vector per distinct value (O'Neil, Model 204) |
//! | [`BitSlicedIndex`] | §4 | bit slices of the raw numeric value (O'Neil & Quass), with their direct range-evaluation algorithm |
//! | [`ProjectionIndex`] | §4 | the column materialised in tuple-id order; queries scan |
//! | [`ValueListIndex`] | §4 | B+tree of RID lists (the classic value-list index) |
//! | [`DynamicBitmapIndex`] | §4 | Sarawagi's dynamic bitmaps — an EBI with the trivial continuous-integer encoding |
//! | [`RangeBasedBitmapIndex`] | §4 | Wu & Yu equal-population range bitmaps for skewed high-cardinality attributes |
//! | [`HybridBTreeBitmapIndex`] | §3.2/§4 | B-tree over values whose leaves hold bitmaps, degrading to RID lists when sparse |
//! | [`CompressedEncodedIndex`] | §2.1/§4 (extension) | the EBI with WAH-compressed slices — skew compresses, uniform does not |
//! | [`MultiComponentIndex`] | §4 | non-binary-base bit slicing (O'Neil & Quass): base b interpolates between bit-sliced (b=2) and simple (b≥m) |
//!
//! All of them — and [`ebi_core::EncodedBitmapIndex`] itself — implement
//! [`SelectionIndex`], so the executor and every experiment can swap
//! index types freely and compare the paper's cost metrics apples to
//! apples.

mod bit_sliced;
mod compressed;
mod dynamic;
mod hybrid;
mod multi_component;
mod projection;
mod range_based;
mod simple;
mod traits;
mod value_list;

pub use bit_sliced::BitSlicedIndex;
pub use compressed::CompressedEncodedIndex;
pub use dynamic::DynamicBitmapIndex;
pub use hybrid::{HybridBTreeBitmapIndex, HybridLeaf};
pub use multi_component::MultiComponentIndex;
pub use projection::ProjectionIndex;
pub use range_based::RangeBasedBitmapIndex;
pub use simple::SimpleBitmapIndex;
pub use traits::SelectionIndex;
pub use value_list::ValueListIndex;
