//! The simple bitmap index (§2.1) — one vector per distinct value.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_boolean::AccessTracker;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;
use std::collections::BTreeMap;

/// O'Neil's simple bitmap index: bitmap vector `B_v` has bit `j` set iff
/// tuple `j` carries value `v`.
///
/// ```
/// use ebi_baselines::{SelectionIndex, SimpleBitmapIndex};
/// use ebi_storage::Cell;
///
/// let idx = SimpleBitmapIndex::build([0u64, 1, 2, 1].map(Cell::Value));
/// assert_eq!(idx.bitmap_vector_count(), 3, "one vector per value");
/// let r = idx.in_list(&[0, 1]);
/// assert_eq!(r.bitmap.to_positions(), vec![0, 1, 3]);
/// assert_eq!(r.stats.vectors_accessed, 2, "c_s = δ");
/// ```
///
/// NULL rows set no value bit and are tracked in `B_NULL`; deletions
/// clear the row's value bit and set `B_NotExist` (the *existence* vector
/// whose complement the paper says must always be ANDed in — we charge
/// that read when deletions exist).
#[derive(Debug, Clone)]
pub struct SimpleBitmapIndex {
    vectors: BTreeMap<u64, BitVec>,
    rows: usize,
    b_null: Option<BitVec>,
    b_not_exist: Option<BitVec>,
}

impl SimpleBitmapIndex {
    /// Builds from a column of cells.
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        let cells: Vec<Cell> = cells.into_iter().collect();
        let rows = cells.len();
        let mut vectors: BTreeMap<u64, BitVec> = BTreeMap::new();
        let mut b_null: Option<BitVec> = None;
        for (row, cell) in cells.iter().enumerate() {
            match cell {
                Cell::Value(v) => {
                    vectors
                        .entry(*v)
                        .or_insert_with(|| BitVec::zeros(rows))
                        .set(row, true);
                }
                Cell::Null => {
                    b_null
                        .get_or_insert_with(|| BitVec::zeros(rows))
                        .set(row, true);
                }
            }
        }
        Self {
            vectors,
            rows,
            b_null,
            b_not_exist: None,
        }
    }

    /// Appends one cell (`O(h)` amortised: every vector grows by a bit,
    /// realised lazily as zero-fill).
    pub fn append(&mut self, cell: Cell) {
        let row = self.rows;
        self.rows += 1;
        for v in self.vectors.values_mut() {
            v.grow(self.rows);
        }
        if let Some(b) = &mut self.b_null {
            b.grow(self.rows);
        }
        if let Some(b) = &mut self.b_not_exist {
            b.grow(self.rows);
        }
        match cell {
            Cell::Value(v) => {
                let rows = self.rows;
                self.vectors
                    .entry(v)
                    .or_insert_with(|| BitVec::zeros(rows))
                    .set(row, true);
            }
            Cell::Null => {
                let rows = self.rows;
                self.b_null
                    .get_or_insert_with(|| BitVec::zeros(rows))
                    .set(row, true);
            }
        }
    }

    /// Deletes a row: clears its value bit and marks `B_NotExist`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn delete(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of range");
        for v in self.vectors.values_mut() {
            if v.bit(row) {
                v.set(row, false);
            }
        }
        if let Some(b) = &mut self.b_null {
            b.set(row, false);
        }
        let rows = self.rows;
        self.b_not_exist
            .get_or_insert_with(|| BitVec::zeros(rows))
            .set(row, true);
    }

    /// Distinct indexed values (the attribute's active domain).
    #[must_use]
    pub fn values(&self) -> Vec<u64> {
        self.vectors.keys().copied().collect()
    }

    /// Mean sparsity across value vectors — the paper's `(m-1)/m`.
    #[must_use]
    pub fn mean_sparsity(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors.values().map(BitVec::sparsity).sum::<f64>() / self.vectors.len() as f64
    }

    /// Rows with NULL in this attribute.
    #[must_use]
    pub fn is_null(&self) -> QueryResult {
        let mut tracker = AccessTracker::new();
        let bitmap = match &self.b_null {
            Some(b) => {
                tracker.touch(0);
                b.clone()
            }
            None => BitVec::zeros(self.rows),
        };
        QueryResult {
            bitmap,
            stats: QueryStats::from_tracker(&tracker, "B_NULL".into()),
        }
    }

    fn or_of(&self, values: impl Iterator<Item = u64>) -> QueryResult {
        let mut tracker = AccessTracker::new();
        let mut accessed = 0usize;
        let mut result: Option<BitVec> = None;
        let mut parts: Vec<String> = Vec::new();
        for v in values {
            let Some(bv) = self.vectors.get(&v) else {
                continue;
            };
            accessed += 1;
            tracker.cube_evals += 1;
            parts.push(format!("B[{v}]"));
            match &mut result {
                None => result = Some(bv.clone()),
                Some(r) => {
                    tracker.or_ops += 1;
                    r.or_assign(bv);
                }
            }
        }
        let mut bitmap = result.unwrap_or_else(|| BitVec::zeros(self.rows));
        // The existence vector must always be ANDed in once deletions
        // exist (§2.2) — value bits are already cleared on delete, but we
        // model the paper's cost faithfully by charging the read.
        if let Some(ne) = &self.b_not_exist {
            tracker.literal_ops += 1;
            bitmap.and_not_assign(ne);
            accessed += 1;
            parts.push("B_NotExist'".into());
        }
        let mut stats = QueryStats::from_tracker(&tracker, parts.join(" + "));
        // Distinct vectors here are per-value vectors, not slices: count
        // them directly (c_s = δ).
        stats.vectors_accessed = accessed;
        QueryResult { bitmap, stats }
    }
}

impl SelectionIndex for SimpleBitmapIndex {
    fn name(&self) -> &'static str {
        "simple-bitmap"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.or_of(std::iter::once(value))
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        self.or_of(values.iter().copied())
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        self.or_of(self.vectors.range(lo..=hi).map(|(&v, _)| v))
    }

    fn bitmap_vector_count(&self) -> usize {
        self.vectors.len()
            + usize::from(self.b_null.is_some())
            + usize::from(self.b_not_exist.is_some())
    }

    fn storage_bytes(&self) -> usize {
        self.vectors
            .values()
            .chain(self.b_null.iter())
            .chain(self.b_not_exist.iter())
            .map(BitVec::storage_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> SimpleBitmapIndex {
        SimpleBitmapIndex::build([0u64, 1, 2, 1, 0, 2].map(Cell::Value))
    }

    #[test]
    fn eq_reads_exactly_one_vector() {
        let idx = figure1();
        let r = SelectionIndex::eq(&idx, 0);
        assert_eq!(r.bitmap.to_positions(), vec![0, 4]);
        assert_eq!(r.stats.vectors_accessed, 1, "c_s = 1 for Q1");
    }

    #[test]
    fn in_list_reads_delta_vectors() {
        let idx = figure1();
        let r = idx.in_list(&[0, 1]);
        assert_eq!(r.bitmap.to_positions(), vec![0, 1, 3, 4]);
        assert_eq!(r.stats.vectors_accessed, 2, "c_s = δ = 2 for Q2");
    }

    #[test]
    fn range_covers_value_interval() {
        let idx = figure1();
        let r = idx.range(1, 2);
        assert_eq!(r.bitmap.to_positions(), vec![1, 2, 3, 5]);
        assert_eq!(r.stats.vectors_accessed, 2);
        assert_eq!(idx.range(9, 20).bitmap.count_ones(), 0);
    }

    #[test]
    fn vector_count_is_cardinality() {
        let idx = figure1();
        assert_eq!(idx.bitmap_vector_count(), 3, "m = 3 vectors");
        assert_eq!(idx.values(), vec![0, 1, 2]);
    }

    #[test]
    fn sparsity_approaches_m_minus_1_over_m() {
        let cells: Vec<Cell> = (0..10_000u64).map(|i| Cell::Value(i % 100)).collect();
        let idx = SimpleBitmapIndex::build(cells);
        let s = idx.mean_sparsity();
        assert!((s - 0.99).abs() < 0.001, "sparsity {s} vs (m-1)/m = 0.99");
    }

    #[test]
    fn nulls_never_match_values() {
        let idx = SimpleBitmapIndex::build(vec![Cell::Value(1), Cell::Null, Cell::Value(1)]);
        assert_eq!(
            SelectionIndex::eq(&idx, 1).bitmap.to_positions(),
            vec![0, 2]
        );
        assert_eq!(idx.is_null().bitmap.to_positions(), vec![1]);
    }

    #[test]
    fn delete_hides_rows_and_charges_the_existence_read() {
        let mut idx = figure1();
        idx.delete(0);
        let r = SelectionIndex::eq(&idx, 0);
        assert_eq!(r.bitmap.to_positions(), vec![4]);
        assert_eq!(
            r.stats.vectors_accessed, 2,
            "value vector + existence vector"
        );
        assert!(r.stats.expression.contains("B_NotExist'"));
    }

    #[test]
    fn append_extends_all_vectors() {
        let mut idx = figure1();
        idx.append(Cell::Value(7));
        idx.append(Cell::Null);
        assert_eq!(idx.rows(), 8);
        assert_eq!(SelectionIndex::eq(&idx, 7).bitmap.to_positions(), vec![6]);
        assert_eq!(idx.is_null().bitmap.to_positions(), vec![7]);
        // Old vectors answer at the new length without panicking.
        assert_eq!(
            SelectionIndex::eq(&idx, 0).bitmap.to_positions(),
            vec![0, 4]
        );
    }

    #[test]
    fn unknown_value_is_empty_and_free() {
        let idx = figure1();
        let r = SelectionIndex::eq(&idx, 42);
        assert_eq!(r.bitmap.count_ones(), 0);
        assert_eq!(r.stats.vectors_accessed, 0);
    }
}
