//! The bit-sliced index of O'Neil & Quass (§4), with their direct
//! range-evaluation algorithm.
//!
//! A bit-sliced index stores slice `B_i` = the `i`-th bit of the raw
//! numeric attribute value — exactly an encoded bitmap index whose
//! mapping is the trivially total-order preserving internal
//! representation. Range predicates `lo <= A <= hi` are evaluated
//! slice-by-slice from the MSB down, costing `k` vector reads
//! *independent of the range width* — the property that makes bit
//! slicing "especially good for wide-range searches".

use crate::traits::SelectionIndex;
use ebi_bitvec::builder::SliceFamilyBuilder;
use ebi_bitvec::BitVec;
use ebi_boolean::{qm, AccessTracker};
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;

/// Don't-care enumeration is skipped above this code-space size.
const DC_ENUM_LIMIT: u32 = 12;

/// Bit slices of the raw numeric value.
#[derive(Debug, Clone)]
pub struct BitSlicedIndex {
    slices: Vec<BitVec>,
    rows: usize,
    values: Vec<u64>,
    b_null: Option<BitVec>,
    b_not_exist: Option<BitVec>,
}

impl BitSlicedIndex {
    /// Builds from a numeric column. The width is the bit length of the
    /// largest value (minimum 1).
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        let cells: Vec<Cell> = cells.into_iter().collect();
        let rows = cells.len();
        let max = cells.iter().filter_map(Cell::value).max().unwrap_or(0);
        let width = if max <= 1 { 1 } else { max.ilog2() + 1 };
        let mut fam = SliceFamilyBuilder::new(width as usize);
        let mut b_null: Option<BitVec> = None;
        let mut values: Vec<u64> = Vec::new();
        for (row, cell) in cells.iter().enumerate() {
            match cell {
                Cell::Value(v) => {
                    fam.push_code(*v);
                    values.push(*v);
                }
                Cell::Null => {
                    fam.push_code(0);
                    b_null
                        .get_or_insert_with(|| BitVec::zeros(rows))
                        .set(row, true);
                }
            }
        }
        values.sort_unstable();
        values.dedup();
        Self {
            slices: fam.finish(),
            rows,
            values,
            b_null,
            b_not_exist: None,
        }
    }

    /// Deletes a row (tracked via the existence vector).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn delete(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of range");
        let rows = self.rows;
        self.b_not_exist
            .get_or_insert_with(|| BitVec::zeros(rows))
            .set(row, true);
    }

    /// Slice width `k`.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.slices.len() as u32
    }

    /// O'Neil–Quass evaluation of `A <= c`, touching each slice once.
    fn le_bitmap(&self, c: u64, tracker: &mut AccessTracker) -> BitVec {
        let k = self.slices.len();
        if k < 64 && c >> k != 0 {
            return BitVec::ones(self.rows); // c above every representable value
        }
        let mut lt = BitVec::zeros(self.rows);
        let mut eq = BitVec::ones(self.rows);
        for i in (0..k).rev() {
            tracker.touch(i as u32);
            tracker.literal_ops += 1;
            let slice = &self.slices[i];
            if c >> i & 1 == 1 {
                // values with bit i = 0 here are strictly less.
                lt.or_assign(&eq.and_not(slice));
                eq.and_assign(slice);
            } else {
                eq.and_not_assign(slice);
            }
        }
        lt.or_assign(&eq);
        lt
    }

    /// O'Neil–Quass evaluation of `A >= c`.
    fn ge_bitmap(&self, c: u64, tracker: &mut AccessTracker) -> BitVec {
        let k = self.slices.len();
        if k < 64 && c >> k != 0 {
            return BitVec::zeros(self.rows); // c above every representable value
        }
        let mut gt = BitVec::zeros(self.rows);
        let mut eq = BitVec::ones(self.rows);
        for i in (0..k).rev() {
            tracker.touch(i as u32);
            tracker.literal_ops += 1;
            let slice = &self.slices[i];
            if c >> i & 1 == 0 {
                gt.or_assign(&(&eq & slice));
                eq.and_not_assign(slice);
            } else {
                eq.and_assign(slice);
            }
        }
        gt.or_assign(&eq);
        gt
    }

    fn mask(&self, bitmap: &mut BitVec, tracker: &mut AccessTracker, label: &mut String) {
        let k = self.slices.len() as u32;
        if let Some(bn) = &self.b_null {
            tracker.touch(k);
            tracker.literal_ops += 1;
            bitmap.and_not_assign(bn);
            label.push_str(" · B_NULL'");
        }
        if let Some(ne) = &self.b_not_exist {
            tracker.touch(k + 1);
            tracker.literal_ops += 1;
            bitmap.and_not_assign(ne);
            label.push_str(" · B_NotExist'");
        }
    }
}

impl SelectionIndex for BitSlicedIndex {
    fn name(&self) -> &'static str {
        "bit-sliced"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.in_list(&[value])
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        let k = self.width();
        let codes: Vec<u64> = values
            .iter()
            .copied()
            .filter(|v| self.values.binary_search(v).is_ok())
            .collect();
        // Bit-sliced = EBI with the identity mapping: reduce and evaluate.
        let dc: Vec<u64> = if k <= DC_ENUM_LIMIT {
            (0..(1u64 << k))
                .filter(|c| self.values.binary_search(c).is_err())
                .collect()
        } else {
            Vec::new()
        };
        let expr = qm::minimize(&codes, &dc, k);
        let mut tracker = AccessTracker::new();
        let mut bitmap =
            ebi_boolean::eval_expr_tracked(&expr, &self.slices, self.rows, &mut tracker);
        let mut label = expr.to_string();
        if !expr.is_false() {
            self.mask(&mut bitmap, &mut tracker, &mut label);
        }
        QueryResult {
            bitmap,
            stats: QueryStats::from_tracker(&tracker, label),
        }
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        let mut tracker = AccessTracker::new();
        if lo > hi {
            return QueryResult {
                bitmap: BitVec::zeros(self.rows),
                stats: QueryStats::from_tracker(&tracker, "0".into()),
            };
        }
        let mut bitmap = self.le_bitmap(hi, &mut tracker);
        let ge = self.ge_bitmap(lo, &mut tracker);
        bitmap.and_assign(&ge);
        let mut label = format!("LE({hi}) · GE({lo})");
        self.mask(&mut bitmap, &mut tracker, &mut label);
        QueryResult {
            bitmap,
            stats: QueryStats::from_tracker(&tracker, label),
        }
    }

    fn bitmap_vector_count(&self) -> usize {
        self.slices.len()
            + usize::from(self.b_null.is_some())
            + usize::from(self.b_not_exist.is_some())
    }

    fn storage_bytes(&self) -> usize {
        self.slices
            .iter()
            .chain(self.b_null.iter())
            .chain(self.b_not_exist.iter())
            .map(BitVec::storage_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<u64>, BitSlicedIndex) {
        let column: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        let idx = BitSlicedIndex::build(column.iter().map(|&v| Cell::Value(v)));
        (column, idx)
    }

    #[test]
    fn width_matches_value_magnitude() {
        let (_, idx) = sample();
        assert_eq!(idx.width(), 10, "values < 1000 need 10 slices");
        let small = BitSlicedIndex::build([0u64, 1].map(Cell::Value));
        assert_eq!(small.width(), 1);
    }

    #[test]
    fn range_matches_scan_semantics() {
        let (column, idx) = sample();
        for (lo, hi) in [(0u64, 999u64), (100, 500), (37, 37), (990, 5000), (5, 4)] {
            let r = idx.range(lo, hi);
            let expect: Vec<usize> = column
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v >= lo && v <= hi)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(r.bitmap.to_positions(), expect, "[{lo}, {hi}]");
        }
    }

    #[test]
    fn range_cost_is_k_regardless_of_width() {
        let (_, idx) = sample();
        let narrow = idx.range(100, 110);
        let wide = idx.range(0, 999);
        assert_eq!(narrow.stats.vectors_accessed, 10);
        assert_eq!(
            wide.stats.vectors_accessed, 10,
            "independent of δ — the bit-sliced signature"
        );
    }

    #[test]
    fn eq_reads_all_slices() {
        let (column, idx) = sample();
        let r = SelectionIndex::eq(&idx, column[5]);
        assert!(r.bitmap.bit(5));
        // A naive bit-sliced eq reads all k slices; our reduction path
        // exploits unassigned codes as don't-cares, so it may read fewer.
        assert!(r.stats.vectors_accessed >= 1 && r.stats.vectors_accessed <= 10);
    }

    #[test]
    fn in_list_uses_reduction() {
        // Values 0..8 fully populated: IN {0..3} reduces to one slice.
        let idx = BitSlicedIndex::build((0..64u64).map(|i| Cell::Value(i % 8)));
        let r = idx.in_list(&[0, 1, 2, 3]);
        assert_eq!(r.stats.vectors_accessed, 1, "B2' covers codes 0..4");
        assert_eq!(r.bitmap.count_ones(), 32);
    }

    #[test]
    fn nulls_and_deletes_are_masked() {
        let mut idx = BitSlicedIndex::build(vec![
            Cell::Value(0),
            Cell::Null,
            Cell::Value(5),
            Cell::Value(0),
        ]);
        // NULL row carries placeholder 0 but must not match A = 0.
        assert_eq!(
            SelectionIndex::eq(&idx, 0).bitmap.to_positions(),
            vec![0, 3]
        );
        idx.delete(0);
        assert_eq!(SelectionIndex::eq(&idx, 0).bitmap.to_positions(), vec![3]);
        let r = idx.range(0, 10);
        assert_eq!(r.bitmap.to_positions(), vec![2, 3]);
    }

    #[test]
    fn ge_above_domain_is_empty() {
        let idx = BitSlicedIndex::build([1u64, 2, 3].map(Cell::Value));
        assert_eq!(idx.range(100, 200).bitmap.count_ones(), 0);
    }
}
