//! Wu & Yu's range-based bitmap index (§4).
//!
//! For high-cardinality attributes with skew, the domain is partitioned
//! into buckets of (approximately) equal *population* — computed from
//! the data distribution, not from predicates — and one simple bitmap
//! marks each bucket's rows. A range query ORs the fully covered
//! buckets and *verifies* the rows of partially covered edge buckets
//! against a kept projection of the raw values; the verification work is
//! the price of the coarse buckets, and is reported in the stats.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;

/// Equal-population bucketed bitmaps with candidate verification.
#[derive(Debug, Clone)]
pub struct RangeBasedBitmapIndex {
    /// Bucket upper bounds (inclusive), ascending; bucket `i` covers
    /// `(bounds[i-1], bounds[i]]`.
    bounds: Vec<u64>,
    bitmaps: Vec<BitVec>,
    /// Raw values for verifying edge buckets.
    raw: Vec<Option<u64>>,
    rows: usize,
}

impl RangeBasedBitmapIndex {
    /// Builds with `buckets` equal-population partitions.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I, buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket");
        let cells: Vec<Cell> = cells.into_iter().collect();
        let rows = cells.len();
        let raw: Vec<Option<u64>> = cells.iter().map(Cell::value).collect();
        let mut sorted: Vec<u64> = raw.iter().flatten().copied().collect();
        sorted.sort_unstable();

        // Equal-population bounds: the b-quantiles of the observed data
        // (Wu & Yu balance bucket population under skew).
        let mut bounds: Vec<u64> = Vec::with_capacity(buckets);
        if sorted.is_empty() {
            bounds.push(0);
        } else {
            for b in 1..=buckets {
                let pos = (b * sorted.len()).div_ceil(buckets) - 1;
                bounds.push(sorted[pos.min(sorted.len() - 1)]);
            }
            bounds.dedup();
        }

        let mut bitmaps = vec![BitVec::zeros(rows); bounds.len()];
        for (row, v) in raw.iter().enumerate() {
            if let Some(v) = v {
                let b = bounds.partition_point(|&ub| ub < *v);
                bitmaps[b].set(row, true);
            }
        }
        Self {
            bounds,
            bitmaps,
            raw,
            rows,
        }
    }

    /// Number of buckets actually formed (duplicates in skewed data can
    /// merge bounds).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.bounds.len()
    }

    /// Bucket population counts — the balance Wu & Yu optimise for.
    #[must_use]
    pub fn bucket_populations(&self) -> Vec<usize> {
        self.bitmaps.iter().map(BitVec::count_ones).collect()
    }

    fn bucket_of(&self, v: u64) -> usize {
        self.bounds.partition_point(|&ub| ub < v)
    }

    fn bucket_range(&self, b: usize) -> (u64, u64) {
        let lo = if b == 0 {
            0
        } else {
            self.bounds[b - 1].saturating_add(1)
        };
        (lo, self.bounds[b])
    }
}

impl SelectionIndex for RangeBasedBitmapIndex {
    fn name(&self) -> &'static str {
        "range-based-bitmap"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.range(value, value)
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        // Verify every candidate in the touched buckets.
        let mut touched: Vec<usize> = values.iter().map(|&v| self.bucket_of(v)).collect();
        touched.sort_unstable();
        touched.dedup();
        let mut sorted_vals = values.to_vec();
        sorted_vals.sort_unstable();
        let mut bitmap = BitVec::zeros(self.rows);
        let mut verified = 0usize;
        for &b in &touched {
            if b >= self.bitmaps.len() {
                continue;
            }
            for row in self.bitmaps[b].iter_ones() {
                verified += 1;
                if let Some(v) = self.raw[row] {
                    if sorted_vals.binary_search(&v).is_ok() {
                        bitmap.set(row, true);
                    }
                }
            }
        }
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: touched.len(),
                literal_ops: verified,
                cube_evals: touched.len(),
                expression: format!("buckets{touched:?} + verify({verified})"),
                ..QueryStats::default()
            },
        }
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        if lo > hi {
            return QueryResult {
                bitmap: BitVec::zeros(self.rows),
                stats: QueryStats {
                    vectors_accessed: 0,
                    literal_ops: 0,
                    cube_evals: 0,
                    expression: "0".into(),
                    ..QueryStats::default()
                },
            };
        }
        let first = self.bucket_of(lo);
        let last = self.bucket_of(hi).min(self.bitmaps.len() - 1);
        let mut bitmap = BitVec::zeros(self.rows);
        let mut accessed = 0usize;
        let mut verified = 0usize;
        for b in first..=last {
            accessed += 1;
            let (b_lo, b_hi) = self.bucket_range(b);
            let fully_covered = lo <= b_lo && b_hi <= hi;
            if fully_covered {
                bitmap.or_assign(&self.bitmaps[b]);
            } else {
                // Edge bucket: verify candidates against the projection.
                for row in self.bitmaps[b].iter_ones() {
                    verified += 1;
                    if let Some(v) = self.raw[row] {
                        if v >= lo && v <= hi {
                            bitmap.set(row, true);
                        }
                    }
                }
            }
        }
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: accessed,
                literal_ops: verified,
                cube_evals: accessed,
                expression: format!("buckets[{first}..={last}] + verify({verified})"),
                ..QueryStats::default()
            },
        }
    }

    fn bitmap_vector_count(&self) -> usize {
        self.bitmaps.len()
    }

    fn storage_bytes(&self) -> usize {
        // Bitmaps plus the kept projection for verification.
        self.bitmaps
            .iter()
            .map(BitVec::storage_bytes)
            .sum::<usize>()
            + self.raw.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Zipf-ish skewed column: value v appears ~ 1/v times.
    fn skewed_column(n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut v = 1u64;
        while out.len() < n {
            let reps = (n / (v as usize * 2)).max(1);
            for _ in 0..reps.min(n - out.len()) {
                out.push(v);
            }
            v += 1;
        }
        out
    }

    #[test]
    fn buckets_balance_population_under_skew() {
        let col = skewed_column(10_000);
        let idx = RangeBasedBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)), 8);
        let pops = idx.bucket_populations();
        let total: usize = pops.iter().sum();
        assert_eq!(total, 10_000);
        let max = *pops.iter().max().unwrap();
        let min = *pops.iter().min().unwrap();
        // Equal-population quantiles keep buckets within a small factor
        // even on heavy skew (value 1 is half the data, so the first
        // bucket is one huge-duplicate bucket; tolerate 4x spread).
        assert!(
            max <= min * 6 + total / 4,
            "bucket populations {pops:?} far from balanced"
        );
    }

    #[test]
    fn range_queries_are_exact() {
        let col: Vec<u64> = (0..5000).map(|i| (i * i) % 997).collect();
        let idx = RangeBasedBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)), 10);
        for (lo, hi) in [(0u64, 996u64), (100, 300), (500, 500), (900, 2000)] {
            let r = idx.range(lo, hi);
            let expect: Vec<usize> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v >= lo && v <= hi)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(r.bitmap.to_positions(), expect, "[{lo},{hi}]");
        }
    }

    #[test]
    fn fully_covered_buckets_skip_verification() {
        let col: Vec<u64> = (0..1000).collect();
        let idx = RangeBasedBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)), 10);
        let full = idx.range(0, 999);
        assert_eq!(full.stats.literal_ops, 0, "no candidate checks needed");
        assert_eq!(full.bitmap.count_ones(), 1000);
        let partial = idx.range(50, 60);
        assert!(partial.stats.literal_ops > 0, "edge buckets verified");
    }

    #[test]
    fn eq_and_inlist_verify_candidates() {
        let col = [10u64, 20, 30, 20, 10];
        let idx = RangeBasedBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)), 2);
        assert_eq!(
            SelectionIndex::eq(&idx, 20).bitmap.to_positions(),
            vec![1, 3]
        );
        assert_eq!(idx.in_list(&[10, 30]).bitmap.to_positions(), vec![0, 2, 4]);
        assert_eq!(SelectionIndex::eq(&idx, 99).bitmap.count_ones(), 0);
    }

    #[test]
    fn nulls_land_in_no_bucket() {
        let idx = RangeBasedBitmapIndex::build(vec![Cell::Value(5), Cell::Null, Cell::Value(7)], 2);
        assert_eq!(idx.range(0, 100).bitmap.to_positions(), vec![0, 2]);
    }

    #[test]
    fn inverted_range_is_empty() {
        let idx = RangeBasedBitmapIndex::build([1u64, 2].map(Cell::Value), 2);
        assert_eq!(idx.range(5, 2).bitmap.count_ones(), 0);
    }
}
