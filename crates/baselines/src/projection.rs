//! The projection index of O'Neil & Quass (§4).
//!
//! A projection index materialises the attribute's values in tuple-id
//! order ("horizontal" storage, the paper notes, where the encoded
//! bitmap index stores the same bits "vertically"). Every query scans
//! the whole projection; its cost unit is therefore bytes scanned, not
//! bitmap vectors, and [`SelectionIndex::query_pages`] is overridden
//! accordingly.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;

/// The column in row order, with fixed-width entries.
#[derive(Debug, Clone)]
pub struct ProjectionIndex {
    cells: Vec<Cell>,
    entry_bytes: usize,
    deleted: Vec<bool>,
}

impl ProjectionIndex {
    /// Builds from a column; `entry_bytes` is the fixed entry width used
    /// for the storage model (8 matches our `u64` values).
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I, entry_bytes: usize) -> Self {
        let cells: Vec<Cell> = cells.into_iter().collect();
        let deleted = vec![false; cells.len()];
        Self {
            cells,
            entry_bytes,
            deleted,
        }
    }

    /// Appends one cell.
    pub fn append(&mut self, cell: Cell) {
        self.cells.push(cell);
        self.deleted.push(false);
    }

    /// Tombstones a row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn delete(&mut self, row: usize) {
        self.deleted[row] = true;
    }

    /// The value at `row` (None for NULL / deleted / out of range).
    #[must_use]
    pub fn get(&self, row: usize) -> Option<u64> {
        if *self.deleted.get(row)? {
            return None;
        }
        self.cells.get(row)?.value()
    }

    fn scan(&self, pred: impl Fn(u64) -> bool, label: String) -> QueryResult {
        let mut bitmap = BitVec::zeros(self.cells.len());
        for (row, cell) in self.cells.iter().enumerate() {
            if self.deleted[row] {
                continue;
            }
            if let Some(v) = cell.value() {
                if pred(v) {
                    bitmap.set(row, true);
                }
            }
        }
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: 0,
                literal_ops: self.cells.len(),
                cube_evals: 1,
                expression: label,
                ..QueryStats::default()
            },
        }
    }
}

impl SelectionIndex for ProjectionIndex {
    fn name(&self) -> &'static str {
        "projection"
    }

    fn rows(&self) -> usize {
        self.cells.len()
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.scan(|v| v == value, format!("scan(= {value})"))
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        self.scan(
            move |v| sorted.binary_search(&v).is_ok(),
            format!("scan(IN {} values)", values.len()),
        )
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        self.scan(move |v| v >= lo && v <= hi, format!("scan([{lo},{hi}])"))
    }

    fn bitmap_vector_count(&self) -> usize {
        0
    }

    fn storage_bytes(&self) -> usize {
        self.cells.len() * self.entry_bytes
    }

    /// Every query scans the full projection.
    fn query_pages(&self, _stats: &QueryStats, page_size: usize) -> u64 {
        (self.storage_bytes().div_ceil(page_size)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProjectionIndex {
        ProjectionIndex::build(
            vec![
                Cell::Value(5),
                Cell::Value(2),
                Cell::Null,
                Cell::Value(5),
                Cell::Value(9),
            ],
            8,
        )
    }

    #[test]
    fn scans_answer_all_query_shapes() {
        let idx = sample();
        assert_eq!(
            SelectionIndex::eq(&idx, 5).bitmap.to_positions(),
            vec![0, 3]
        );
        assert_eq!(idx.in_list(&[2, 9]).bitmap.to_positions(), vec![1, 4]);
        assert_eq!(idx.range(2, 5).bitmap.to_positions(), vec![0, 1, 3]);
        assert_eq!(SelectionIndex::eq(&idx, 77).bitmap.count_ones(), 0);
    }

    #[test]
    fn nulls_and_deleted_rows_never_match() {
        let mut idx = sample();
        idx.delete(0);
        assert_eq!(SelectionIndex::eq(&idx, 5).bitmap.to_positions(), vec![3]);
        assert_eq!(idx.get(2), None, "NULL");
        assert_eq!(idx.get(0), None, "deleted");
        assert_eq!(idx.get(3), Some(5));
    }

    #[test]
    fn page_cost_is_a_full_scan() {
        let idx = ProjectionIndex::build((0..10_000u64).map(Cell::Value), 8);
        let r = SelectionIndex::eq(&idx, 1);
        // 80_000 bytes / 4096 = 20 pages, regardless of selectivity.
        assert_eq!(idx.query_pages(&r.stats, 4096), 20);
        assert_eq!(idx.bitmap_vector_count(), 0);
    }

    #[test]
    fn append_grows_the_projection() {
        let mut idx = sample();
        idx.append(Cell::Value(2));
        assert_eq!(idx.rows(), 6);
        assert_eq!(
            SelectionIndex::eq(&idx, 2).bitmap.to_positions(),
            vec![1, 5]
        );
    }
}
