//! The hybrid B-tree/bitmap index (§3.2, §4).
//!
//! "Instead of storing tuple-ids (value-lists) at the leaf-nodes of
//! B-trees, bitmap vectors are stored. As the sparsity increases …
//! the bit vectors are expressed as value-lists." The paper's critique:
//! at very high cardinality every leaf degrades to a RID list and the
//! hybrid *is* a B-tree — losing bitmap cooperativity exactly where the
//! encoded bitmap index shines. This implementation makes that
//! degradation measurable: [`HybridBTreeBitmapIndex::bitmap_leaf_fraction`]
//! reports how much of the index still enjoys bitmap form.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;
use std::collections::BTreeMap;

/// Leaf payload: bitmap for dense values, RID list for sparse ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridLeaf {
    /// Dense value: a full bitmap vector.
    Bitmap(BitVec),
    /// Sparse value: an explicit tuple-id list.
    RidList(Vec<u32>),
}

impl HybridLeaf {
    /// Materialises this leaf as a bitmap of `rows` bits.
    #[must_use]
    pub fn to_bitmap(&self, rows: usize) -> BitVec {
        match self {
            Self::Bitmap(b) => b.clone(),
            Self::RidList(rids) => {
                let mut b = BitVec::zeros(rows);
                for &r in rids {
                    b.set(r as usize, true);
                }
                b
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            Self::Bitmap(b) => b.storage_bytes(),
            Self::RidList(r) => r.len() * 4,
        }
    }
}

/// Ordered map of values to hybrid leaves, with a density threshold.
#[derive(Debug, Clone)]
pub struct HybridBTreeBitmapIndex {
    leaves: BTreeMap<u64, HybridLeaf>,
    rows: usize,
    /// A value keeps bitmap form iff its row count × 32 ≥ rows (i.e. a
    /// RID list would be bigger than the bitmap).
    threshold_div: usize,
}

impl HybridBTreeBitmapIndex {
    /// Builds with the break-even threshold: bitmap when
    /// `count >= rows / 32` (a 4-byte RID costs 32 bits).
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        Self::build_with_threshold(cells, 32)
    }

    /// Builds with a custom density divisor: bitmap form when
    /// `count >= rows / threshold_div`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_div == 0`.
    #[must_use]
    pub fn build_with_threshold<I: IntoIterator<Item = Cell>>(
        cells: I,
        threshold_div: usize,
    ) -> Self {
        assert!(threshold_div > 0);
        let cells: Vec<Cell> = cells.into_iter().collect();
        let rows = cells.len();
        let mut rid_lists: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (row, cell) in cells.iter().enumerate() {
            if let Some(v) = cell.value() {
                rid_lists.entry(v).or_default().push(row as u32);
            }
        }
        let cutoff = rows / threshold_div;
        let leaves = rid_lists
            .into_iter()
            .map(|(v, rids)| {
                let leaf = if rids.len() >= cutoff.max(1) {
                    let mut b = BitVec::zeros(rows);
                    for &r in &rids {
                        b.set(r as usize, true);
                    }
                    HybridLeaf::Bitmap(b)
                } else {
                    HybridLeaf::RidList(rids)
                };
                (v, leaf)
            })
            .collect();
        Self {
            leaves,
            rows,
            threshold_div,
        }
    }

    /// Fraction of values stored in bitmap form — 0.0 means the hybrid
    /// has fully degraded to a B-tree (the paper's §3.2 critique).
    #[must_use]
    pub fn bitmap_leaf_fraction(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        let bitmaps = self
            .leaves
            .values()
            .filter(|l| matches!(l, HybridLeaf::Bitmap(_)))
            .count();
        bitmaps as f64 / self.leaves.len() as f64
    }

    /// The density divisor in use.
    #[must_use]
    pub fn threshold_div(&self) -> usize {
        self.threshold_div
    }

    fn or_of(&self, values: impl Iterator<Item = u64>) -> QueryResult {
        let mut bitmap = BitVec::zeros(self.rows);
        let mut accessed = 0usize;
        let mut rid_decodes = 0usize;
        for v in values {
            let Some(leaf) = self.leaves.get(&v) else {
                continue;
            };
            accessed += 1;
            match leaf {
                HybridLeaf::Bitmap(b) => bitmap.or_assign(b),
                HybridLeaf::RidList(rids) => {
                    rid_decodes += rids.len();
                    for &r in rids {
                        bitmap.set(r as usize, true);
                    }
                }
            }
        }
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: accessed,
                literal_ops: rid_decodes,
                cube_evals: accessed,
                expression: format!("hybrid({accessed} leaves, {rid_decodes} rids)"),
                ..QueryStats::default()
            },
        }
    }
}

impl SelectionIndex for HybridBTreeBitmapIndex {
    fn name(&self) -> &'static str {
        "hybrid-btree-bitmap"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.or_of(std::iter::once(value))
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        self.or_of(values.iter().copied())
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        self.or_of(self.leaves.range(lo..=hi).map(|(&v, _)| v))
    }

    fn bitmap_vector_count(&self) -> usize {
        self.leaves
            .values()
            .filter(|l| matches!(l, HybridLeaf::Bitmap(_)))
            .count()
    }

    fn storage_bytes(&self) -> usize {
        self.leaves
            .values()
            .map(HybridLeaf::storage_bytes)
            .sum::<usize>()
            + self.leaves.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_values_become_bitmaps_sparse_become_lists() {
        // 1000 rows: value 0 has 500 rows (dense), values 1..=500 one row
        // each (sparse at the /32 threshold).
        let mut col: Vec<u64> = vec![0; 500];
        col.extend(1..=500u64);
        let idx = HybridBTreeBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)));
        assert_eq!(idx.bitmap_vector_count(), 1, "only value 0 is dense");
        assert!(idx.bitmap_leaf_fraction() < 0.01);
        assert_eq!(SelectionIndex::eq(&idx, 0).bitmap.count_ones(), 500);
        assert_eq!(SelectionIndex::eq(&idx, 250).bitmap.count_ones(), 1);
    }

    #[test]
    fn degradation_grows_with_cardinality() {
        let rows = 2048usize;
        let frac = |m: u64| {
            let col: Vec<Cell> = (0..rows as u64).map(|i| Cell::Value(i % m)).collect();
            HybridBTreeBitmapIndex::build(col).bitmap_leaf_fraction()
        };
        // Low cardinality: all bitmap. High cardinality: all RID lists —
        // the §3.2 degradation to a plain B-tree.
        assert_eq!(frac(8), 1.0);
        assert_eq!(frac(2048), 0.0);
        assert!(frac(8) > frac(256) || frac(256) == 1.0);
    }

    #[test]
    fn queries_are_exact_in_both_forms() {
        let col: Vec<u64> = (0..3000).map(|i| (i % 7) * 100 + (i % 11)).collect();
        let idx = HybridBTreeBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)));
        for (lo, hi) in [(0u64, 1000u64), (105, 310), (600, 610)] {
            let expect: Vec<usize> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v >= lo && v <= hi)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                idx.range(lo, hi).bitmap.to_positions(),
                expect,
                "[{lo},{hi}]"
            );
        }
        let r = idx.in_list(&[3, 103, 99999]);
        let expect: Vec<usize> = col
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v == 3 || v == 103)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(r.bitmap.to_positions(), expect);
    }

    #[test]
    fn stats_distinguish_bitmap_and_rid_work() {
        let mut col: Vec<u64> = vec![1; 640];
        col.extend([2u64, 3, 4]); // three singleton values
        let idx = HybridBTreeBitmapIndex::build(col.iter().map(|&v| Cell::Value(v)));
        let dense = SelectionIndex::eq(&idx, 1);
        assert_eq!(dense.stats.literal_ops, 0, "bitmap leaf: no rid decodes");
        let sparse = SelectionIndex::eq(&idx, 2);
        assert_eq!(sparse.stats.literal_ops, 1, "one rid decoded");
    }

    #[test]
    fn custom_threshold_moves_the_boundary() {
        let col: Vec<u64> = (0..100).map(|i| i % 10).collect(); // 10 rows each
        let aggressive = HybridBTreeBitmapIndex::build_with_threshold(
            col.iter().map(|&v| Cell::Value(v)),
            5, // need >= 20 rows for bitmap form
        );
        assert_eq!(aggressive.bitmap_vector_count(), 0);
        assert_eq!(aggressive.threshold_div(), 5);
        let lax =
            HybridBTreeBitmapIndex::build_with_threshold(col.iter().map(|&v| Cell::Value(v)), 100);
        assert_eq!(lax.bitmap_vector_count(), 10);
    }
}
