//! Non-binary-base bit-sliced indexing (§4: "bit-sliced indexing with
//! non-binary base was also introduced in [11]").
//!
//! The value is decomposed in base `b`: `v = Σ d_i · b^i`, and each
//! digit `d_i` gets its own family of `b` *equality-encoded* bitmap
//! vectors (one per digit value). This interpolates between the paper's
//! two poles:
//!
//! * `b = 2` → one vector per digit — the binary bit-sliced index;
//! * `b ≥ m` → a single digit — the simple bitmap index.
//!
//! Equality touches one vector per component (`c = #components`); a
//! range `[lo, hi]` is evaluated digit-wise from the most significant
//! component down (border digits recurse, interior digit values OR).
//! Space is `b · ceil(log_b m)` vectors — minimised around `b ≈ e`,
//! which is why low bases win space while high bases win point-query
//! cost: the classic space/time knob the paper's Figure 10 brackets.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;

/// Equality-encoded multi-component (base-`b`) bitmap index.
#[derive(Debug, Clone)]
pub struct MultiComponentIndex {
    base: u64,
    /// `vectors[c][d]` = bitmap of rows whose component `c` digit is `d`
    /// (component 0 = least significant).
    vectors: Vec<Vec<BitVec>>,
    rows: usize,
    max_value: u64,
    b_null: Option<BitVec>,
}

impl MultiComponentIndex {
    /// Builds with base `b >= 2`. The component count covers the largest
    /// observed value.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I, base: u64) -> Self {
        assert!(base >= 2, "base must be at least 2");
        let cells: Vec<Cell> = cells.into_iter().collect();
        let rows = cells.len();
        let max_value = cells.iter().filter_map(Cell::value).max().unwrap_or(0);
        let mut components = 1usize;
        let mut span = base;
        while span <= max_value {
            components += 1;
            span = span.saturating_mul(base);
        }
        let mut vectors = vec![vec![BitVec::zeros(rows); base as usize]; components];
        let mut b_null: Option<BitVec> = None;
        for (row, cell) in cells.iter().enumerate() {
            match cell.value() {
                Some(mut v) => {
                    for comp in &mut vectors {
                        comp[(v % base) as usize].set(row, true);
                        v /= base;
                    }
                }
                None => {
                    b_null
                        .get_or_insert_with(|| BitVec::zeros(rows))
                        .set(row, true);
                }
            }
        }
        Self {
            base,
            vectors,
            rows,
            max_value,
            b_null,
        }
    }

    /// The base `b`.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of components (digits).
    #[must_use]
    pub fn components(&self) -> usize {
        self.vectors.len()
    }

    /// Digits of `v`, least significant first, padded to the component
    /// count.
    fn digits(&self, mut v: u64) -> Vec<u64> {
        (0..self.components())
            .map(|_| {
                let d = v % self.base;
                v /= self.base;
                d
            })
            .collect()
    }

    /// Equality bitmap: AND of one vector per component.
    fn eq_bitmap(&self, v: u64, accessed: &mut usize) -> BitVec {
        if v > self.max_value {
            return BitVec::zeros(self.rows);
        }
        let mut result: Option<BitVec> = None;
        for (comp, &d) in self.vectors.iter().zip(self.digits(v).iter()) {
            *accessed += 1;
            let vec = &comp[d as usize];
            match &mut result {
                None => result = Some(vec.clone()),
                Some(r) => r.and_assign(vec),
            }
        }
        result.unwrap_or_else(|| BitVec::zeros(self.rows))
    }

    /// `value <= hi` on the top `comp+1` components, recursing MSB-first.
    fn le_bitmap(&self, comp: usize, hi: u64, accessed: &mut usize) -> BitVec {
        let comp_digits = self.digits(hi);
        let d = comp_digits[comp] as usize;
        let family = &self.vectors[comp];
        // Digits strictly below d qualify outright.
        let mut below = BitVec::zeros(self.rows);
        for vec in family.iter().take(d) {
            *accessed += 1;
            below.or_assign(vec);
        }
        // Digit == d: qualified by the lower components.
        *accessed += 1;
        let mut at = family[d].clone();
        if comp > 0 {
            let lower = self.le_bitmap(comp - 1, hi, accessed);
            at.and_assign(&lower);
        }
        below.or_assign(&at);
        below
    }

    /// `value >= lo` on the top `comp+1` components.
    fn ge_bitmap(&self, comp: usize, lo: u64, accessed: &mut usize) -> BitVec {
        let comp_digits = self.digits(lo);
        let d = comp_digits[comp] as usize;
        let family = &self.vectors[comp];
        let mut above = BitVec::zeros(self.rows);
        for vec in family.iter().skip(d + 1) {
            *accessed += 1;
            above.or_assign(vec);
        }
        *accessed += 1;
        let mut at = family[d].clone();
        if comp > 0 {
            let lower = self.ge_bitmap(comp - 1, lo, accessed);
            at.and_assign(&lower);
        }
        above.or_assign(&at);
        above
    }
}

impl SelectionIndex for MultiComponentIndex {
    fn name(&self) -> &'static str {
        "multi-component"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        let mut accessed = 0usize;
        let bitmap = self.eq_bitmap(value, &mut accessed);
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: accessed,
                literal_ops: accessed.saturating_sub(1),
                cube_evals: 1,
                expression: format!("base{}-eq({value})", self.base),
                ..QueryStats::default()
            },
        }
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        let mut accessed = 0usize;
        let mut result = BitVec::zeros(self.rows);
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            result.or_assign(&self.eq_bitmap(v, &mut accessed));
        }
        QueryResult {
            bitmap: result,
            stats: QueryStats {
                vectors_accessed: accessed,
                literal_ops: accessed,
                cube_evals: sorted.len(),
                expression: format!("base{}-in({})", self.base, sorted.len()),
                ..QueryStats::default()
            },
        }
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        let mut accessed = 0usize;
        let bitmap = if lo > hi {
            BitVec::zeros(self.rows)
        } else {
            let top = self.components() - 1;
            let hi_cl = hi.min(self.max_value);
            if lo > hi_cl {
                BitVec::zeros(self.rows)
            } else {
                let mut b = self.le_bitmap(top, hi_cl, &mut accessed);
                b.and_assign(&self.ge_bitmap(top, lo, &mut accessed));
                b
            }
        };
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: accessed,
                literal_ops: accessed,
                cube_evals: 2,
                expression: format!("base{}-range({lo},{hi})", self.base),
                ..QueryStats::default()
            },
        }
    }

    fn bitmap_vector_count(&self) -> usize {
        self.vectors.iter().map(Vec::len).sum::<usize>() + usize::from(self.b_null.is_some())
    }

    fn storage_bytes(&self) -> usize {
        self.vectors
            .iter()
            .flatten()
            .chain(self.b_null.iter())
            .map(BitVec::storage_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Vec<u64> {
        (0..3000u64).map(|i| (i * 7717) % 900).collect()
    }

    #[test]
    fn component_counts_interpolate_the_extremes() {
        let col: Vec<Cell> = column().into_iter().map(Cell::Value).collect();
        // base 2 over values < 900: 10 components × 2 vectors = 20.
        let b2 = MultiComponentIndex::build(col.iter().copied(), 2);
        assert_eq!(b2.components(), 10);
        assert_eq!(b2.bitmap_vector_count(), 20);
        // base 30: 2 components × 30 = 60 vectors.
        let b30 = MultiComponentIndex::build(col.iter().copied(), 30);
        assert_eq!(b30.components(), 2);
        assert_eq!(b30.bitmap_vector_count(), 60);
        // base 1024 ≥ m: the simple-bitmap pole, eq reads one vector.
        let b1024 = MultiComponentIndex::build(col.iter().copied(), 1024);
        assert_eq!(b1024.components(), 1);
        assert_eq!(SelectionIndex::eq(&b1024, 17).stats.vectors_accessed, 1);
    }

    #[test]
    fn queries_match_scans_across_bases() {
        let raw = column();
        let col: Vec<Cell> = raw.iter().map(|&v| Cell::Value(v)).collect();
        for base in [2u64, 4, 10, 30, 1000] {
            let idx = MultiComponentIndex::build(col.iter().copied(), base);
            // Point query.
            let r = SelectionIndex::eq(&idx, raw[42]);
            let expect: Vec<usize> = raw
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v == raw[42])
                .map(|(i, _)| i)
                .collect();
            assert_eq!(r.bitmap.to_positions(), expect, "base {base} eq");
            // Ranges, incl. degenerate / clipped ones.
            for (lo, hi) in [(0u64, 899u64), (100, 400), (250, 250), (880, 5000), (9, 3)] {
                let r = idx.range(lo, hi);
                let expect: Vec<usize> = raw
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v >= lo && v <= hi)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(r.bitmap.to_positions(), expect, "base {base} [{lo},{hi}]");
            }
            // IN-list.
            let r = idx.in_list(&[raw[0], raw[1], 9999]);
            let expect: Vec<usize> = raw
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v == raw[0] || v == raw[1])
                .map(|(i, _)| i)
                .collect();
            assert_eq!(r.bitmap.to_positions(), expect, "base {base} in");
        }
    }

    #[test]
    fn point_cost_is_component_count() {
        let col: Vec<Cell> = column().into_iter().map(Cell::Value).collect();
        for base in [2u64, 10, 30] {
            let idx = MultiComponentIndex::build(col.iter().copied(), base);
            let r = SelectionIndex::eq(&idx, 123);
            assert_eq!(
                r.stats.vectors_accessed,
                idx.components(),
                "base {base}: one vector per component"
            );
        }
    }

    #[test]
    fn space_time_tradeoff_shape() {
        // Higher base ⇒ fewer vectors per point query, more total
        // vectors; exactly the knob between the paper's two poles.
        let col: Vec<Cell> = column().into_iter().map(Cell::Value).collect();
        let b2 = MultiComponentIndex::build(col.iter().copied(), 2);
        let b30 = MultiComponentIndex::build(col.iter().copied(), 30);
        assert!(
            SelectionIndex::eq(&b30, 5).stats.vectors_accessed
                < SelectionIndex::eq(&b2, 5).stats.vectors_accessed
        );
        assert!(SelectionIndex::storage_bytes(&b30) > SelectionIndex::storage_bytes(&b2));
    }

    #[test]
    fn nulls_are_never_selected() {
        let cells = vec![Cell::Value(0), Cell::Null, Cell::Value(5)];
        let idx = MultiComponentIndex::build(cells, 4);
        assert_eq!(SelectionIndex::eq(&idx, 0).bitmap.to_positions(), vec![0]);
        assert_eq!(idx.range(0, 10).bitmap.to_positions(), vec![0, 2]);
        assert_eq!(idx.bitmap_vector_count(), 4 * 2 + 1);
    }
}
