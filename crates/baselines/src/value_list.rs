//! The value-list index (§4): a B+tree of RID lists.

use crate::traits::SelectionIndex;
use ebi_bitvec::BitVec;
use ebi_btree::BTreeIndex;
use ebi_core::index::QueryResult;
use ebi_core::QueryStats;
use ebi_storage::Cell;

/// B+tree mapping attribute values to tuple-id lists.
///
/// `vectors_accessed` in this index's stats counts *node reads* — one
/// node is one page, so [`SelectionIndex::query_pages`] is the identity
/// on that number.
#[derive(Debug, Clone)]
pub struct ValueListIndex {
    tree: BTreeIndex,
    rows: usize,
}

impl ValueListIndex {
    /// Builds with the paper's reference parameters (`M = 512`,
    /// `p = 4K`). NULL cells are not indexed (as in real value-list
    /// indexes).
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        Self::build_with(cells, 512, 4096)
    }

    /// Builds with explicit degree and page size.
    #[must_use]
    pub fn build_with<I: IntoIterator<Item = Cell>>(
        cells: I,
        degree: usize,
        page_size: usize,
    ) -> Self {
        let mut tree = BTreeIndex::new(degree, page_size);
        let mut rows = 0usize;
        for (row, cell) in cells.into_iter().enumerate() {
            if let Cell::Value(v) = cell {
                tree.insert(v, row as u32);
            }
            rows = row + 1;
        }
        tree.reset_stats();
        Self { tree, rows }
    }

    /// Appends one cell.
    pub fn append(&mut self, cell: Cell) {
        if let Cell::Value(v) = cell {
            self.tree.insert(v, self.rows as u32);
        }
        self.rows += 1;
    }

    /// Deletes a row's entry (requires knowing its value).
    pub fn delete(&mut self, row: usize, value: u64) -> bool {
        self.tree.remove(value, row as u32)
    }

    /// The underlying tree (for shape inspection).
    #[must_use]
    pub fn tree(&self) -> &BTreeIndex {
        &self.tree
    }

    fn rids_to_result(&self, rids: Vec<u32>, label: String) -> QueryResult {
        let reads = self.tree.stats().node_reads as usize;
        self.tree.reset_stats();
        let mut bitmap = BitVec::zeros(self.rows);
        for rid in rids {
            bitmap.set(rid as usize, true);
        }
        QueryResult {
            bitmap,
            stats: QueryStats {
                vectors_accessed: reads,
                literal_ops: 0,
                cube_evals: 1,
                expression: label,
                ..QueryStats::default()
            },
        }
    }
}

impl SelectionIndex for ValueListIndex {
    fn name(&self) -> &'static str {
        "value-list-btree"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.tree.reset_stats();
        let rids = self.tree.search(value);
        self.rids_to_result(rids, format!("btree.search({value})"))
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        self.tree.reset_stats();
        let mut rids = Vec::new();
        for &v in values {
            rids.extend(self.tree.search(v));
        }
        self.rids_to_result(rids, format!("btree.multi-search({})", values.len()))
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        self.tree.reset_stats();
        let rids = self.tree.range(lo, hi);
        self.rids_to_result(rids, format!("btree.range({lo},{hi})"))
    }

    fn bitmap_vector_count(&self) -> usize {
        0
    }

    fn storage_bytes(&self) -> usize {
        self.tree.storage_bytes()
    }

    /// One node = one page: node reads are page reads.
    fn query_pages(&self, stats: &QueryStats, _page_size: usize) -> u64 {
        stats.vectors_accessed as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ValueListIndex {
        ValueListIndex::build_with((0..1000u64).map(|i| Cell::Value(i % 50)), 8, 128)
    }

    #[test]
    fn eq_returns_matching_rows() {
        let idx = sample();
        let r = SelectionIndex::eq(&idx, 7);
        let expect: Vec<usize> = (0..1000).filter(|i| i % 50 == 7).collect();
        assert_eq!(r.bitmap.to_positions(), expect);
        assert!(r.stats.vectors_accessed > 0, "tree descent was counted");
    }

    #[test]
    fn range_and_inlist_agree() {
        let idx = sample();
        let a = idx.range(10, 14);
        let b = idx.in_list(&[10, 11, 12, 13, 14]);
        assert_eq!(a.bitmap, b.bitmap);
        // The leaf-chain range should touch fewer nodes than 5 root-to-
        // leaf descents.
        assert!(a.stats.vectors_accessed <= b.stats.vectors_accessed);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = ValueListIndex::build(vec![Cell::Value(1), Cell::Null, Cell::Value(1)]);
        assert_eq!(
            SelectionIndex::eq(&idx, 1).bitmap.to_positions(),
            vec![0, 2]
        );
        assert_eq!(idx.rows(), 3, "rows still count the NULL slot");
    }

    #[test]
    fn append_and_delete_round() {
        let mut idx = sample();
        idx.append(Cell::Value(7));
        assert!(SelectionIndex::eq(&idx, 7).bitmap.bit(1000));
        assert!(idx.delete(1000, 7));
        assert!(!SelectionIndex::eq(&idx, 7).bitmap.bit(1000));
        assert!(!idx.delete(1000, 7), "already removed");
    }

    #[test]
    fn page_cost_equals_node_reads() {
        let idx = sample();
        let r = SelectionIndex::eq(&idx, 3);
        assert_eq!(
            idx.query_pages(&r.stats, 4096),
            r.stats.vectors_accessed as u64
        );
        assert_eq!(idx.bitmap_vector_count(), 0);
        // Nodes page by payload, so the footprint is at least one page
        // per node and grows with the stored RID lists.
        assert!(idx.storage_bytes() >= idx.tree().node_count() * 128);
    }
}
