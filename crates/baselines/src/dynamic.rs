//! Sarawagi's dynamic bitmaps (§4).
//!
//! "If there are n different values in the attribute domain, they are
//! encoded onto n (log2 n)-bit continuous binary integers." — i.e. an
//! encoded bitmap index whose mapping is the trivial enumeration, with
//! no attention paid to the encoding (the paper's point: "the
//! significance of encoding was not discussed in dynamic bitmaps").
//! Implemented as a thin wrapper so experiments can show exactly what a
//! *well-chosen* encoding adds on top.

use crate::traits::SelectionIndex;
use ebi_core::index::{BuildOptions, EncodedBitmapIndex, QueryResult};
use ebi_core::mapping::Mapping;
use ebi_core::nulls::NullPolicy;
use ebi_storage::Cell;

/// An encoded bitmap index with the continuous-integer encoding.
#[derive(Debug, Clone)]
pub struct DynamicBitmapIndex {
    inner: EncodedBitmapIndex,
}

impl DynamicBitmapIndex {
    /// Builds with values enumerated in ascending order.
    ///
    /// # Panics
    ///
    /// Panics only on mapping-width overflow (> 2^63 distinct values).
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        let cells: Vec<Cell> = cells.into_iter().collect();
        let mut distinct: Vec<u64> = cells.iter().filter_map(Cell::value).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mapping = Mapping::from_values(&distinct).expect("distinct values");
        let inner = EncodedBitmapIndex::build_with(
            cells,
            BuildOptions {
                policy: NullPolicy::SeparateVectors,
                mapping: Some(mapping),
                ..Default::default()
            },
        )
        .expect("mapping covers the column");
        Self { inner }
    }

    /// The wrapped encoded bitmap index.
    #[must_use]
    pub fn inner(&self) -> &EncodedBitmapIndex {
        &self.inner
    }
}

impl SelectionIndex for DynamicBitmapIndex {
    fn name(&self) -> &'static str {
        "dynamic-bitmap"
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn eq(&self, value: u64) -> QueryResult {
        SelectionIndex::eq(&self.inner, value)
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        SelectionIndex::in_list(&self.inner, values)
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        SelectionIndex::range(&self.inner, lo, hi)
    }

    fn bitmap_vector_count(&self) -> usize {
        self.inner.bitmap_vector_count()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_enumeration_in_value_order() {
        let idx = DynamicBitmapIndex::build([30u64, 10, 20, 10].map(Cell::Value));
        assert_eq!(idx.inner().mapping().code_of(10), Some(0));
        assert_eq!(idx.inner().mapping().code_of(20), Some(1));
        assert_eq!(idx.inner().mapping().code_of(30), Some(2));
        assert!(idx.inner().mapping().is_total_order_preserving());
    }

    #[test]
    fn answers_match_the_generic_ebi() {
        let cells: Vec<Cell> = (0..500u64).map(|i| Cell::Value(i % 31)).collect();
        let idx = DynamicBitmapIndex::build(cells);
        let r = idx.in_list(&[3, 4, 5, 6]);
        let expect: Vec<usize> = (0..500)
            .filter(|&i| (3..=6).contains(&(i as u64 % 31)))
            .collect();
        assert_eq!(r.bitmap.to_positions(), expect);
        assert_eq!(idx.rows(), 500);
        assert_eq!(idx.bitmap_vector_count(), 5, "31 values -> 5 vectors");
    }

    #[test]
    fn range_uses_value_order() {
        let idx = DynamicBitmapIndex::build([5u64, 100, 60, 5].map(Cell::Value));
        assert_eq!(idx.range(5, 60).bitmap.to_positions(), vec![0, 2, 3]);
    }
}
