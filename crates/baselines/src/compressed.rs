//! A WAH-compressed encoded bitmap index.
//!
//! §2.1/§4 discuss run-length compression as the classic answer to
//! simple-bitmap sparsity. Encoded vectors sit near density ½ on
//! *uniform* data and barely compress — but under **skew** (the common
//! warehouse case) the high-order slices are mostly zero and compress
//! well. This variant stores every slice as a WAH container via the
//! shared [`SliceStorage`] layer and evaluates retrieval expressions
//! **compressed-domain**: the stored kernels materialise 64-word
//! windows on demand and resolve uniform runs straight from fill words,
//! so no slice is ever fully decompressed. Answers are identical to the
//! uncompressed index.

use crate::traits::SelectionIndex;
use ebi_bitvec::wah::WahBitmap;
use ebi_bitvec::{BitVec, SliceStorage, StoragePolicy};
use ebi_boolean::{eval_expr_stored, qm, AccessTracker};
use ebi_core::index::{EncodedBitmapIndex, QueryResult};
use ebi_core::{Mapping, QueryStats};
use ebi_storage::Cell;

/// Encoded bitmap index with WAH-compressed slices.
#[derive(Debug, Clone)]
pub struct CompressedEncodedIndex {
    slices: Vec<SliceStorage>,
    mapping: Mapping,
    rows: usize,
    dont_cares: Vec<u64>,
    b_null: Option<WahBitmap>,
}

impl CompressedEncodedIndex {
    /// Builds by compressing a freshly built uncompressed index.
    ///
    /// # Panics
    ///
    /// Panics only on mapping-width overflow.
    #[must_use]
    pub fn build<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        let idx = EncodedBitmapIndex::build(cells).expect("serial build");
        Self::from_uncompressed(&idx)
    }

    /// Compresses an existing index's vectors.
    #[must_use]
    pub fn from_uncompressed(idx: &EncodedBitmapIndex) -> Self {
        Self {
            slices: idx
                .slices()
                .iter()
                .map(|s| s.repack(StoragePolicy::Wah))
                .collect(),
            mapping: idx.mapping().clone(),
            rows: idx.rows(),
            dont_cares: idx.dont_care_codes(),
            b_null: {
                let nulls = idx.is_null().bitmap;
                nulls.any().then(|| WahBitmap::compress(&nulls))
            },
        }
    }

    /// Compression ratio of the whole slice family (`< 1` = smaller).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let raw: usize = self
            .slices
            .iter()
            .map(|s| BitVec::zeros(s.len()).storage_bytes())
            .sum();
        if raw == 0 {
            return 1.0;
        }
        self.storage_bytes() as f64 / raw as f64
    }
}

impl SelectionIndex for CompressedEncodedIndex {
    fn name(&self) -> &'static str {
        "compressed-encoded"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn eq(&self, value: u64) -> QueryResult {
        self.in_list(&[value])
    }

    fn in_list(&self, values: &[u64]) -> QueryResult {
        let codes: Vec<u64> = values
            .iter()
            .filter_map(|&v| self.mapping.code_of(v))
            .collect();
        let k = self.mapping.width();
        let expr = qm::minimize(&codes, &self.dont_cares, k);
        // Compressed-domain evaluation: the stored kernels walk only the
        // supporting slices, window by window, without decompressing.
        let mut tracker = AccessTracker::new();
        let mut bitmap = eval_expr_stored(&expr, &self.slices, None, self.rows, &mut tracker);
        let mut rendered = expr.to_string();
        if !expr.is_false() {
            if let Some(bn) = &self.b_null {
                tracker.touch(k);
                tracker.literal_ops += 1;
                bitmap.and_not_assign(&bn.decompress());
                rendered.push_str(" · B_NULL'");
            }
        }
        QueryResult {
            bitmap,
            stats: QueryStats::from_tracker(&tracker, rendered),
        }
    }

    fn range(&self, lo: u64, hi: u64) -> QueryResult {
        let values: Vec<u64> = self
            .mapping
            .iter()
            .map(|(v, _)| v)
            .filter(|&v| v >= lo && v <= hi)
            .collect();
        self.in_list(&values)
    }

    fn bitmap_vector_count(&self) -> usize {
        self.slices.len() + usize::from(self.b_null.is_some())
    }

    fn storage_bytes(&self) -> usize {
        self.slices
            .iter()
            .map(SliceStorage::storage_bytes)
            .sum::<usize>()
            + self.b_null.as_ref().map_or(0, WahBitmap::storage_bytes)
            + self.mapping.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebi_bitvec::StorageKind;

    fn skewed_cells(rows: usize, m: u64) -> Vec<Cell> {
        // Time-clustered skew (the realistic load pattern): the bulk of
        // the table carries a handful of hot values; the long tail of
        // the domain only appears in the most recent rows. High-order
        // slices are then zero over long runs — WAH's sweet spot.
        let head = rows * 9 / 10;
        (0..rows as u64)
            .map(|i| {
                let v = if (i as usize) < head { i % 4 } else { i % m };
                Cell::Value(v)
            })
            .collect()
    }

    #[test]
    fn answers_match_the_uncompressed_index() {
        let cells = skewed_cells(8_000, 512);
        let plain = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        let packed = CompressedEncodedIndex::from_uncompressed(&plain);
        assert!(
            packed.slices.iter().all(|s| s.kind() == StorageKind::Wah),
            "every slice stored as WAH"
        );
        for sel in [vec![0u64], vec![1, 2, 3], (0..64).collect::<Vec<_>>()] {
            let a = plain.in_list(&sel).unwrap();
            let b = packed.in_list(&sel);
            assert_eq!(a.bitmap, b.bitmap, "{sel:?}");
            assert_eq!(a.stats.vectors_accessed, b.stats.vectors_accessed);
        }
        let ra = plain.range(3, 40).unwrap();
        let rb = packed.range(3, 40);
        assert_eq!(ra.bitmap, rb.bitmap);
    }

    #[test]
    fn compressed_domain_evaluation_reports_skipped_windows() {
        // Skewed data: the high-order slices are long zero fills, so
        // many evaluation windows resolve without decompression.
        let packed = CompressedEncodedIndex::build(skewed_cells(50_000, 512));
        let r = packed.in_list(&[300]);
        assert!(
            r.stats.compressed_chunks_skipped > 0,
            "uniform WAH windows should skip: {:?}",
            r.stats
        );
        assert_eq!(r.stats.words_scanned, 0, "no dense slices were read");
    }

    #[test]
    fn skewed_data_compresses_uniform_does_not() {
        let skew = CompressedEncodedIndex::build(skewed_cells(50_000, 512));
        let uni = CompressedEncodedIndex::build((0..50_000u64).map(|i| Cell::Value(i % 512)));
        assert!(
            skew.compression_ratio() < 0.8,
            "skewed ratio {}",
            skew.compression_ratio()
        );
        assert!(
            uni.compression_ratio() > 0.9,
            "uniform ratio {}",
            uni.compression_ratio()
        );
    }

    #[test]
    fn nulls_stay_masked_through_compression() {
        let mut cells = skewed_cells(1_000, 64);
        cells[7] = Cell::Null;
        cells[13] = Cell::Null;
        let plain = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
        let packed = CompressedEncodedIndex::from_uncompressed(&plain);
        for v in 0..8u64 {
            assert_eq!(
                SelectionIndex::eq(&packed, v).bitmap,
                plain.eq(v).unwrap().bitmap,
                "value {v}"
            );
        }
    }

    #[test]
    fn trait_metadata() {
        let idx = CompressedEncodedIndex::build(skewed_cells(500, 32));
        assert_eq!(idx.name(), "compressed-encoded");
        assert_eq!(idx.rows(), 500);
        assert!(idx.storage_bytes() > 0);
        assert_eq!(idx.bitmap_vector_count(), 5);
    }
}
