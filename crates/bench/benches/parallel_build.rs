//! Extension — parallel index construction: thread-count scaling of the
//! chunked builder against the serial baseline (bit-identical output).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_bench::uniform_cells;
use ebi_core::index::BuildOptions;
use ebi_core::parallel::build_parallel;
use ebi_core::EncodedBitmapIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_parallel_build(c: &mut Criterion) {
    let rows = 400_000usize;
    let m = 1024u64;
    let cells = uniform_cells(m, rows, 0x9B);

    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| black_box(EncodedBitmapIndex::build(cells.iter().copied()).unwrap()));
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(build_parallel(&cells, BuildOptions::default(), t).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_build);
criterion_main!(benches);
