//! §2.1/§4 compression side-note: run-length compression attacks the
//! sparsity of simple bitmaps; encoded vectors (density ≈ 1/2) barely
//! compress. Measures WAH compress/decompress and compressed AND.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_bitvec::wah::WahBitmap;
use ebi_bitvec::BitVec;
use std::hint::black_box;
use std::time::Duration;

fn sparse_bitmap(rows: usize, one_in: usize) -> BitVec {
    (0..rows).map(|i| i % one_in == 0).collect()
}

fn dense_random(rows: usize) -> BitVec {
    (0..rows).map(|i| (i * 2654435761) % 97 < 48).collect()
}

fn bench_wah(c: &mut Criterion) {
    let rows = 1_000_000usize;
    let mut group = c.benchmark_group("wah");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes((rows / 8) as u64));

    let sparse = sparse_bitmap(rows, 1000); // simple-bitmap regime
    let dense = dense_random(rows); // encoded-bitmap regime
    group.bench_function(BenchmarkId::new("compress", "sparse_0.1%"), |b| {
        b.iter(|| black_box(WahBitmap::compress(&sparse)));
    });
    group.bench_function(BenchmarkId::new("compress", "dense_50%"), |b| {
        b.iter(|| black_box(WahBitmap::compress(&dense)));
    });

    let ws = WahBitmap::compress(&sparse);
    let wd = WahBitmap::compress(&dense);
    group.bench_function(BenchmarkId::new("decompress", "sparse"), |b| {
        b.iter(|| black_box(ws.decompress()));
    });
    group.bench_function(BenchmarkId::new("and_compressed", "sparse_x_dense"), |b| {
        b.iter(|| black_box(ws.and(&wd)));
    });
    group.bench_function(BenchmarkId::new("and_plain", "sparse_x_dense"), |b| {
        b.iter(|| black_box(&sparse & &dense));
    });
    group.finish();
}

criterion_group!(benches, bench_wah);
criterion_main!(benches);
