//! Wall-clock companion to Figure 9: query latency vs range width δ
//! for the encoded, simple and bit-sliced indexes (m = 1000, the
//! Figure 9(b) regime).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_baselines::{BitSlicedIndex, SelectionIndex, SimpleBitmapIndex};
use ebi_bench::uniform_cells;
use ebi_core::EncodedBitmapIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let m = 1000u64;
    let rows = 100_000usize;
    let cells = uniform_cells(m, rows, 0xB9);
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let sliced = BitSlicedIndex::build(cells.iter().copied());

    let mut group = c.benchmark_group("fig9_range_selectivity");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for delta in [1u64, 8, 64, 512] {
        let selection: Vec<u64> = (0..delta).collect();
        group.bench_with_input(BenchmarkId::new("encoded", delta), &selection, |b, sel| {
            b.iter(|| black_box(SelectionIndex::in_list(&encoded, sel)));
        });
        group.bench_with_input(BenchmarkId::new("simple", delta), &selection, |b, sel| {
            b.iter(|| black_box(simple.in_list(sel)));
        });
        group.bench_with_input(BenchmarkId::new("bit_sliced", delta), &selection, |b, _| {
            b.iter(|| black_box(sliced.range(0, delta - 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
