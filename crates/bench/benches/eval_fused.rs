//! Wall-clock comparison of the evaluation engines on the Figure-9
//! workload shape: range selections of width δ over m = 1000, reduced
//! by Quine–McCluskey, evaluated over 1M-row slices.
//!
//! Engines: `eval_expr_naive` (literal-at-a-time with temporaries),
//! fused serial kernels, fused + segment summaries, and the
//! segment-parallel splitter.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_bench::uniform_cells;
use ebi_bitvec::summary::summarize_slices;
use ebi_boolean::{
    eval_expr_naive, eval_expr_summarized, eval_expr_tracked, qm, AccessTracker, FusedPlan,
};
use ebi_core::parallel::eval_plan_forced;
use ebi_core::EncodedBitmapIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_eval(c: &mut Criterion) {
    let m = 1000u64;
    let rows = 1_000_000usize;
    let cells = uniform_cells(m, rows, 0xE7A1);
    let index = EncodedBitmapIndex::build(cells).expect("build");
    let dense: Vec<ebi_bitvec::BitVec> = index
        .slices()
        .iter()
        .map(ebi_bitvec::SliceStorage::to_dense)
        .collect();
    let slices = &dense[..];
    let summaries = summarize_slices(slices);
    let k = index.width();
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);

    let mut group = c.benchmark_group("eval_fused");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for delta in [8u64, 64, 512] {
        let codes: Vec<u64> = (0..delta)
            .map(|v| index.mapping().code_of(v).expect("mapped"))
            .collect();
        let expr = qm::minimize(&codes, &[], k);

        // Sanity outside the timing loops: all engines agree bit for bit
        // and fusing leaves the paper's cost metric untouched.
        let naive = eval_expr_naive(&expr, slices, rows);
        let mut tracker = AccessTracker::new();
        assert_eq!(eval_expr_tracked(&expr, slices, rows, &mut tracker), naive);
        assert_eq!(tracker.vectors_accessed(), expr.vectors_accessed());

        group.bench_with_input(BenchmarkId::new("naive", delta), &expr, |b, e| {
            b.iter(|| black_box(eval_expr_naive(e, slices, rows)));
        });
        group.bench_with_input(BenchmarkId::new("fused", delta), &expr, |b, e| {
            b.iter(|| {
                let mut t = AccessTracker::new();
                black_box(eval_expr_tracked(e, slices, rows, &mut t))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("fused_summarized", delta),
            &expr,
            |b, e| {
                b.iter(|| {
                    let mut t = AccessTracker::new();
                    black_box(eval_expr_summarized(e, slices, &summaries, rows, &mut t))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("fused_parallel", delta), &expr, |b, e| {
            b.iter(|| {
                let plan = FusedPlan::with_summaries(e, slices, &summaries, rows);
                let mut stats = ebi_bitvec::KernelStats::new();
                black_box(eval_plan_forced(&plan, threads, &mut stats))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
