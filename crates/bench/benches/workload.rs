//! Experiment E18 — the full TPC-D-style mix (12/17 range searches)
//! through every index family, wall-clock edition of `tpcd_mix`.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_baselines::{
    BitSlicedIndex, HybridBTreeBitmapIndex, RangeBasedBitmapIndex, SelectionIndex,
    SimpleBitmapIndex, ValueListIndex,
};
use ebi_bench::zipf_cells;
use ebi_core::EncodedBitmapIndex;
use ebi_warehouse::workload::{Predicate, Query, WorkloadSpec};
use std::hint::black_box;
use std::time::Duration;

fn run_workload(idx: &dyn SelectionIndex, workload: &[Query]) -> usize {
    workload
        .iter()
        .map(|q| {
            let r = match &q.predicate {
                Predicate::Eq(v) => idx.eq(*v),
                Predicate::InList(vs) => idx.in_list(vs),
                Predicate::Range(lo, hi) => idx.range(*lo, *hi),
            };
            r.bitmap.count_ones()
        })
        .sum()
}

fn bench_workload(c: &mut Criterion) {
    let m = 1000u64;
    let rows = 50_000usize;
    let cells = zipf_cells(m, 0.5, rows, 0x4D);
    let workload = WorkloadSpec::tpcd_like("a", m, 50, 0x4E).generate();

    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let sliced = BitSlicedIndex::build(cells.iter().copied());
    let ranged = RangeBasedBitmapIndex::build(cells.iter().copied(), 16);
    let hybrid = HybridBTreeBitmapIndex::build(cells.iter().copied());
    let vlist = ValueListIndex::build(cells.iter().copied());
    let indexes: Vec<(&str, &dyn SelectionIndex)> = vec![
        ("encoded", &encoded),
        ("simple", &simple),
        ("bit_sliced", &sliced),
        ("range_based", &ranged),
        ("hybrid", &hybrid),
        ("value_list", &vlist),
    ];

    let mut group = c.benchmark_group("tpcd_workload");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(workload.len() as u64));
    for (name, idx) in indexes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &workload, |b, w| {
            b.iter(|| black_box(run_workload(idx, w)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
