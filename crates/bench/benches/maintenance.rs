//! Experiment E15 — maintenance cost (§3.1): appends are O(h) for both
//! bitmap indexes, but h = m for simple and h = ceil(log2 m) for
//! encoded; domain expansion costs O(|T|) for simple (a whole new
//! vector) and amortises for encoded.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_baselines::SimpleBitmapIndex;
use ebi_bench::uniform_cells;
use ebi_core::EncodedBitmapIndex;
use ebi_storage::Cell;
use std::hint::black_box;
use std::time::Duration;

const APPENDS: usize = 2_000;

fn bench_appends(c: &mut Criterion) {
    let rows = 20_000usize;
    let mut group = c.benchmark_group("maintenance_append");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(APPENDS as u64));
    for m in [64u64, 1024] {
        let cells = uniform_cells(m, rows, 0xA9 + m);
        group.bench_with_input(BenchmarkId::new("encoded", m), &cells, |b, cells| {
            b.iter_batched(
                || EncodedBitmapIndex::build(cells.iter().copied()).unwrap(),
                |mut idx| {
                    for i in 0..APPENDS {
                        idx.append(Cell::Value((i as u64) % m)).unwrap();
                    }
                    black_box(idx)
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("simple", m), &cells, |b, cells| {
            b.iter_batched(
                || SimpleBitmapIndex::build(cells.iter().copied()),
                |mut idx| {
                    for i in 0..APPENDS {
                        idx.append(Cell::Value((i as u64) % m));
                    }
                    black_box(idx)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_domain_expansion(c: &mut Criterion) {
    // Appends that each introduce a brand-new value: simple must create
    // a whole vector per append; encoded mostly reuses free codes.
    let rows = 20_000usize;
    let m = 256u64;
    let cells = uniform_cells(m, rows, 0xAE);
    let mut group = c.benchmark_group("maintenance_expansion");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(200));
    group.bench_function("encoded_new_values", |b| {
        b.iter_batched(
            || EncodedBitmapIndex::build(cells.iter().copied()).unwrap(),
            |mut idx| {
                for i in 0..200u64 {
                    idx.append(Cell::Value(m + i)).unwrap();
                }
                black_box(idx)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("simple_new_values", |b| {
        b.iter_batched(
            || SimpleBitmapIndex::build(cells.iter().copied()),
            |mut idx| {
                for i in 0..200u64 {
                    idx.append(Cell::Value(m + i));
                }
                black_box(idx)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_appends, bench_domain_expansion);
criterion_main!(benches);
