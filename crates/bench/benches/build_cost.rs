//! Experiment E13 — build cost vs cardinality (§2.1): simple bitmap
//! builds are O(n·m), encoded O(n·log m), the B-tree
//! O(n·log_{M/2} m + n·log2(p/4)).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_baselines::{SimpleBitmapIndex, ValueListIndex};
use ebi_bench::uniform_cells;
use ebi_core::EncodedBitmapIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let rows = 50_000usize;
    let mut group = c.benchmark_group("build_cost");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows as u64));
    for m in [16u64, 128, 1024, 8192] {
        let cells = uniform_cells(m, rows, 0xBC + m);
        group.bench_with_input(BenchmarkId::new("encoded", m), &cells, |b, cells| {
            b.iter(|| black_box(EncodedBitmapIndex::build(cells.iter().copied()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("simple", m), &cells, |b, cells| {
            b.iter(|| black_box(SimpleBitmapIndex::build(cells.iter().copied())));
        });
        group.bench_with_input(BenchmarkId::new("btree", m), &cells, |b, cells| {
            b.iter(|| black_box(ValueListIndex::build(cells.iter().copied())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
