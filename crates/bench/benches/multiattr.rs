//! Experiment E16 — index cooperativity (§2.1): conjunctions over
//! several attributes are answered by ANDing single-attribute bitmap
//! results, no compound index required. Compares 1-, 2- and 3-clause
//! conjunctions through the executor.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_bench::{uniform_cells, zipf_cells, DEFAULT_ROWS};
use ebi_core::EncodedBitmapIndex;
use ebi_warehouse::{ConjunctiveQuery, Executor, Predicate, Query};
use std::hint::black_box;
use std::time::Duration;

fn clause(column: &str, predicate: Predicate) -> Query {
    Query {
        column: column.into(),
        predicate,
    }
}

fn bench_multiattr(c: &mut Criterion) {
    let rows = DEFAULT_ROWS;
    let a = uniform_cells(100, rows, 0x3A);
    let b = zipf_cells(1000, 0.7, rows, 0x3B);
    let d = uniform_cells(12, rows, 0x3C);
    let ia = EncodedBitmapIndex::build(a.iter().copied()).unwrap();
    let ib = EncodedBitmapIndex::build(b.iter().copied()).unwrap();
    let id = EncodedBitmapIndex::build(d.iter().copied()).unwrap();
    let mut exec = Executor::new(rows);
    exec.register("a", &ia);
    exec.register("b", &ib);
    exec.register("d", &id);

    let queries = [
        (
            1usize,
            ConjunctiveQuery {
                clauses: vec![clause("a", Predicate::Range(10, 40))],
            },
        ),
        (
            2,
            ConjunctiveQuery {
                clauses: vec![
                    clause("a", Predicate::Range(10, 40)),
                    clause("b", Predicate::Range(0, 255)),
                ],
            },
        ),
        (
            3,
            ConjunctiveQuery {
                clauses: vec![
                    clause("a", Predicate::Range(10, 40)),
                    clause("b", Predicate::Range(0, 255)),
                    clause("d", Predicate::InList(vec![1, 2, 3, 4])),
                ],
            },
        ),
    ];

    let mut group = c.benchmark_group("multiattr_conjunction");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for (n, q) in &queries {
        group.bench_with_input(BenchmarkId::from_parameter(n), q, |bch, q| {
            bch.iter(|| black_box(exec.run(q)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiattr);
criterion_main!(benches);
