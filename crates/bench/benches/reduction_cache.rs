//! §3.2's one-time-cost claim, measured: logical reduction dominates
//! in-memory wide-IN-list latency (the paper's model ignores CPU and
//! counts disk accesses), and precomputing the reduced functions for
//! predefined predicates — exactly what §3.2 proposes — removes it.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_bench::uniform_cells;
use ebi_core::EncodedBitmapIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_reduction_cache(c: &mut Criterion) {
    let m = 1000u64;
    let rows = 100_000usize;
    let cells = uniform_cells(m, rows, 0xCA);
    let cold = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();
    let mut warm = EncodedBitmapIndex::build(cells.iter().copied()).unwrap();

    let mut group = c.benchmark_group("reduction_cache");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for delta in [8u64, 64, 512] {
        let selection: Vec<u64> = (0..delta).collect();
        warm.precompute_predicates(std::slice::from_ref(&selection));
        group.bench_with_input(BenchmarkId::new("uncached", delta), &selection, |b, sel| {
            b.iter(|| black_box(cold.in_list(sel).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("precomputed", delta),
            &selection,
            |b, sel| {
                b.iter(|| black_box(warm.in_list(sel).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction_cache);
criterion_main!(benches);
