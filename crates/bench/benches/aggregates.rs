//! §5 extension — direct-bitmap aggregates vs a row scan: SUM / MEDIAN
//! over a filtered measure, slice-parallel versus decoding rows.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebi_bitvec::BitVec;
use ebi_core::aggregates::BitSlicedMeasure;
use ebi_storage::Cell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_aggregates(c: &mut Criterion) {
    let rows = 200_000usize;
    let mut rng = StdRng::seed_from_u64(0xA66);
    let values: Vec<u64> = (0..rows).map(|_| rng.random_range(0..10_000u64)).collect();
    let measure = BitSlicedMeasure::build(values.iter().map(|&v| Cell::Value(v)));
    let filter: BitVec = (0..rows).map(|i| i % 3 != 0).collect();

    let mut group = c.benchmark_group("aggregates");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function(BenchmarkId::new("sum", "bit_sliced"), |b| {
        b.iter(|| black_box(measure.sum_where(&filter)));
    });
    group.bench_function(BenchmarkId::new("sum", "row_scan"), |b| {
        b.iter(|| {
            let mut total: u128 = 0;
            for (i, &v) in values.iter().enumerate() {
                if filter.bit(i) {
                    total += u128::from(v);
                }
            }
            black_box(total)
        });
    });
    group.bench_function(BenchmarkId::new("median", "bit_sliced"), |b| {
        b.iter(|| black_box(measure.median_where(&filter)));
    });
    group.bench_function(BenchmarkId::new("median", "row_sort"), |b| {
        b.iter(|| {
            let mut qualifying: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| filter.bit(*i))
                .map(|(_, &v)| v)
                .collect();
            qualifying.sort_unstable();
            black_box(qualifying[(qualifying.len() - 1) / 2])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_aggregates);
criterion_main!(benches);
