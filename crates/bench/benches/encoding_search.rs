//! The cost of *finding* a well-defined encoding (§3.2 prices it as a
//! one-time cost): identity/Gray are O(m), affinity is the bipartition
//! pass, annealing pays per iteration.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_core::encoding::{
    AffinityEncoding, AnnealingEncoding, EncodingProblem, EncodingStrategy, GrayEncoding,
    IdentityEncoding,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn predicates(m: u64, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let size = rng.random_range(2..=(m / 4).max(3));
            let mut vs: Vec<u64> = (0..size).map(|_| rng.random_range(0..m)).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect()
}

fn bench_encoding_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_search");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for m in [64u64, 256] {
        let values: Vec<u64> = (0..m).collect();
        let preds = predicates(m, 8, 0xE5 + m);
        let width = if m <= 2 { 1 } else { (m - 1).ilog2() + 1 };
        let problem = EncodingProblem {
            values: &values,
            predicates: &preds,
            width,
            forbidden_codes: &[],
        };
        group.bench_with_input(BenchmarkId::new("identity", m), &problem, |b, p| {
            b.iter(|| black_box(IdentityEncoding.encode(p).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("gray", m), &problem, |b, p| {
            b.iter(|| black_box(GrayEncoding.encode(p).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("affinity", m), &problem, |b, p| {
            b.iter(|| black_box(AffinityEncoding.encode(p).unwrap()));
        });
        if m <= 64 {
            let annealer = AnnealingEncoding {
                iterations: 200,
                seed: 0xE6,
            };
            group.bench_with_input(BenchmarkId::new("annealing200", m), &problem, |b, p| {
                b.iter(|| black_box(annealer.encode(p).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encoding_search);
criterion_main!(benches);
