//! §3.2 "Logical Reduction" — the paper prices reduction as a one-time
//! cost with exponential worst case. Measures Quine–McCluskey over
//! growing variable counts and selection widths, plus the exact
//! minimum-support computation behind the Figure 9 best case.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebi_boolean::{qm, support};
use std::hint::black_box;
use std::time::Duration;

fn bench_qm(c: &mut Criterion) {
    let mut group = c.benchmark_group("quine_mccluskey");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for k in [6u32, 8, 10] {
        let m = 1u64 << k;
        // Half-domain contiguous selection: the heavy, realistic case.
        let on: Vec<u64> = (0..m / 2).collect();
        group.bench_with_input(BenchmarkId::new("contiguous_half", k), &on, |b, on| {
            b.iter(|| black_box(qm::minimize(on, &[], k)));
        });
        // Scattered selection (every third code).
        let scattered: Vec<u64> = (0..m).step_by(3).collect();
        group.bench_with_input(
            BenchmarkId::new("scattered_third", k),
            &scattered,
            |b, on| {
                b.iter(|| black_box(qm::minimize(on, &[], k)));
            },
        );
    }
    group.finish();
}

fn bench_min_support(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_support");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for (m, delta) in [(50u64, 31u64), (1000, 500)] {
        let k = if m <= 2 { 1 } else { (m - 1).ilog2() + 1 };
        let on: Vec<u64> = (0..delta).collect();
        let dc: Vec<u64> = (m..(1u64 << k)).collect();
        group.bench_with_input(
            BenchmarkId::new("prefix", format!("m{m}_d{delta}")),
            &(on, dc),
            |b, (on, dc)| {
                b.iter(|| black_box(support::min_vectors(on, dc, k)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qm, bench_min_support);
criterion_main!(benches);
