//! Closed-loop concurrency benchmark for the sharded query service
//! (`ebi-service`): N clients × S shards, each client a persistent TCP
//! line-protocol connection firing `COUNT` queries back-to-back.
//! Writes `BENCH_service.json` (schema `ebi.bench_service.v1`) with
//! throughput and exact p50/p95/p99 latency per (clients × shards)
//! cell.
//!
//! Every service answer is checked against the library path before it
//! counts (the `matches` field must equal the single-process
//! `eval_local` count), and the library counts themselves are checked
//! invariant across shard counts — so the numbers come with the same
//! correctness gates as the other BENCH artefacts.
//!
//! Throughput is measured closed-loop: a client only issues its next
//! request after the previous answer arrives, so offered load rises
//! with the client count until the admission bound (`max_inflight`)
//! turns the excess into `BUSY` rejections. Each cell runs twice and
//! keeps the faster run — ratios of best-of-N are far more stable
//! under scheduler interference than single-shot medians, and the CI
//! regression gate compares throughput *ratios* at 15% tolerance.
//!
//! Pass `--smoke` for a small CI run, `--out-dir DIR` to redirect the
//! artefact (used to regenerate the committed baseline).

use ebi_service::{
    parse_dnf, ColumnSpec, ServiceConfig, ServiceHandle, ShardedTable, TableOptions,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const USAGE: &str = "service_bench — closed-loop throughput/latency bench for ebi-service

USAGE:
    service_bench [--smoke] [--out-dir DIR]

FLAGS:
    --smoke         small-row CI run (fewer rows, clients, requests)
    --out-dir DIR   write BENCH_service.json into DIR instead of the
                    repository root (used to regenerate baselines)
    -h, --help      print this help

Unknown flags are an error.";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// The fixed query mix every client cycles through. Mid-selectivity
/// DNF shapes so evaluation reads real data on every shard.
const QUERIES: &[&str] = &["a=1", "a IN 1,3,5 AND b BETWEEN 2 9", "a=0 OR b=1"];

/// Deterministic two-column fact table (xorshift, no NULLs): `a` of
/// cardinality 7, `b` of cardinality 13.
fn synthetic_columns(rows: usize) -> Vec<ColumnSpec> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    for _ in 0..rows {
        a.push(ebi_storage::Cell::Value(next() % 7));
        b.push(ebi_storage::Cell::Value(next() % 13));
    }
    vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)]
}

/// One measured (clients × shards) cell.
struct CellRow {
    shards: usize,
    clients: usize,
    requests: u64,
    ok: u64,
    busy: u64,
    throughput_rps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    /// `throughput(clients) / throughput(clients = 1)` at the same
    /// shard count — the dimensionless point the CI gate compares.
    scaling_vs_one_client: f64,
}

/// Nearest-rank percentile of an already-sorted latency vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct CellOut {
    ok: u64,
    busy: u64,
    wall: Duration,
    latencies: Vec<u64>,
}

/// Drives `clients` closed-loop connections for `per_client` answered
/// requests each; checks every answer against the expected library
/// count.
fn run_cell(
    tcp: SocketAddr,
    clients: usize,
    per_client: usize,
    expected: &[(String, u64)],
) -> CellOut {
    let t0 = Instant::now();
    let outs: Vec<(Vec<u64>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                s.spawn(move || {
                    let stream = TcpStream::connect(tcp).expect("connect");
                    stream.set_nodelay(true).ok();
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut writer = stream;
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut busy = 0u64;
                    // Offset the query cycle per client so the mix
                    // interleaves instead of marching in lockstep.
                    let mut qi = client;
                    while latencies.len() < per_client {
                        let (query, want) = &expected[qi % expected.len()];
                        qi += 1;
                        let t = Instant::now();
                        writer
                            .write_all(format!("COUNT {query}\n").as_bytes())
                            .expect("write request");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("read response");
                        let ns = t.elapsed().as_nanos() as u64;
                        let line = line.trim_end();
                        if line == "BUSY" {
                            busy += 1;
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        assert!(line.starts_with("OK {"), "unexpected response: {line}");
                        assert!(
                            line.contains(&format!("\"matches\":{want}")),
                            "service answer diverged from library for {query}: {line}"
                        );
                        latencies.push(ns);
                    }
                    (latencies, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed();
    let mut latencies = Vec::new();
    let mut busy = 0;
    for (lat, b) in outs {
        latencies.extend(lat);
        busy += b;
    }
    latencies.sort_unstable();
    CellOut {
        ok: latencies.len() as u64,
        busy,
        wall,
        latencies,
    }
}

fn write_json(out_dir: Option<&Path>, name: &str, json: &str) {
    let root;
    let dir = match out_dir {
        Some(d) => d,
        None => {
            root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
            &root
        }
    };
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(name);
    std::fs::write(&path, json).expect("write benchmark json");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => out_dir = Some(PathBuf::from(d)),
                    None => die("--out-dir needs a path"),
                }
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (rows, shard_counts, client_counts, per_client): (usize, Vec<usize>, Vec<usize>, usize) =
        if smoke {
            (20_000, vec![1, 4], vec![1, 2, 4], 400)
        } else {
            (100_000, vec![1, 2, 4, 8], vec![1, 2, 4, 8, 16], 500)
        };
    // Repeats per cell, keeping the fastest: best-of-N throughput
    // converges to the host's ceiling, so the *ratios* the CI gate
    // compares stay stable even when single runs are ±10% noisy.
    let repeats = if smoke { 5 } else { 3 };

    // Timings measure the service itself, not the span/metrics
    // plumbing; the obs overhead is quantified separately by
    // `obs_overhead`.
    ebi_obs::set_enabled(false);

    let cfg = ServiceConfig {
        // Force the shard fan-out path: the bench tables sit below the
        // real auto-serialise floor, and an all-serial run would leave
        // the worker pool unmeasured.
        min_dispatch_words: 0,
        timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    };
    let columns = synthetic_columns(rows);

    // Library-path ground truth, checked invariant across shard counts
    // before any client traffic flows.
    let mut expected: Vec<(String, u64)> = Vec::new();
    let mut results: Vec<CellRow> = Vec::new();
    for &shards in &shard_counts {
        let table = ShardedTable::build(
            columns.clone(),
            &TableOptions {
                shards,
                ..TableOptions::default()
            },
        )
        .expect("table builds");
        let counts: Vec<(String, u64)> = QUERIES
            .iter()
            .map(|q| {
                let dnf = parse_dnf(q).expect("query parses");
                let compiled = table.compile(&dnf).expect("query compiles");
                (
                    q.to_string(),
                    table.eval_local(&compiled).0.count_ones() as u64,
                )
            })
            .collect();
        if expected.is_empty() {
            expected = counts;
        } else {
            assert_eq!(
                expected, counts,
                "library counts diverged between shard counts"
            );
        }

        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                ebi_service::run(&table, &cfg, |h: ServiceHandle| {
                    tx.send(h).expect("publish handle");
                })
            });
            let handle = rx.recv().expect("service came up");
            let tcp = handle.tcp_addr();

            for &clients in &client_counts {
                // Interleave each N-client run with a fresh 1-client
                // run and gate on the *median of per-pair ratios*:
                // adjacent runs see the same host conditions, so the
                // dimensionless scaling number stays stable even when
                // absolute throughput is ±10% noisy (same idiom as the
                // SIMD-vs-scalar pairs in eval_kernels).
                let mut best: Option<CellOut> = None;
                let mut ratios: Vec<f64> = Vec::with_capacity(repeats);
                for _ in 0..repeats {
                    let base = run_cell(tcp, 1, per_client, &expected);
                    let cell = run_cell(tcp, clients, per_client, &expected);
                    let base_rps = base.ok as f64 / base.wall.as_secs_f64();
                    let rps = cell.ok as f64 / cell.wall.as_secs_f64();
                    ratios.push(rps / base_rps);
                    let keep = match &best {
                        None => true,
                        Some(b) => cell.wall < b.wall,
                    };
                    if keep {
                        best = Some(cell);
                    }
                }
                ratios.sort_by(f64::total_cmp);
                let scaling = if clients == 1 {
                    1.0
                } else {
                    ratios[ratios.len() / 2]
                };
                let cell = best.expect("at least one run");
                let rps = cell.ok as f64 / cell.wall.as_secs_f64();
                let row = CellRow {
                    shards,
                    clients,
                    requests: cell.ok + cell.busy,
                    ok: cell.ok,
                    busy: cell.busy,
                    throughput_rps: rps,
                    p50_ns: percentile(&cell.latencies, 0.50),
                    p95_ns: percentile(&cell.latencies, 0.95),
                    p99_ns: percentile(&cell.latencies, 0.99),
                    scaling_vs_one_client: scaling,
                };
                eprintln!(
                    "shards={shards} clients={clients:<3} {rps:>10.0} req/s \
                     p50={:>9}ns p95={:>9}ns p99={:>9}ns busy={} (×{:.2} vs 1 client)",
                    row.p50_ns, row.p95_ns, row.p99_ns, row.busy, row.scaling_vs_one_client,
                );
                results.push(row);
            }

            handle.shutdown();
            let summary = server.join().expect("service thread").expect("service ran");
            assert_eq!(summary.timeouts, 0, "bench queries must not time out");
        });
    }

    let mut notes: Vec<String> = vec![format!(
        "min_dispatch_words forced to 0 so every query exercises the shard fan-out \
         and worker pool; observability is disabled during timing (see obs_overhead \
         for that cost)"
    )];
    if cores < 2 {
        notes.push(
            "host exposes a single CPU: client concurrency pipelines request parsing \
             against evaluation but cannot show multi-core throughput scaling here; \
             the admission bound and fan-out path are still fully exercised"
                .into(),
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"ebi.bench_service.v1\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"closed-loop COUNT queries over the TCP line protocol; \
         {}-query DNF mix over uniform m=7 / m=13 columns\",",
        QUERIES.len()
    );
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(
        json,
        "  \"unit\": \"requests/sec; exact nearest-rank percentiles in ns\","
    );
    let _ = writeln!(json, "  \"protocol\": \"tcp\",");
    let _ = writeln!(json, "  \"workers\": {},", cfg.workers);
    let _ = writeln!(json, "  \"max_inflight\": {},", cfg.max_inflight);
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = write!(json, "  \"shard_counts\": [");
    for (i, s) in shard_counts.iter().enumerate() {
        let _ = write!(json, "{}{s}", if i > 0 { ", " } else { "" });
    }
    json.push_str("],\n");
    let _ = write!(json, "  \"client_counts\": [");
    for (i, c) in client_counts.iter().enumerate() {
        let _ = write!(json, "{}{c}", if i > 0 { ", " } else { "" });
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "  \"invariants\": {{ \"answers_match_library\": true, \
         \"library_counts_invariant_across_shard_counts\": true, \"timeouts\": 0 }},"
    );
    json.push_str("  \"notes\": [\n");
    for (i, n) in notes.iter().enumerate() {
        let _ = write!(json, "    \"{n}\"");
        json.push_str(if i + 1 < notes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"shards\": {}, \"clients\": {}, \"requests\": {}, \"ok\": {}, \
             \"busy\": {}, \"throughput_rps\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"throughput_scaling_vs_one_client\": {:.3} }}",
            r.shards,
            r.clients,
            r.requests,
            r.ok,
            r.busy,
            r.throughput_rps,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.scaling_vs_one_client,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json(out_dir.as_deref(), "BENCH_service.json", &json);
    println!("{json}");
}
