//! Collects every CSV in `bench_results/` into one Markdown digest
//! (`bench_results/DIGEST.md`) — the quick artefact to eyeball after a
//! full regeneration run.

use ebi_bench::out_dir;
use std::fmt::Write as _;

fn main() {
    let dir = out_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("bench_results/ readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".csv"))
        .collect();
    names.sort();

    let mut digest = String::from("# bench_results digest\n\n");
    let _ = writeln!(
        digest,
        "{} CSV artefacts; regenerate with the bins listed in README.md.\n",
        names.len()
    );
    for name in &names {
        let path = dir.join(name);
        let content = std::fs::read_to_string(&path).expect("readable CSV");
        let mut lines = content.lines();
        let header = lines.next().unwrap_or_default();
        let rows: Vec<&str> = lines.collect();
        let _ = writeln!(digest, "## {name}\n");
        let _ = writeln!(digest, "{} data rows · columns: `{}`\n", rows.len(), header);
        let _ = writeln!(digest, "```csv");
        let _ = writeln!(digest, "{header}");
        for row in rows.iter().take(8) {
            let _ = writeln!(digest, "{row}");
        }
        if rows.len() > 8 {
            let _ = writeln!(digest, "… ({} more rows)", rows.len() - 8);
        }
        let _ = writeln!(digest, "```\n");
    }
    let out = dir.join("DIGEST.md");
    std::fs::write(&out, &digest).expect("write digest");
    println!("[written] {} ({} artefacts)", out.display(), names.len());
}
