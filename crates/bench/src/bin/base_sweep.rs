//! Experiment E25 (extension) — the non-binary-base knob of §4: sweep
//! the component base `b` from 2 (bit-sliced) toward `m` (simple
//! bitmap) and print the space/time trade both poles of Figure 10
//! bracket, next to the encoded bitmap index.

use ebi_analysis::report::TextTable;
use ebi_baselines::{MultiComponentIndex, SelectionIndex};
use ebi_bench::{uniform_cells, write_result, DEFAULT_ROWS};
use ebi_core::EncodedBitmapIndex;
use ebi_warehouse::workload::{Predicate, WorkloadSpec};

fn main() {
    let m = 1000u64;
    let cells = uniform_cells(m, DEFAULT_ROWS, 0xBA5E);
    let workload = WorkloadSpec::tpcd_like("a", m, 100, 0xBA5F).generate();

    let mut table = TextTable::new([
        "index",
        "vectors_held",
        "eq_cost",
        "workload_units",
        "storage_bytes",
    ]);

    let run = |idx: &dyn SelectionIndex| -> (usize, usize) {
        let eq_cost = idx.eq(123).stats.vectors_accessed;
        let mut units = 0usize;
        for q in &workload {
            let r = match &q.predicate {
                Predicate::Eq(v) => idx.eq(*v),
                Predicate::InList(vs) => idx.in_list(vs),
                Predicate::Range(lo, hi) => idx.range(*lo, *hi),
            };
            units += r.stats.vectors_accessed;
        }
        (eq_cost, units)
    };

    for base in [2u64, 4, 8, 10, 32, 100, 1000] {
        let idx = MultiComponentIndex::build(cells.iter().copied(), base);
        let (eq_cost, units) = run(&idx);
        table.row([
            format!("base-{base} ({} comps)", idx.components()),
            idx.bitmap_vector_count().to_string(),
            eq_cost.to_string(),
            units.to_string(),
            idx.storage_bytes().to_string(),
        ]);
    }
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
    let (eq_cost, units) = run(&encoded);
    table.row([
        "encoded-bitmap".to_string(),
        encoded.bitmap_vector_count().to_string(),
        eq_cost.to_string(),
        units.to_string(),
        encoded.storage_bytes().to_string(),
    ]);

    println!(
        "== base sweep: multi-component vs encoded (m = {m}, {} rows, TPC-D mix) ==",
        DEFAULT_ROWS
    );
    println!("{}", table.render());
    write_result("base_sweep.csv", &table.to_csv());
}
