//! Experiment E10 — **Figure 10**: space requirement vs attribute
//! cardinality.
//!
//! Analytical: simple needs `m` bitmap vectors, encoded
//! `ceil(log2 m)`. Measured: actual vector counts and byte footprints
//! of both indexes built over generated data (the encoded side includes
//! its mapping table).

use ebi_analysis::fig10::fig10_series;
use ebi_analysis::report::TextTable;
use ebi_baselines::{SelectionIndex, SimpleBitmapIndex};
use ebi_bench::{uniform_cells, write_result};
use ebi_core::EncodedBitmapIndex;

fn main() {
    let cardinalities: Vec<u64> = vec![
        2, 4, 8, 16, 32, 50, 64, 128, 256, 512, 1000, 2048, 4096, 12000,
    ];
    let rows = 50_000usize;
    let mut table = TextTable::new([
        "m",
        "simple_vecs(analytic)",
        "simple_vecs(measured)",
        "simple_bytes",
        "encoded_vecs(analytic)",
        "encoded_vecs(measured)",
        "encoded_bytes",
        "ratio_bytes",
    ]);
    for point in fig10_series(&cardinalities) {
        let m = point.cardinality;
        let cells = uniform_cells(m, rows, 0xF10 + m);
        let simple = SimpleBitmapIndex::build(cells.iter().copied());
        let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build EBI");
        // With 50k uniform rows every value of small m appears, so the
        // measured vector count should match the analytic one.
        table.row([
            m.to_string(),
            point.simple_vectors.to_string(),
            simple.bitmap_vector_count().to_string(),
            SelectionIndex::storage_bytes(&simple).to_string(),
            point.encoded_vectors.to_string(),
            encoded.bitmap_vector_count().to_string(),
            encoded.storage_bytes().to_string(),
            format!(
                "{:.1}",
                SelectionIndex::storage_bytes(&simple) as f64 / encoded.storage_bytes() as f64
            ),
        ]);
    }
    println!("== Figure 10: space vs cardinality ({rows} rows) ==");
    println!("{}", table.render());
    write_result("fig10_space.csv", &table.to_csv());
}
