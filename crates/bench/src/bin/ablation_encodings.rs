//! Experiment E20 — ablation over encoding strategies (the design
//! choice DESIGN.md highlights): identity vs Gray vs affinity vs
//! annealing, scored by Theorem 2.3's objective (total reduced vector
//! count over a predicate workload).
//!
//! Workloads: contiguous ranges (where Gray shines), clustered
//! co-access sets (where affinity shines), and the paper's Figure 3 /
//! Figure 5 scenarios.

use ebi_analysis::report::TextTable;
use ebi_bench::write_result;
use ebi_core::encoding::{
    workload_cost, AffinityEncoding, AnnealingEncoding, EncodingProblem, EncodingStrategy,
    GrayEncoding, IdentityEncoding,
};
use ebi_core::hierarchy::{paper_figure5_mapping, paper_salespoint_hierarchy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random clustered predicates: `count` sets, each grouping a random
/// cluster of values.
fn clustered_predicates(m: u64, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let size = rng.random_range(2..=(m / 2).max(3));
            let mut vs: Vec<u64> = (0..size).map(|_| rng.random_range(0..m)).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect()
}

/// Contiguous range predicates.
fn range_predicates(m: u64, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let width = rng.random_range(2..=(m / 2).max(3));
            let lo = rng.random_range(0..m - width + 1);
            (lo..lo + width).collect()
        })
        .collect()
}

fn main() {
    let strategies: Vec<(&str, Box<dyn EncodingStrategy>)> = vec![
        ("identity", Box::new(IdentityEncoding)),
        ("gray", Box::new(GrayEncoding)),
        ("affinity", Box::new(AffinityEncoding)),
        (
            "annealing",
            Box::new(AnnealingEncoding {
                iterations: 1500,
                seed: 0xAB1,
            }),
        ),
    ];

    let mut table = TextTable::new(["workload", "m", "identity", "gray", "affinity", "annealing"]);

    let mut scenarios: Vec<(String, u64, Vec<Vec<u64>>)> = Vec::new();
    for m in [16u64, 64, 256] {
        scenarios.push((
            format!("ranges(m={m})"),
            m,
            range_predicates(m, 8, 0x1000 + m),
        ));
        scenarios.push((
            format!("clusters(m={m})"),
            m,
            clustered_predicates(m, 8, 0x2000 + m),
        ));
    }
    // The paper's own scenarios.
    scenarios.push((
        "fig3 {a..d},{c..f}".into(),
        8,
        vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]],
    ));
    let hier = paper_salespoint_hierarchy();
    scenarios.push(("fig5 hierarchy".into(), 13, hier.predicates()));

    for (name, m, preds) in &scenarios {
        let values: Vec<u64> = if name.starts_with("fig5") {
            (1..=12).collect()
        } else {
            (0..*m).collect()
        };
        let width = ebi_core::Mapping::width_for(values.len());
        let problem = EncodingProblem {
            values: &values,
            predicates: preds,
            width,
            forbidden_codes: &[],
        };
        let costs: Vec<String> = strategies
            .iter()
            .map(|(_, s)| {
                let mapping = s.encode(&problem).expect("encode");
                workload_cost(&mapping, preds).to_string()
            })
            .collect();
        let mut row = vec![name.clone(), m.to_string()];
        row.extend(costs);
        table.row(row);
    }

    println!("== encoding-strategy ablation (total vectors accessed per workload) ==");
    println!("{}", table.render());
    println!(
        "reference: the paper's hand-crafted Figure 5 mapping costs {}",
        workload_cost(&paper_figure5_mapping(), &hier.predicates())
    );
    write_result("ablation_encodings.csv", &table.to_csv());
}
