//! Measures the retrieval-expression evaluation engines and writes
//! `BENCH_eval.json` at the repository root.
//!
//! Workload: Figure-9-style range selections (width δ ∈ {8, 64, 512})
//! over a uniform m = 1000 column, reduced with Quine–McCluskey, then
//! evaluated at 1M and 10M rows by:
//!
//! * `naive` — the literal-at-a-time evaluator with full-length
//!   temporaries ([`ebi_boolean::eval_expr_naive`]);
//! * `fused` — the serial fused kernels;
//! * `fused_summarized` — fused kernels plus segment-summary pruning;
//! * `fused_parallel` — the segment-range parallel splitter at all
//!   available cores.
//!
//! Every engine is checked bit-identical to naive and every query's
//! `vectors_accessed` is checked invariant under fusing before any
//! timing is recorded.

use ebi_bench::uniform_cells;
use ebi_bitvec::summary::summarize_slices;
use ebi_bitvec::KernelStats;
use ebi_boolean::{
    eval_expr_naive, eval_expr_summarized, eval_expr_tracked, qm, AccessTracker, FusedPlan,
};
use ebi_core::parallel::eval_plan;
use ebi_core::EncodedBitmapIndex;
use std::fmt::Write as _;
use std::time::Instant;

const M: u64 = 1000;
const DELTAS: [u64; 3] = [8, 64, 512];

/// Median wall-clock nanoseconds of `iters` runs of `f`.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    rows: usize,
    delta: u64,
    cubes: usize,
    vectors_accessed: usize,
    naive_ns: u128,
    fused_ns: u128,
    fused_summarized_ns: u128,
    fused_parallel_ns: u128,
}

impl Row {
    fn speedup_fused(&self) -> f64 {
        self.naive_ns as f64 / self.fused_ns as f64
    }
    fn speedup_parallel(&self) -> f64 {
        self.naive_ns as f64 / self.fused_parallel_ns as f64
    }
}

fn measure(rows: usize, iters: usize, threads: usize, out: &mut Vec<Row>) {
    eprintln!("building {rows}-row index (m = {M})…");
    let cells = uniform_cells(M, rows, 0xE7A1 ^ rows as u64);
    let index = EncodedBitmapIndex::build(cells).expect("build index");
    let slices = index.slices();
    let summaries = summarize_slices(slices);
    let k = index.width();

    for delta in DELTAS {
        let codes: Vec<u64> = (0..delta)
            .map(|v| index.mapping().code_of(v).expect("value mapped"))
            .collect();
        let expr = qm::minimize(&codes, &[], k);

        // Correctness gates: all engines bit-identical to naive, and the
        // paper's I/O metric unchanged by fusing/pruning/threading.
        let naive = eval_expr_naive(&expr, slices, rows);
        let mut t_fused = AccessTracker::new();
        assert_eq!(
            eval_expr_tracked(&expr, slices, rows, &mut t_fused),
            naive,
            "fused != naive"
        );
        let mut t_sum = AccessTracker::new();
        assert_eq!(
            eval_expr_summarized(&expr, slices, &summaries, rows, &mut t_sum),
            naive,
            "summarized != naive"
        );
        let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
        let mut ks = KernelStats::new();
        assert_eq!(eval_plan(&plan, threads, &mut ks), naive, "parallel != naive");
        for (engine, got) in [
            ("fused", t_fused.vectors_accessed()),
            ("summarized", t_sum.vectors_accessed()),
        ] {
            assert_eq!(
                got,
                expr.vectors_accessed(),
                "{engine} changed vectors_accessed at rows={rows} delta={delta}"
            );
        }

        let naive_ns = median_ns(iters, || {
            std::hint::black_box(eval_expr_naive(&expr, slices, rows));
        });
        let fused_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_tracked(&expr, slices, rows, &mut t));
        });
        let fused_summarized_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_summarized(&expr, slices, &summaries, rows, &mut t));
        });
        let fused_parallel_ns = median_ns(iters, || {
            let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
            let mut s = KernelStats::new();
            std::hint::black_box(eval_plan(&plan, threads, &mut s));
        });

        let row = Row {
            rows,
            delta,
            cubes: expr.cubes().len(),
            vectors_accessed: expr.vectors_accessed(),
            naive_ns,
            fused_ns,
            fused_summarized_ns,
            fused_parallel_ns,
        };
        eprintln!(
            "rows={rows:>9} δ={delta:<4} naive={naive_ns:>12}ns fused={fused_ns:>12}ns \
             (×{:.2}) parallel={fused_parallel_ns:>12}ns (×{:.2})",
            row.speedup_fused(),
            row.speedup_parallel(),
        );
        out.push(row);
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Force at least two workers so the segment-parallel splitter (not
    // its serial fallback) is what gets measured, even on one core.
    let threads = cores.max(2);
    let mut rows_out = Vec::new();
    measure(1_000_000, 9, threads, &mut rows_out);
    measure(10_000_000, 5, threads, &mut rows_out);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"fig9-style range selections, m = {M}, QM-reduced\",");
    let _ = writeln!(json, "  \"engines\": [\"naive\", \"fused\", \"fused_summarized\", \"fused_parallel\"],");
    let _ = writeln!(json, "  \"unit\": \"median wall-clock ns\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    if cores < 2 {
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes a single CPU: the parallel engine runs its real multi-worker path but cannot show wall-clock scaling here\","
        );
    }
    let _ = writeln!(
        json,
        "  \"invariants\": {{ \"bit_identical_to_naive\": true, \"vectors_accessed_unchanged\": true }},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows_out.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"rows\": {}, \"delta\": {}, \"cubes\": {}, \"vectors_accessed\": {}, \
             \"naive_ns\": {}, \"fused_ns\": {}, \"fused_summarized_ns\": {}, \
             \"fused_parallel_ns\": {}, \"speedup_fused_vs_naive\": {:.2}, \
             \"speedup_parallel_vs_naive\": {:.2} }}",
            r.rows,
            r.delta,
            r.cubes,
            r.vectors_accessed,
            r.naive_ns,
            r.fused_ns,
            r.fused_summarized_ns,
            r.fused_parallel_ns,
            r.speedup_fused(),
            r.speedup_parallel(),
        );
        json.push_str(if i + 1 < rows_out.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_eval.json");
    std::fs::write(&path, &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    let worst_10m = rows_out
        .iter()
        .filter(|r| r.rows == 10_000_000)
        .map(Row::speedup_fused)
        .fold(f64::INFINITY, f64::min);
    eprintln!("worst-case fused speedup at 10M rows: ×{worst_10m:.2}");
}
