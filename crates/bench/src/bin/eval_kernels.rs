//! Measures the retrieval-expression evaluation engines and writes
//! `BENCH_eval.json` and `BENCH_compressed.json` at the repository
//! root.
//!
//! **Engine comparison** (`BENCH_eval.json`): Figure-9-style range
//! selections (width δ ∈ {8, 64, 512}) over a uniform m = 1000 column,
//! reduced with Quine–McCluskey, then evaluated at 1M and 10M rows by:
//!
//! * `naive` — the literal-at-a-time evaluator with full-length
//!   temporaries ([`ebi_boolean::eval_expr_naive`]);
//! * `fused` — the serial fused kernels;
//! * `fused_summarized` — fused kernels plus segment-summary pruning;
//! * `fused_parallel` — the segment-range parallel splitter at all
//!   available cores (forced past the auto-serial heuristic).
//!
//! **Storage comparison** (`BENCH_compressed.json`): the same range
//! selections over columns at three skew levels (uniform, 90% hot,
//! 99% hot), each slice family repacked as dense, Roaring, and WAH
//! containers and evaluated compressed-domain via
//! [`ebi_boolean::eval_expr_stored`]. Reports median latency, bytes
//! stored, and bytes touched per engine.
//!
//! Every engine is checked bit-identical to naive and every query's
//! `vectors_accessed` is checked invariant under fusing, threading, and
//! container choice before any timing is recorded.
//!
//! Pass `--smoke` for a small-row CI run exercising every code path
//! and still emitting both JSON artefacts.

use ebi_bench::uniform_cells;
use ebi_bitvec::summary::summarize_slices;
use ebi_bitvec::{BitVec, KernelStats, SliceStorage, StoragePolicy};
use ebi_boolean::{
    eval_expr_naive, eval_expr_stored, eval_expr_summarized, eval_expr_tracked, qm, AccessTracker,
    FusedPlan,
};
use ebi_core::parallel::eval_plan_forced;
use ebi_core::EncodedBitmapIndex;
use ebi_storage::Cell;
use std::fmt::Write as _;
use std::time::Instant;

const M: u64 = 1000;
const DELTAS: [u64; 3] = [8, 64, 512];

/// Median wall-clock nanoseconds of `iters` runs of `f`.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    rows: usize,
    delta: u64,
    cubes: usize,
    vectors_accessed: usize,
    naive_ns: u128,
    fused_ns: u128,
    fused_summarized_ns: u128,
    fused_parallel_ns: u128,
}

impl Row {
    fn speedup_fused(&self) -> f64 {
        self.naive_ns as f64 / self.fused_ns as f64
    }
    fn speedup_parallel(&self) -> f64 {
        self.naive_ns as f64 / self.fused_parallel_ns as f64
    }
}

fn measure(rows: usize, iters: usize, threads: usize, out: &mut Vec<Row>) {
    eprintln!("building {rows}-row index (m = {M})…");
    let cells = uniform_cells(M, rows, 0xE7A1 ^ rows as u64);
    let index = EncodedBitmapIndex::build(cells).expect("build index");
    let dense: Vec<BitVec> = index.slices().iter().map(SliceStorage::to_dense).collect();
    let slices = &dense[..];
    let summaries = summarize_slices(slices);
    let k = index.width();

    for delta in DELTAS {
        let codes: Vec<u64> = (0..delta)
            .map(|v| index.mapping().code_of(v).expect("value mapped"))
            .collect();
        let expr = qm::minimize(&codes, &[], k);

        // Correctness gates: all engines bit-identical to naive, and the
        // paper's I/O metric unchanged by fusing/pruning/threading.
        let naive = eval_expr_naive(&expr, slices, rows);
        let mut t_fused = AccessTracker::new();
        assert_eq!(
            eval_expr_tracked(&expr, slices, rows, &mut t_fused),
            naive,
            "fused != naive"
        );
        let mut t_sum = AccessTracker::new();
        assert_eq!(
            eval_expr_summarized(&expr, slices, &summaries, rows, &mut t_sum),
            naive,
            "summarized != naive"
        );
        let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
        let mut ks = KernelStats::new();
        assert_eq!(
            eval_plan_forced(&plan, threads, &mut ks),
            naive,
            "parallel != naive"
        );
        for (engine, got) in [
            ("fused", t_fused.vectors_accessed()),
            ("summarized", t_sum.vectors_accessed()),
        ] {
            assert_eq!(
                got,
                expr.vectors_accessed(),
                "{engine} changed vectors_accessed at rows={rows} delta={delta}"
            );
        }

        let naive_ns = median_ns(iters, || {
            std::hint::black_box(eval_expr_naive(&expr, slices, rows));
        });
        let fused_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_tracked(&expr, slices, rows, &mut t));
        });
        let fused_summarized_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_summarized(
                &expr, slices, &summaries, rows, &mut t,
            ));
        });
        let fused_parallel_ns = median_ns(iters, || {
            let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
            let mut s = KernelStats::new();
            std::hint::black_box(eval_plan_forced(&plan, threads, &mut s));
        });

        let row = Row {
            rows,
            delta,
            cubes: expr.cubes().len(),
            vectors_accessed: expr.vectors_accessed(),
            naive_ns,
            fused_ns,
            fused_summarized_ns,
            fused_parallel_ns,
        };
        eprintln!(
            "rows={rows:>9} δ={delta:<4} naive={naive_ns:>12}ns fused={fused_ns:>12}ns \
             (×{:.2}) parallel={fused_parallel_ns:>12}ns (×{:.2})",
            row.speedup_fused(),
            row.speedup_parallel(),
        );
        out.push(row);
    }
}

/// Time-clustered skew: `hot_pct`% of rows carry four hot values, the
/// rest sweep the whole domain — the warehouse load pattern where the
/// high-order slices are long zero runs.
fn clustered_cells(rows: usize, m: u64, hot_pct: usize) -> Vec<Cell> {
    let head = rows * hot_pct / 100;
    (0..rows as u64)
        .map(|i| Cell::Value(if (i as usize) < head { i % 4 } else { i % m }))
        .collect()
}

struct CRow {
    skew: &'static str,
    delta: u64,
    storage: &'static str,
    median_ns: u128,
    bytes_stored: usize,
    bytes_touched: u64,
    compressed_chunks_skipped: u64,
    vectors_accessed: usize,
}

fn measure_compressed(rows: usize, iters: usize, out: &mut Vec<CRow>) {
    for (skew, hot_pct) in [("uniform", 0usize), ("skew90", 90), ("skew99", 99)] {
        eprintln!("building {rows}-row {skew} index for the storage comparison…");
        let cells = clustered_cells(rows, M, hot_pct);
        let index = EncodedBitmapIndex::build(cells).expect("build index");
        let k = index.width();
        let families: Vec<(&'static str, Vec<SliceStorage>)> = [
            ("dense", StoragePolicy::Dense),
            ("roaring", StoragePolicy::Roaring),
            ("wah", StoragePolicy::Wah),
        ]
        .into_iter()
        .map(|(name, policy)| {
            (
                name,
                index
                    .slices()
                    .iter()
                    .map(|s| s.repack(policy))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

        for delta in DELTAS {
            let codes: Vec<u64> = (0..delta)
                .map(|v| index.mapping().code_of(v).expect("value mapped"))
                .collect();
            let expr = qm::minimize(&codes, &[], k);

            let mut expect: Option<(BitVec, usize)> = None;
            for (name, family) in &families {
                let mut tracker = AccessTracker::new();
                let result = eval_expr_stored(&expr, family, None, rows, &mut tracker);
                // Correctness gates before timing: bit-identical results
                // and the container-independent access metric.
                match &expect {
                    None => expect = Some((result, tracker.vectors_accessed())),
                    Some((bits, va)) => {
                        assert_eq!(&result, bits, "{name} != dense at {skew} δ={delta}");
                        assert_eq!(
                            tracker.vectors_accessed(),
                            *va,
                            "{name} changed vectors_accessed at {skew} δ={delta}"
                        );
                    }
                }
                let bytes_stored = family
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| expr.support() >> i & 1 == 1)
                    .map(|(_, s)| s.storage_bytes())
                    .sum();
                let median = median_ns(iters, || {
                    let mut t = AccessTracker::new();
                    std::hint::black_box(eval_expr_stored(&expr, family, None, rows, &mut t));
                });
                eprintln!(
                    "{skew:<8} δ={delta:<4} {name:<8} {median:>12}ns bytes_touched={:>12} \
                     skipped={}",
                    tracker.bytes_touched, tracker.compressed_chunks_skipped,
                );
                out.push(CRow {
                    skew,
                    delta,
                    storage: name,
                    median_ns: median,
                    bytes_stored,
                    bytes_touched: tracker.bytes_touched,
                    compressed_chunks_skipped: tracker.compressed_chunks_skipped,
                    vectors_accessed: tracker.vectors_accessed(),
                });
            }
        }
    }
}

fn write_json(name: &str, json: &str) {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&path, json).expect("write benchmark json");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Force at least two workers so the segment-parallel splitter (not
    // its serial fallback) is what gets measured, even on one core.
    let threads = cores.max(2);
    let mut rows_out = Vec::new();
    if smoke {
        eprintln!("--smoke: small-row CI run");
        measure(300_000, 3, threads, &mut rows_out);
    } else {
        measure(1_000_000, 9, threads, &mut rows_out);
        measure(10_000_000, 5, threads, &mut rows_out);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"fig9-style range selections, m = {M}, QM-reduced\","
    );
    let _ = writeln!(
        json,
        "  \"engines\": [\"naive\", \"fused\", \"fused_summarized\", \"fused_parallel\"],"
    );
    let _ = writeln!(json, "  \"unit\": \"median wall-clock ns\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    if cores < 2 {
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes a single CPU: the parallel engine runs its real multi-worker path but cannot show wall-clock scaling here\","
        );
    }
    let _ = writeln!(
        json,
        "  \"invariants\": {{ \"bit_identical_to_naive\": true, \"vectors_accessed_unchanged\": true }},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows_out.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"rows\": {}, \"delta\": {}, \"cubes\": {}, \"vectors_accessed\": {}, \
             \"naive_ns\": {}, \"fused_ns\": {}, \"fused_summarized_ns\": {}, \
             \"fused_parallel_ns\": {}, \"speedup_fused_vs_naive\": {:.2}, \
             \"speedup_parallel_vs_naive\": {:.2} }}",
            r.rows,
            r.delta,
            r.cubes,
            r.vectors_accessed,
            r.naive_ns,
            r.fused_ns,
            r.fused_summarized_ns,
            r.fused_parallel_ns,
            r.speedup_fused(),
            r.speedup_parallel(),
        );
        json.push_str(if i + 1 < rows_out.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json("BENCH_eval.json", &json);
    println!("{json}");

    // Storage comparison: dense vs Roaring vs WAH, compressed-domain.
    let crows_count = if smoke { 400_000 } else { 4_000_000 };
    let citers = if smoke { 3 } else { 5 };
    let mut c_out = Vec::new();
    measure_compressed(crows_count, citers, &mut c_out);

    let mut cjson = String::from("{\n");
    let _ = writeln!(
        cjson,
        "  \"workload\": \"fig9-style range selections, m = {M}, QM-reduced, per-slice container comparison\","
    );
    let _ = writeln!(cjson, "  \"rows\": {crows_count},");
    let _ = writeln!(cjson, "  \"storages\": [\"dense\", \"roaring\", \"wah\"],");
    let _ = writeln!(cjson, "  \"unit\": \"median wall-clock ns\",");
    let _ = writeln!(cjson, "  \"smoke\": {smoke},");
    let _ = writeln!(
        cjson,
        "  \"invariants\": {{ \"bit_identical_across_storages\": true, \"vectors_accessed_unchanged\": true }},"
    );
    cjson.push_str("  \"results\": [\n");
    for (i, r) in c_out.iter().enumerate() {
        let _ = write!(
            cjson,
            "    {{ \"skew\": \"{}\", \"delta\": {}, \"storage\": \"{}\", \"median_ns\": {}, \
             \"bytes_stored\": {}, \"bytes_touched\": {}, \"compressed_chunks_skipped\": {}, \
             \"vectors_accessed\": {} }}",
            r.skew,
            r.delta,
            r.storage,
            r.median_ns,
            r.bytes_stored,
            r.bytes_touched,
            r.compressed_chunks_skipped,
            r.vectors_accessed,
        );
        cjson.push_str(if i + 1 < c_out.len() { ",\n" } else { "\n" });
    }
    cjson.push_str("  ]\n}\n");
    write_json("BENCH_compressed.json", &cjson);
    println!("{cjson}");

    let worst_10m = rows_out
        .iter()
        .filter(|r| r.rows == 10_000_000)
        .map(Row::speedup_fused)
        .fold(f64::INFINITY, f64::min);
    if !smoke {
        eprintln!("worst-case fused speedup at 10M rows: ×{worst_10m:.2}");
    }

    // Headline for the storage comparison: the skewed δ=512 workload.
    for skew in ["skew90", "skew99"] {
        let find = |storage: &str| {
            c_out
                .iter()
                .find(|r| r.skew == skew && r.delta == 512 && r.storage == storage)
        };
        if let (Some(d), Some(r), Some(w)) = (find("dense"), find("roaring"), find("wah")) {
            eprintln!(
                "{skew} δ=512: roaring ×{:.2} speedup, {:.1}× fewer bytes touched; \
                 wah ×{:.2} speedup, {:.1}× fewer bytes touched",
                d.median_ns as f64 / r.median_ns as f64,
                d.bytes_touched as f64 / r.bytes_touched.max(1) as f64,
                d.median_ns as f64 / w.median_ns as f64,
                d.bytes_touched as f64 / w.bytes_touched.max(1) as f64,
            );
        }
    }
}
