//! Measures the retrieval-expression evaluation engines and writes
//! `BENCH_eval.json` and `BENCH_compressed.json` at the repository
//! root.
//!
//! **Engine comparison** (`BENCH_eval.json`): Figure-9-style range
//! selections (width δ ∈ {8, 64, 512}) over a uniform m = 1000 column,
//! reduced with Quine–McCluskey, then evaluated at 1M and 10M rows by:
//!
//! * `naive` — the literal-at-a-time evaluator with full-length
//!   temporaries ([`ebi_boolean::eval_expr_naive`]);
//! * `fused` — the serial fused kernels;
//! * `fused_summarized` — fused kernels plus segment-summary pruning;
//! * `fused_parallel` — the segment-range parallel splitter at all
//!   available cores (forced past the auto-serial heuristic).
//!
//! **Storage comparison** (`BENCH_compressed.json`): the same range
//! selections over columns at three skew levels (uniform, 90% hot,
//! 99% hot), each slice family repacked as dense, Roaring, and WAH
//! containers and evaluated compressed-domain via
//! [`ebi_boolean::eval_expr_stored`]. Reports median latency, bytes
//! stored, and bytes touched per engine.
//!
//! Every engine is checked bit-identical to naive and every query's
//! `vectors_accessed` is checked invariant under fusing, threading, and
//! container choice before any timing is recorded.
//!
//! **Scaling curves** (`BENCH_scaling.json`, with `--scaling`):
//! best-of-N latency of the stored-container engine at each thread count
//! (1, 2, 4, … up to the host's cores) for every container family ×
//! range width, over a 90%-hot clustered column — the shape that
//! historically regressed the parallel splitter. A SIMD section times
//! the same dense plans with the kernel dispatcher pinned to the
//! scalar tier versus the best tier the host supports.
//!
//! Pass `--smoke` for a small-row CI run exercising every code path
//! and still emitting every JSON artefact; `--check` (implies
//! `--scaling`) makes the run self-validating: it exits non-zero if
//! the parallel path falls below 0.9× serial at any measured point or
//! the SIMD tier falls below 0.8× the scalar tier. `--out-dir DIR`
//! redirects the JSON artefacts (used to regenerate the committed
//! baselines).

use ebi_bench::uniform_cells;
use ebi_bitvec::simd::{self, KernelPath};
use ebi_bitvec::summary::summarize_slices;
use ebi_bitvec::{BitVec, KernelStats, SliceStorage, StoragePolicy};
use ebi_boolean::{
    eval_expr_naive, eval_expr_stored, eval_expr_summarized, eval_expr_tracked, qm, AccessTracker,
    FusedPlan, StoredPlan,
};
use ebi_core::parallel::{eval_plan_forced, eval_plan_stored_forced};
use ebi_core::EncodedBitmapIndex;
use ebi_storage::Cell;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Floor for `--check`: parallel latency may not exceed serial by more
/// than this ratio at any measured `(container, delta, threads)` point.
const PARALLEL_FLOOR_VS_SERIAL: f64 = 0.9;
/// Floor for `--check`: the dispatched SIMD tier must stay within
/// noise of the scalar tier (the scalar loops autovectorize, so parity
/// is expected on bandwidth-bound hosts; a real dispatch bug tanks it).
const SIMD_FLOOR_VS_SCALAR: f64 = 0.8;
/// Headline target: below this the JSON documents the hardware limit.
const SIMD_TARGET: f64 = 1.5;

const M: u64 = 1000;
const DELTAS: [u64; 3] = [8, 64, 512];

/// Median wall-clock nanoseconds of `iters` runs of `f`.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Best-of-`iters` wall-clock nanoseconds of `f`. Used where a ratio
/// of two timings feeds the CI regression gate: minima are far more
/// stable than medians under external scheduler interference.
fn min_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

struct Row {
    rows: usize,
    delta: u64,
    cubes: usize,
    vectors_accessed: usize,
    naive_ns: u128,
    fused_ns: u128,
    fused_summarized_ns: u128,
    fused_parallel_ns: u128,
}

impl Row {
    fn speedup_fused(&self) -> f64 {
        self.naive_ns as f64 / self.fused_ns as f64
    }
    fn speedup_parallel(&self) -> f64 {
        self.naive_ns as f64 / self.fused_parallel_ns as f64
    }
}

fn measure(rows: usize, iters: usize, threads: usize, out: &mut Vec<Row>) {
    eprintln!("building {rows}-row index (m = {M})…");
    let cells = uniform_cells(M, rows, 0xE7A1 ^ rows as u64);
    let index = EncodedBitmapIndex::build(cells).expect("build index");
    let dense: Vec<BitVec> = index.slices().iter().map(SliceStorage::to_dense).collect();
    let slices = &dense[..];
    let summaries = summarize_slices(slices);
    let k = index.width();

    for delta in DELTAS {
        let codes: Vec<u64> = (0..delta)
            .map(|v| index.mapping().code_of(v).expect("value mapped"))
            .collect();
        let expr = qm::minimize(&codes, &[], k);

        // Correctness gates: all engines bit-identical to naive, and the
        // paper's I/O metric unchanged by fusing/pruning/threading.
        let naive = eval_expr_naive(&expr, slices, rows);
        let mut t_fused = AccessTracker::new();
        assert_eq!(
            eval_expr_tracked(&expr, slices, rows, &mut t_fused),
            naive,
            "fused != naive"
        );
        let mut t_sum = AccessTracker::new();
        assert_eq!(
            eval_expr_summarized(&expr, slices, &summaries, rows, &mut t_sum),
            naive,
            "summarized != naive"
        );
        let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
        let mut ks = KernelStats::new();
        assert_eq!(
            eval_plan_forced(&plan, threads, &mut ks),
            naive,
            "parallel != naive"
        );
        for (engine, got) in [
            ("fused", t_fused.vectors_accessed()),
            ("summarized", t_sum.vectors_accessed()),
        ] {
            assert_eq!(
                got,
                expr.vectors_accessed(),
                "{engine} changed vectors_accessed at rows={rows} delta={delta}"
            );
        }

        let naive_ns = median_ns(iters, || {
            std::hint::black_box(eval_expr_naive(&expr, slices, rows));
        });
        let fused_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_tracked(&expr, slices, rows, &mut t));
        });
        let fused_summarized_ns = median_ns(iters, || {
            let mut t = AccessTracker::new();
            std::hint::black_box(eval_expr_summarized(
                &expr, slices, &summaries, rows, &mut t,
            ));
        });
        let fused_parallel_ns = median_ns(iters, || {
            let plan = FusedPlan::with_summaries(&expr, slices, &summaries, rows);
            let mut s = KernelStats::new();
            std::hint::black_box(eval_plan_forced(&plan, threads, &mut s));
        });

        let row = Row {
            rows,
            delta,
            cubes: expr.cubes().len(),
            vectors_accessed: expr.vectors_accessed(),
            naive_ns,
            fused_ns,
            fused_summarized_ns,
            fused_parallel_ns,
        };
        eprintln!(
            "rows={rows:>9} δ={delta:<4} naive={naive_ns:>12}ns fused={fused_ns:>12}ns \
             (×{:.2}) parallel={fused_parallel_ns:>12}ns (×{:.2})",
            row.speedup_fused(),
            row.speedup_parallel(),
        );
        out.push(row);
    }
}

/// Time-clustered skew: `hot_pct`% of rows carry four hot values, the
/// rest sweep the whole domain — the warehouse load pattern where the
/// high-order slices are long zero runs.
fn clustered_cells(rows: usize, m: u64, hot_pct: usize) -> Vec<Cell> {
    let head = rows * hot_pct / 100;
    (0..rows as u64)
        .map(|i| Cell::Value(if (i as usize) < head { i % 4 } else { i % m }))
        .collect()
}

struct CRow {
    skew: &'static str,
    delta: u64,
    storage: &'static str,
    median_ns: u128,
    bytes_stored: usize,
    bytes_touched: u64,
    compressed_chunks_skipped: u64,
    vectors_accessed: usize,
}

fn measure_compressed(rows: usize, iters: usize, out: &mut Vec<CRow>) {
    for (skew, hot_pct) in [("uniform", 0usize), ("skew90", 90), ("skew99", 99)] {
        eprintln!("building {rows}-row {skew} index for the storage comparison…");
        let cells = clustered_cells(rows, M, hot_pct);
        let index = EncodedBitmapIndex::build(cells).expect("build index");
        let k = index.width();
        let families: Vec<(&'static str, Vec<SliceStorage>)> = [
            ("dense", StoragePolicy::Dense),
            ("roaring", StoragePolicy::Roaring),
            ("wah", StoragePolicy::Wah),
        ]
        .into_iter()
        .map(|(name, policy)| {
            (
                name,
                index
                    .slices()
                    .iter()
                    .map(|s| s.repack(policy))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

        for delta in DELTAS {
            let codes: Vec<u64> = (0..delta)
                .map(|v| index.mapping().code_of(v).expect("value mapped"))
                .collect();
            let expr = qm::minimize(&codes, &[], k);

            let mut expect: Option<(BitVec, usize)> = None;
            for (name, family) in &families {
                let mut tracker = AccessTracker::new();
                let result = eval_expr_stored(&expr, family, None, rows, &mut tracker);
                // Correctness gates before timing: bit-identical results
                // and the container-independent access metric.
                match &expect {
                    None => expect = Some((result, tracker.vectors_accessed())),
                    Some((bits, va)) => {
                        assert_eq!(&result, bits, "{name} != dense at {skew} δ={delta}");
                        assert_eq!(
                            tracker.vectors_accessed(),
                            *va,
                            "{name} changed vectors_accessed at {skew} δ={delta}"
                        );
                    }
                }
                let bytes_stored = family
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| expr.support() >> i & 1 == 1)
                    .map(|(_, s)| s.storage_bytes())
                    .sum();
                let median = median_ns(iters, || {
                    let mut t = AccessTracker::new();
                    std::hint::black_box(eval_expr_stored(&expr, family, None, rows, &mut t));
                });
                eprintln!(
                    "{skew:<8} δ={delta:<4} {name:<8} {median:>12}ns bytes_touched={:>12} \
                     skipped={}",
                    tracker.bytes_touched, tracker.compressed_chunks_skipped,
                );
                out.push(CRow {
                    skew,
                    delta,
                    storage: name,
                    median_ns: median,
                    bytes_stored,
                    bytes_touched: tracker.bytes_touched,
                    compressed_chunks_skipped: tracker.compressed_chunks_skipped,
                    vectors_accessed: tracker.vectors_accessed(),
                });
            }
        }
    }
}

/// Deterministic Zipf-skewed column: head-heavy but *scattered* (no
/// pre-existing clustering) — the regime where build-time reordering
/// pays. `theta = 0` degenerates to uniform: reordering cannot help.
fn zipf_cells(rows: usize, m: u64, theta: f64, seed: u64) -> Vec<Cell> {
    // CDF over value ids 1..=m with weight 1/i^theta.
    let mut cdf: Vec<f64> = (1..=m).map(|i| 1.0 / (i as f64).powf(theta)).collect();
    let total: f64 = cdf.iter().sum();
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w / total;
        *w = acc;
    }
    // splitmix64 stream: seeded, stable across platforms.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..rows)
        .map(|_| {
            let u = next() as f64 / u64::MAX as f64;
            let v = cdf.partition_point(|&c| c < u) as u64;
            Cell::Value(v.min(m - 1))
        })
        .collect()
}

struct RRow {
    skew: &'static str,
    storage: &'static str,
    order: &'static str,
    median_ns: u128,
    bytes_stored: usize,
    bytes_touched: u64,
    compressed_chunks_skipped: u64,
    vectors_accessed: usize,
    slice_runs: u64,
    fill_word_fraction: f64,
}

/// Sorted-vs-unsorted comparison: the same scattered-skew column built
/// in original order and lexicographically reordered, per container
/// family. The query is a mid-tail IN-list (moderate selectivity), so
/// the O(matches) RID translation of the reordered index is priced in,
/// not hidden.
fn measure_reorder(rows: usize, iters: usize, out: &mut Vec<RRow>) {
    use ebi_core::index::{BuildOptions, QueryOptions};
    use ebi_core::RowOrder;
    const REORDER_M: u64 = 64;
    // Mid-tail band of a 64-value Zipf domain: rare enough that results
    // stay small, common enough that evaluation reads real data.
    let in_list: Vec<u64> = (9..17).collect();
    for (skew, theta) in [("uniform", 0.0), ("zipf0.8", 0.8), ("zipf1.2", 1.2)] {
        eprintln!("building {rows}-row {skew} indexes for the reorder comparison…");
        let cells = zipf_cells(rows, REORDER_M, theta, 0xEB1_0007);
        for order in [RowOrder::Original, RowOrder::Lexicographic] {
            let mut index = EncodedBitmapIndex::build_with(
                cells.iter().copied(),
                BuildOptions {
                    row_order: order,
                    ..Default::default()
                },
            )
            .expect("build index");
            for (name, policy) in [
                ("dense", StoragePolicy::Dense),
                ("roaring", StoragePolicy::Roaring),
                ("wah", StoragePolicy::Wah),
            ] {
                index.set_query_options(QueryOptions {
                    storage_policy: policy,
                    ..Default::default()
                });
                let result = index.in_list(&in_list).expect("query");
                let median = median_ns(iters, || {
                    std::hint::black_box(index.in_list(&in_list).expect("query"));
                });
                let rs = index.run_stats();
                eprintln!(
                    "{skew:<8} {name:<8} {:<14} {median:>12}ns stored={:>10} skipped={:>8} runs={}",
                    order.as_str(),
                    index.storage_bytes(),
                    result.stats.compressed_chunks_skipped,
                    rs.runs,
                );
                out.push(RRow {
                    skew,
                    storage: name,
                    order: order.as_str(),
                    median_ns: median,
                    bytes_stored: index.storage_bytes(),
                    bytes_touched: result.stats.bytes_touched,
                    compressed_chunks_skipped: result.stats.compressed_chunks_skipped,
                    vectors_accessed: result.stats.vectors_accessed,
                    slice_runs: rs.runs,
                    fill_word_fraction: rs.fill_word_fraction(),
                });
            }
        }
        // Correctness gate: sorted results must equal original-order
        // results (both report original row ids).
        let plain = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
        let sorted = EncodedBitmapIndex::build_with(
            cells.iter().copied(),
            BuildOptions {
                row_order: RowOrder::Lexicographic,
                ..Default::default()
            },
        )
        .expect("build");
        assert_eq!(
            plain.in_list(&in_list).expect("query").bitmap,
            sorted.in_list(&in_list).expect("query").bitmap,
            "reordered results diverged at {skew}"
        );
    }
}

/// Thread counts to sweep: 1, the powers of two below the core count,
/// and the core count itself. `[1]` on a single-core host.
fn thread_counts(cores: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut n = 2;
    while n < cores {
        counts.push(n);
        n *= 2;
    }
    if cores > 1 {
        counts.push(cores);
    }
    counts
}

struct SRow {
    container: &'static str,
    delta: u64,
    threads: usize,
    best_ns: u128,
    speedup_vs_serial: f64,
}

/// Per-thread-count latency curves for every stored container family ×
/// range width, over the 90%-hot clustered column. Every multi-thread
/// result is correctness-gated bit-identical to the serial result
/// before timing.
fn measure_scaling(rows: usize, iters: usize, counts: &[usize], out: &mut Vec<SRow>) {
    eprintln!("building {rows}-row skew90 index for the scaling curves…");
    let cells = clustered_cells(rows, M, 90);
    let index = EncodedBitmapIndex::build(cells).expect("build index");
    let dense: Vec<BitVec> = index.slices().iter().map(SliceStorage::to_dense).collect();
    // Summaries describe bit content, so the dense-derived summaries
    // stay valid for every repacked family.
    let summaries = summarize_slices(&dense);
    let k = index.width();
    let families: Vec<(&'static str, Vec<SliceStorage>)> = [
        ("dense", StoragePolicy::Dense),
        ("roaring", StoragePolicy::Roaring),
        ("wah", StoragePolicy::Wah),
    ]
    .into_iter()
    .map(|(name, policy)| {
        (
            name,
            index
                .slices()
                .iter()
                .map(|s| s.repack(policy))
                .collect::<Vec<_>>(),
        )
    })
    .collect();

    for (name, family) in &families {
        for delta in DELTAS {
            let codes: Vec<u64> = (0..delta)
                .map(|v| index.mapping().code_of(v).expect("value mapped"))
                .collect();
            let expr = qm::minimize(&codes, &[], k);
            let plan = StoredPlan::with_summaries(&expr, family, &summaries, rows);

            let mut serial_stats = KernelStats::new();
            let serial = eval_plan_stored_forced(&plan, 1, &mut serial_stats);
            let serial_ns = min_ns(iters, || {
                let mut s = KernelStats::new();
                std::hint::black_box(eval_plan_stored_forced(&plan, 1, &mut s));
            });
            out.push(SRow {
                container: name,
                delta,
                threads: 1,
                best_ns: serial_ns,
                speedup_vs_serial: 1.0,
            });

            for &t in counts.iter().filter(|&&t| t > 1) {
                let mut s = KernelStats::new();
                assert_eq!(
                    eval_plan_stored_forced(&plan, t, &mut s),
                    serial,
                    "{name} δ={delta}: {t}-thread result != serial"
                );
                let ns = min_ns(iters, || {
                    let mut s = KernelStats::new();
                    std::hint::black_box(eval_plan_stored_forced(&plan, t, &mut s));
                });
                let speedup = serial_ns as f64 / ns as f64;
                eprintln!(
                    "{name:<8} δ={delta:<4} threads={t:<3} {ns:>12}ns (×{speedup:.2} vs serial)"
                );
                out.push(SRow {
                    container: name,
                    delta,
                    threads: t,
                    best_ns: ns,
                    speedup_vs_serial: speedup,
                });
            }
            eprintln!("{name:<8} δ={delta:<4} threads=1   {serial_ns:>12}ns (serial baseline)");
        }
    }
}

struct SimdRow {
    rows: usize,
    delta: u64,
    scalar_ns: u128,
    simd_ns: u128,
    kernel_path: &'static str,
    speedup: f64,
}

/// Scalar-tier versus best-tier latency for the dense fused plans. The
/// two runs are correctness-gated bit-identical before timing, and the
/// dispatched tier is read back from [`KernelStats::kernel_path`].
fn measure_simd(rows: usize, iters: usize, out: &mut Vec<SimdRow>) {
    eprintln!("building {rows}-row dense index for the SIMD comparison…");
    let cells = uniform_cells(M, rows, 0x51D ^ rows as u64);
    let index = EncodedBitmapIndex::build(cells).expect("build index");
    let dense: Vec<BitVec> = index.slices().iter().map(SliceStorage::to_dense).collect();
    let summaries = summarize_slices(&dense);
    let k = index.width();

    for delta in DELTAS {
        let codes: Vec<u64> = (0..delta)
            .map(|v| index.mapping().code_of(v).expect("value mapped"))
            .collect();
        let expr = qm::minimize(&codes, &[], k);
        let plan = FusedPlan::with_summaries(&expr, &dense, &summaries, rows);

        simd::force_path_global(Some(KernelPath::Scalar));
        let mut ks_scalar = KernelStats::new();
        let scalar_result = plan.eval(&mut ks_scalar);
        assert_eq!(ks_scalar.kernel_path(), "scalar", "scalar pin ignored");
        simd::force_path_global(None);
        let mut ks_best = KernelStats::new();
        let best_result = plan.eval(&mut ks_best);
        assert_eq!(
            best_result,
            scalar_result,
            "{} tier != scalar tier at δ={delta}",
            ks_best.kernel_path()
        );

        // Interleave the two tiers so scheduler interference hits both
        // sides of the ratio alike. The reported speedup is the median
        // of the per-pair ratios: adjacent runs see the same
        // environment, so the ratio is stable even when the host is
        // noisy, and the median discards outlier pairs on both tails.
        let time_once = |plan: &FusedPlan<'_>| {
            let t0 = Instant::now();
            let mut s = KernelStats::new();
            std::hint::black_box(plan.eval(&mut s));
            t0.elapsed().as_nanos()
        };
        let mut scalar_ns = u128::MAX;
        let mut simd_ns = u128::MAX;
        let mut ratios: Vec<f64> = Vec::with_capacity(iters);
        for _ in 0..iters {
            simd::force_path_global(Some(KernelPath::Scalar));
            let s = time_once(&plan);
            simd::force_path_global(None);
            let v = time_once(&plan);
            scalar_ns = scalar_ns.min(s);
            simd_ns = simd_ns.min(v);
            ratios.push(s as f64 / v as f64);
        }
        ratios.sort_by(f64::total_cmp);
        let speedup = ratios[ratios.len() / 2];

        let row = SimdRow {
            rows,
            delta,
            scalar_ns,
            simd_ns,
            kernel_path: ks_best.kernel_path(),
            speedup,
        };
        eprintln!(
            "simd     δ={delta:<4} scalar={scalar_ns:>12}ns {}={simd_ns:>12}ns (×{:.2})",
            row.kernel_path, row.speedup,
        );
        out.push(row);
    }
    simd::force_path_global(None);
}

fn write_json(out_dir: Option<&Path>, name: &str, json: &str) {
    let root;
    let dir = match out_dir {
        Some(d) => d,
        None => {
            root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
            &root
        }
    };
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(name);
    std::fs::write(&path, json).expect("write benchmark json");
    eprintln!("wrote {}", path.display());
}

const USAGE: &str =
    "eval_kernels — evaluation-engine benchmarks (BENCH_eval/compressed/scaling.json)

USAGE:
    eval_kernels [--smoke] [--scaling] [--check] [--out-dir DIR]

FLAGS:
    --smoke         small-row CI run, every code path, every artefact
    --scaling       also produce the thread/SIMD scaling curves
    --check         self-validating run (implies --scaling): non-zero
                    exit if parallel or SIMD falls below its floor
    --out-dir DIR   write the JSON artefacts into DIR instead of the
                    repository root (used to regenerate baselines)
    -h, --help      print this help

Unknown flags are an error.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut check = false;
    let mut scaling = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--scaling" => scaling = true,
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => out_dir = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("error: --out-dir needs a path\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let scaling = check || scaling;
    let out_dir = out_dir.as_deref();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Force at least two workers so the segment-parallel splitter (not
    // its serial fallback) is what gets measured, even on one core.
    let threads = cores.max(2);
    let mut rows_out = Vec::new();
    if smoke {
        eprintln!("--smoke: small-row CI run");
        // Enough iterations that the medians are stable: the regression
        // gate compares these speedups at 15% tolerance.
        measure(300_000, 15, threads, &mut rows_out);
    } else {
        measure(1_000_000, 9, threads, &mut rows_out);
        measure(10_000_000, 5, threads, &mut rows_out);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"ebi.bench_eval.v1\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"fig9-style range selections, m = {M}, QM-reduced\","
    );
    let _ = writeln!(
        json,
        "  \"engines\": [\"naive\", \"fused\", \"fused_summarized\", \"fused_parallel\"],"
    );
    let _ = writeln!(json, "  \"unit\": \"median wall-clock ns\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    if cores < 2 {
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes a single CPU: the parallel engine runs its real multi-worker path but cannot show wall-clock scaling here\","
        );
    }
    let _ = writeln!(
        json,
        "  \"invariants\": {{ \"bit_identical_to_naive\": true, \"vectors_accessed_unchanged\": true }},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows_out.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"rows\": {}, \"delta\": {}, \"cubes\": {}, \"vectors_accessed\": {}, \
             \"naive_ns\": {}, \"fused_ns\": {}, \"fused_summarized_ns\": {}, \
             \"fused_parallel_ns\": {}, \"speedup_fused_vs_naive\": {:.2}, \
             \"speedup_parallel_vs_naive\": {:.2} }}",
            r.rows,
            r.delta,
            r.cubes,
            r.vectors_accessed,
            r.naive_ns,
            r.fused_ns,
            r.fused_summarized_ns,
            r.fused_parallel_ns,
            r.speedup_fused(),
            r.speedup_parallel(),
        );
        json.push_str(if i + 1 < rows_out.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json(out_dir, "BENCH_eval.json", &json);
    println!("{json}");

    // Storage comparison: dense vs Roaring vs WAH, compressed-domain.
    let crows_count = if smoke { 400_000 } else { 4_000_000 };
    let citers = if smoke { 3 } else { 5 };
    let mut c_out = Vec::new();
    measure_compressed(crows_count, citers, &mut c_out);
    let mut r_out = Vec::new();
    measure_reorder(crows_count, citers, &mut r_out);

    let mut cjson = String::from("{\n");
    let _ = writeln!(cjson, "  \"schema\": \"ebi.bench_compressed.v2\",");
    let _ = writeln!(
        cjson,
        "  \"workload\": \"fig9-style range selections, m = {M}, QM-reduced, per-slice container comparison\","
    );
    let _ = writeln!(cjson, "  \"rows\": {crows_count},");
    let _ = writeln!(cjson, "  \"storages\": [\"dense\", \"roaring\", \"wah\"],");
    let _ = writeln!(cjson, "  \"unit\": \"median wall-clock ns\",");
    let _ = writeln!(cjson, "  \"smoke\": {smoke},");
    let _ = writeln!(
        cjson,
        "  \"invariants\": {{ \"bit_identical_across_storages\": true, \"vectors_accessed_unchanged\": true }},"
    );
    cjson.push_str("  \"results\": [\n");
    for (i, r) in c_out.iter().enumerate() {
        let _ = write!(
            cjson,
            "    {{ \"skew\": \"{}\", \"delta\": {}, \"storage\": \"{}\", \"median_ns\": {}, \
             \"bytes_stored\": {}, \"bytes_touched\": {}, \"compressed_chunks_skipped\": {}, \
             \"vectors_accessed\": {} }}",
            r.skew,
            r.delta,
            r.storage,
            r.median_ns,
            r.bytes_stored,
            r.bytes_touched,
            r.compressed_chunks_skipped,
            r.vectors_accessed,
        );
        cjson.push_str(if i + 1 < c_out.len() { ",\n" } else { "\n" });
    }
    cjson.push_str("  ],\n");
    let _ = writeln!(
        cjson,
        "  \"reorder_workload\": \"mid-tail IN-list over a scattered m = 64 Zipf column, \
         original vs lexicographic build order, full query path including RID translation\","
    );
    let _ = writeln!(
        cjson,
        "  \"row_orders\": [\"original\", \"lexicographic\"],"
    );
    cjson.push_str("  \"reorder_results\": [\n");
    for (i, r) in r_out.iter().enumerate() {
        let _ = write!(
            cjson,
            "    {{ \"skew\": \"{}\", \"storage\": \"{}\", \"order\": \"{}\", \
             \"median_ns\": {}, \"bytes_stored\": {}, \"bytes_touched\": {}, \
             \"compressed_chunks_skipped\": {}, \"vectors_accessed\": {}, \
             \"slice_runs\": {}, \"fill_word_fraction\": {:.4} }}",
            r.skew,
            r.storage,
            r.order,
            r.median_ns,
            r.bytes_stored,
            r.bytes_touched,
            r.compressed_chunks_skipped,
            r.vectors_accessed,
            r.slice_runs,
            r.fill_word_fraction,
        );
        cjson.push_str(if i + 1 < r_out.len() { ",\n" } else { "\n" });
    }
    cjson.push_str("  ]\n}\n");
    write_json(out_dir, "BENCH_compressed.json", &cjson);
    println!("{cjson}");

    if scaling {
        let srows = if smoke { 400_000 } else { 4_000_000 };
        let simd_rows = if smoke { 300_000 } else { 10_000_000 };
        let siters = if smoke { 9 } else { 7 };
        let counts = thread_counts(cores);
        let mut s_out = Vec::new();
        let mut simd_out = Vec::new();
        measure_scaling(srows, siters, &counts, &mut s_out);
        measure_simd(simd_rows, siters, &mut simd_out);

        let best_simd = simd_out.iter().map(|r| r.speedup).fold(0.0_f64, f64::max);
        let mut notes: Vec<String> = Vec::new();
        if cores < 2 {
            notes.push(
                "host exposes a single core: the thread sweep degenerates to threads=1; \
                 the multi-worker splitter is still exercised (forced) by the engine \
                 comparison above and by the work-stealing unit tests"
                    .into(),
            );
        }
        if best_simd < SIMD_TARGET {
            notes.push(format!(
                "best SIMD speedup ×{best_simd:.2} is below the ×{SIMD_TARGET:.1} target: the \
                 scalar tier autovectorizes and the fused kernels are memory-bandwidth-bound on \
                 this host, so explicit SIMD shows parity rather than a win; dispatch is \
                 verified functionally (kernel_path) and bit-exactly (differential tests)"
            ));
        }

        let mut sjson = String::from("{\n");
        let _ = writeln!(sjson, "  \"schema\": \"ebi.bench_scaling.v1\",");
        let _ = writeln!(
            sjson,
            "  \"workload\": \"skew90 clustered range selections, m = {M}, QM-reduced, stored containers\","
        );
        let _ = writeln!(sjson, "  \"rows\": {srows},");
        let _ = writeln!(sjson, "  \"simd_rows\": {simd_rows},");
        let _ = writeln!(sjson, "  \"unit\": \"best-of-N wall-clock ns\",");
        let _ = writeln!(sjson, "  \"smoke\": {smoke},");
        let _ = writeln!(sjson, "  \"host_threads\": {cores},");
        let _ = write!(sjson, "  \"thread_counts\": [");
        for (i, t) in counts.iter().enumerate() {
            let _ = write!(sjson, "{}{t}", if i > 0 { ", " } else { "" });
        }
        sjson.push_str("],\n");
        let _ = writeln!(
            sjson,
            "  \"kernel_path\": \"{}\",",
            simd::detected_path().name()
        );
        let _ = writeln!(
            sjson,
            "  \"check\": {{ \"parallel_floor_vs_serial\": {PARALLEL_FLOOR_VS_SERIAL}, \
             \"simd_floor_vs_scalar\": {SIMD_FLOOR_VS_SCALAR} }},"
        );
        let _ = writeln!(
            sjson,
            "  \"invariants\": {{ \"bit_identical_across_threads\": true, \
             \"bit_identical_across_kernel_paths\": true }},"
        );
        sjson.push_str("  \"results\": [\n");
        for (i, r) in s_out.iter().enumerate() {
            let _ = write!(
                sjson,
                "    {{ \"container\": \"{}\", \"delta\": {}, \"threads\": {}, \
                 \"best_ns\": {}, \"speedup_vs_serial\": {:.3} }}",
                r.container, r.delta, r.threads, r.best_ns, r.speedup_vs_serial,
            );
            sjson.push_str(if i + 1 < s_out.len() { ",\n" } else { "\n" });
        }
        sjson.push_str("  ],\n  \"simd\": [\n");
        for (i, r) in simd_out.iter().enumerate() {
            let _ = write!(
                sjson,
                "    {{ \"rows\": {}, \"delta\": {}, \"scalar_ns\": {}, \"simd_ns\": {}, \
                 \"kernel_path\": \"{}\", \"speedup_simd_vs_scalar\": {:.3} }}",
                r.rows, r.delta, r.scalar_ns, r.simd_ns, r.kernel_path, r.speedup,
            );
            sjson.push_str(if i + 1 < simd_out.len() { ",\n" } else { "\n" });
        }
        sjson.push_str("  ],\n  \"notes\": [\n");
        for (i, n) in notes.iter().enumerate() {
            let _ = write!(sjson, "    \"{n}\"");
            sjson.push_str(if i + 1 < notes.len() { ",\n" } else { "\n" });
        }
        sjson.push_str("  ]\n}\n");
        write_json(out_dir, "BENCH_scaling.json", &sjson);
        println!("{sjson}");

        if check {
            let mut failures: Vec<String> = Vec::new();
            for r in &s_out {
                if r.speedup_vs_serial < PARALLEL_FLOOR_VS_SERIAL {
                    failures.push(format!(
                        "{} δ={} threads={}: parallel is ×{:.3} of serial (floor {:.2})",
                        r.container,
                        r.delta,
                        r.threads,
                        r.speedup_vs_serial,
                        PARALLEL_FLOOR_VS_SERIAL,
                    ));
                }
            }
            for r in &simd_out {
                if r.speedup < SIMD_FLOOR_VS_SCALAR {
                    failures.push(format!(
                        "simd δ={}: {} tier is ×{:.3} of scalar (floor {:.2})",
                        r.delta, r.kernel_path, r.speedup, SIMD_FLOOR_VS_SCALAR,
                    ));
                }
            }
            if failures.is_empty() {
                eprintln!(
                    "--check passed: parallel ≥ {PARALLEL_FLOOR_VS_SERIAL}× serial at every \
                     point; {} tier ≥ {SIMD_FLOOR_VS_SCALAR}× scalar",
                    simd::detected_path().name()
                );
            } else {
                for f in &failures {
                    eprintln!("--check FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
    }

    let worst_10m = rows_out
        .iter()
        .filter(|r| r.rows == 10_000_000)
        .map(Row::speedup_fused)
        .fold(f64::INFINITY, f64::min);
    if !smoke {
        eprintln!("worst-case fused speedup at 10M rows: ×{worst_10m:.2}");
    }

    // Headline for the storage comparison: the skewed δ=512 workload.
    for skew in ["skew90", "skew99"] {
        let find = |storage: &str| {
            c_out
                .iter()
                .find(|r| r.skew == skew && r.delta == 512 && r.storage == storage)
        };
        if let (Some(d), Some(r), Some(w)) = (find("dense"), find("roaring"), find("wah")) {
            eprintln!(
                "{skew} δ=512: roaring ×{:.2} speedup, {:.1}× fewer bytes touched; \
                 wah ×{:.2} speedup, {:.1}× fewer bytes touched",
                d.median_ns as f64 / r.median_ns as f64,
                d.bytes_touched as f64 / r.bytes_touched.max(1) as f64,
                d.median_ns as f64 / w.median_ns as f64,
                d.bytes_touched as f64 / w.bytes_touched.max(1) as f64,
            );
        }
    }
}
