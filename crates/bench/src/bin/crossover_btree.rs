//! Experiment E12 — §2.1 space crossover between simple bitmap indexes
//! and B-trees: `m < 11.52 · p / M` (≈ 93 at p = 4K, M = 512).
//!
//! Prints the analytic model next to measured footprints of real
//! structures over the same data and locates the measured crossover.

use ebi_analysis::report::TextTable;
use ebi_baselines::{SelectionIndex, SimpleBitmapIndex, ValueListIndex};
use ebi_bench::{uniform_cells, write_result};
use ebi_btree::model;

fn main() {
    let rows = 200_000usize;
    let (degree_m, page_p) = (512usize, 4096usize);
    println!(
        "analytic crossover: m < {:.2}",
        model::bitmap_smaller_than_btree_cardinality(page_p as u64, degree_m as u64)
    );

    let mut table = TextTable::new([
        "m",
        "bitmap_bytes(model)",
        "bitmap_bytes(measured)",
        "btree_bytes(model)",
        "btree_bytes(measured)",
        "bitmap_smaller",
    ]);
    let mut measured_crossover: Option<u64> = None;
    for m in [2u64, 8, 16, 32, 48, 64, 80, 92, 96, 112, 128, 192, 256, 512] {
        let cells = uniform_cells(m, rows, 0xC40 + m);
        let bitmap = SimpleBitmapIndex::build(cells.iter().copied());
        let btree = ValueListIndex::build_with(cells.iter().copied(), degree_m, page_p);
        let bitmap_bytes = SelectionIndex::storage_bytes(&bitmap);
        let btree_bytes = SelectionIndex::storage_bytes(&btree);
        let smaller = bitmap_bytes < btree_bytes;
        if !smaller && measured_crossover.is_none() {
            measured_crossover = Some(m);
        }
        table.row([
            m.to_string(),
            format!("{:.0}", model::simple_bitmap_space_bytes(rows as u64, m)),
            bitmap_bytes.to_string(),
            format!(
                "{:.0}",
                model::btree_space_bytes(rows as u64, degree_m as u64, page_p as u64)
            ),
            btree_bytes.to_string(),
            smaller.to_string(),
        ]);
    }
    println!("== §2.1 bitmap vs B-tree space, {rows} rows, M={degree_m}, p={page_p} ==");
    println!("{}", table.render());
    match measured_crossover {
        Some(m) => println!("measured crossover at m ≈ {m} (paper: 93)"),
        None => println!("bitmap stayed smaller over the whole sweep"),
    }
    write_result("crossover_btree.csv", &table.to_csv());
}
