//! Experiment E22 (extension) — working-set behaviour under a bounded
//! buffer pool: the encoded index's `ceil(log2 m)` vectors fit in a
//! small pool and stop touching disk, while the simple index's `m`
//! vectors thrash the same pool under a range-search workload.
//!
//! Sweeps the pool capacity and reports disk reads per query for both.

use ebi_analysis::report::TextTable;
use ebi_baselines::{SelectionIndex, SimpleBitmapIndex};
use ebi_bench::{uniform_cells, write_result};
use ebi_core::paged::persist_and_open;
use ebi_core::EncodedBitmapIndex;
use ebi_storage::buffer::BufferPool;
use ebi_storage::pager::Pager;
use ebi_storage::segment::{read_segment_buffered, write_segment, SegmentHandle};
use ebi_warehouse::workload::{Predicate, WorkloadSpec};

fn main() {
    let m = 256u64;
    let rows = 100_000usize;
    let page = 4096usize;
    let cells = uniform_cells(m, rows, 0xB5);
    let workload = WorkloadSpec::tpcd_like("a", m, 100, 0xB6).generate();

    // Encoded: persisted index, queried through its pool.
    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
    // Simple: persist each value vector as a segment; a query ORs the
    // vectors it needs, reading them through the same-size pool.
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let simple_pager = Pager::with_page_size(page);
    let simple_segments: Vec<(u64, SegmentHandle)> = simple
        .values()
        .iter()
        .map(|&v| {
            let bitmap = SelectionIndex::eq(&simple, v).bitmap;
            (
                v,
                write_segment(&simple_pager, &bitmap.to_bytes()).expect("persist"),
            )
        })
        .collect();

    let vector_pages = (rows / 8 + 8).div_ceil(page);
    println!(
        "working sets: encoded {} vectors ({} pages), simple {} vectors ({} pages)",
        encoded.width(),
        encoded.width() as usize * vector_pages,
        m,
        m as usize * vector_pages
    );

    let mut table = TextTable::new([
        "pool_pages",
        "encoded_disk_reads",
        "encoded_hit_ratio",
        "simple_disk_reads",
        "simple_hit_ratio",
    ]);
    for pool_pages in [4usize, 8, 16, 32, 64, 128, 512, 2048] {
        // Encoded side.
        let enc_pager = Pager::with_page_size(page);
        let paged = persist_and_open(&encoded, &enc_pager, pool_pages).expect("open");
        enc_pager.reset_stats();
        for q in &workload {
            let _ = match &q.predicate {
                Predicate::Eq(v) => paged.eq(*v),
                Predicate::InList(vs) => paged.in_list(vs),
                Predicate::Range(lo, hi) => paged.range(*lo, *hi),
            }
            .expect("query");
        }
        let enc_reads = enc_pager.stats().page_reads;
        let enc_ratio = paged.pool_stats().hit_ratio();

        // Simple side: same workload through an LRU pool of equal size.
        let pool = BufferPool::new(&simple_pager, pool_pages);
        simple_pager.reset_stats();
        for q in &workload {
            let values: Vec<u64> = match &q.predicate {
                Predicate::Eq(v) => vec![*v],
                Predicate::InList(vs) => vs.clone(),
                Predicate::Range(lo, hi) => (*lo..=*hi).collect(),
            };
            for v in values {
                if let Some((_, h)) = simple_segments.iter().find(|(sv, _)| *sv == v) {
                    let _ = read_segment_buffered(&pool, page, h).expect("read");
                }
            }
        }
        let sim_reads = simple_pager.stats().page_reads;
        let sim_ratio = pool.stats().hit_ratio();

        table.row([
            pool_pages.to_string(),
            enc_reads.to_string(),
            format!("{enc_ratio:.3}"),
            sim_reads.to_string(),
            format!("{sim_ratio:.3}"),
        ]);
    }
    println!("== buffer-pool sweep: disk page reads over 100 queries (m = {m}, {rows} rows) ==");
    println!("{}", table.render());
    write_result("buffer_sweep.csv", &table.to_csv());
}
