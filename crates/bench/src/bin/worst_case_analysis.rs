//! Experiment E11 — §3.2 worst-case analysis: the area ratios between
//! the Figure 9 best-case curve and the worst-case line, and the peak
//! savings.
//!
//! Paper values: ratio ≈ 0.84 at |A| = 50, ≈ 0.90 at |A| = 1000;
//! savings up to 83% (δ = 32, |A| = 50) and 90% (δ = 512, |A| = 1000).

use ebi_analysis::report::TextTable;
use ebi_analysis::worst_case::summary;

fn main() {
    let mut table = TextTable::new([
        "|A|",
        "area_ratio(measured)",
        "area_ratio(paper)",
        "peak_saving(measured)",
        "peak_delta",
        "peak_saving(paper)",
    ]);
    for (m, paper_ratio, paper_saving) in [(50u64, 0.84, "83% @ δ=32"), (1000, 0.90, "90% @ δ=512")]
    {
        let s = summary(m);
        table.row([
            m.to_string(),
            format!("{:.3}", s.area_ratio),
            format!("{paper_ratio:.2}"),
            format!("{:.1}%", s.peak_saving * 100.0),
            s.peak_delta.to_string(),
            paper_saving.to_string(),
        ]);
    }
    println!("== §3.2 worst-case analysis ==");
    println!("{}", table.render());
    ebi_bench::write_result("worst_case.csv", &table.to_csv());
}
