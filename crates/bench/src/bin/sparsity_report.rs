//! Experiment E14 — §3.1 sparsity: simple bitmap vectors average
//! `(m-1)/m` zeros; encoded vectors sit near 1/2 independent of `m`.
//!
//! Also reports WAH compression ratios on both, showing the trade the
//! encoded index makes: its dense vectors barely compress, but there
//! are only `ceil(log2 m)` of them.

use ebi_analysis::report::TextTable;
use ebi_baselines::{SelectionIndex, SimpleBitmapIndex};
use ebi_bench::{uniform_cells, write_result};
use ebi_bitvec::wah::WahBitmap;
use ebi_core::EncodedBitmapIndex;

fn main() {
    let rows = 100_000usize;
    let mut table = TextTable::new([
        "m",
        "simple_sparsity(model)",
        "simple_sparsity(measured)",
        "encoded_sparsity(model)",
        "encoded_sparsity(measured)",
        "simple_wah_ratio",
        "encoded_wah_ratio",
        "simple_wah_bytes",
        "encoded_raw_bytes",
    ]);
    for m in [2u64, 8, 32, 100, 500, 1000, 4000] {
        let cells = uniform_cells(m, rows, 0x5BA + m);
        let simple = SimpleBitmapIndex::build(cells.iter().copied());
        let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build EBI");

        // Mean WAH ratio across each family's vectors.
        let simple_vec_count = simple.bitmap_vector_count();
        let simple_wah: Vec<WahBitmap> = simple
            .values()
            .iter()
            .map(|&v| {
                let r = SelectionIndex::eq(&simple, v);
                WahBitmap::compress(&r.bitmap)
            })
            .collect();
        let simple_wah_bytes: usize = simple_wah.iter().map(WahBitmap::storage_bytes).sum();
        let simple_ratio = simple_wah
            .iter()
            .map(WahBitmap::compression_ratio)
            .sum::<f64>()
            / simple_vec_count as f64;
        let encoded_wah: Vec<WahBitmap> = encoded
            .slices()
            .iter()
            .map(|s| WahBitmap::compress(&s.to_dense()))
            .collect();
        let encoded_ratio = encoded_wah
            .iter()
            .map(WahBitmap::compression_ratio)
            .sum::<f64>()
            / encoded_wah.len() as f64;

        table.row([
            m.to_string(),
            format!("{:.4}", (m - 1) as f64 / m as f64),
            format!("{:.4}", simple.mean_sparsity()),
            "0.5000".to_string(),
            format!("{:.4}", encoded.mean_sparsity()),
            format!("{simple_ratio:.3}"),
            format!("{encoded_ratio:.3}"),
            simple_wah_bytes.to_string(),
            encoded
                .slices()
                .iter()
                .map(|s| s.to_dense().storage_bytes())
                .sum::<usize>()
                .to_string(),
        ]);
    }
    println!("== §3.1 sparsity and compressibility ({rows} rows, uniform) ==");
    println!("{}", table.render());
    write_result("sparsity.csv", &table.to_csv());
}
