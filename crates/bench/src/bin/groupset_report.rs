//! Experiment E17 — §4 group-set index: 3 Group-By attributes of
//! cardinalities 100 × 200 × 500 mean 10⁷ possible combinations — 10⁷
//! simple bitmap vectors — while the encoded group-set needs
//! `ceil(log2 combos)`: 24 for all combinations, **20** for the 10⁶
//! "meaningful" ones of footnote 5.
//!
//! The paper-scale numbers are arithmetic; the measured side builds a
//! real group-set index at reduced scale and verifies the log-shaped
//! vector count and exact Group-By answers.

use ebi_analysis::report::TextTable;
use ebi_bench::{uniform_cells, write_result, zipf_cells};
use ebi_warehouse::groupset::GroupSetIndex;

fn main() {
    println!("== §4 group-set arithmetic at paper scale ==");
    let possible: u64 = 100 * 200 * 500;
    println!("possible combinations : {possible} (simple bitmap vectors needed)");
    println!(
        "encoded, all combos    : {} vectors",
        (possible as f64).log2().ceil() as u32
    );
    println!(
        "encoded, 10% density   : {} vectors (footnote 5's 20)",
        ((possible / 10) as f64).log2().ceil() as u32
    );

    let mut table = TextTable::new([
        "rows",
        "cards",
        "possible",
        "observed",
        "density",
        "simple_vectors",
        "encoded_vectors",
    ]);
    for (rows, cards) in [
        (10_000usize, [10u64, 20, 50]),
        (50_000, [20, 40, 100]),
        (200_000, [50, 80, 200]),
    ] {
        let a = zipf_cells(cards[0], 0.6, rows, 0x6A);
        let b = uniform_cells(cards[1], rows, 0x6B);
        let c = zipf_cells(cards[2], 0.8, rows, 0x6C);
        let gs = GroupSetIndex::build(&[&a, &b, &c]).expect("build group-set");
        // Sanity: groups partition the rows.
        let total: usize = gs.group_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, rows);
        table.row([
            rows.to_string(),
            format!("{}x{}x{}", cards[0], cards[1], cards[2]),
            gs.possible_combinations().to_string(),
            gs.observed_combinations().to_string(),
            format!("{:.3}", gs.density()),
            gs.possible_combinations().to_string(),
            gs.bitmap_vector_count().to_string(),
        ]);
    }
    println!("\n== measured group-set indexes (simple needs one vector per possible combo) ==");
    println!("{}", table.render());
    write_result("groupset.csv", &table.to_csv());
}
