//! Experiment E18 — the TPC-D claim: with 12 of 17 query types doing
//! range search, the encoded index's logarithmic range cost dominates
//! the mix even though single-value selections favour the simple index
//! (§3.1's closing argument).
//!
//! Runs the same seeded workload through every index family and totals
//! the paper's cost metric.

use ebi_analysis::report::TextTable;
use ebi_baselines::{
    BitSlicedIndex, DynamicBitmapIndex, HybridBTreeBitmapIndex, RangeBasedBitmapIndex,
    SelectionIndex, SimpleBitmapIndex, ValueListIndex,
};
use ebi_bench::{write_result, zipf_cells, DEFAULT_ROWS};
use ebi_core::EncodedBitmapIndex;
use ebi_warehouse::workload::{Predicate, WorkloadSpec};

fn main() {
    let m = 1000u64;
    let cells = zipf_cells(m, 0.5, DEFAULT_ROWS, 0x7D);
    let workload = WorkloadSpec::tpcd_like("a", m, 200, 0x7E).generate();

    let encoded = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
    let simple = SimpleBitmapIndex::build(cells.iter().copied());
    let sliced = BitSlicedIndex::build(cells.iter().copied());
    let dynamic = DynamicBitmapIndex::build(cells.iter().copied());
    let ranged = RangeBasedBitmapIndex::build(cells.iter().copied(), 16);
    let hybrid = HybridBTreeBitmapIndex::build(cells.iter().copied());
    let vlist = ValueListIndex::build(cells.iter().copied());

    let indexes: Vec<(&str, &dyn SelectionIndex)> = vec![
        ("encoded-bitmap", &encoded),
        ("simple-bitmap", &simple),
        ("bit-sliced", &sliced),
        ("dynamic-bitmap", &dynamic),
        ("range-based", &ranged),
        ("hybrid", &hybrid),
        ("value-list-btree", &vlist),
    ];

    let mut table = TextTable::new([
        "index",
        "total_units",
        "units_point",
        "units_range",
        "mean_units/query",
        "storage_bytes",
    ]);
    let mut reference: Option<Vec<usize>> = None;
    for (name, idx) in &indexes {
        let mut total = 0usize;
        let mut point = 0usize;
        let mut range = 0usize;
        let mut match_counts: Vec<usize> = Vec::with_capacity(workload.len());
        for q in &workload {
            let r = match &q.predicate {
                Predicate::Eq(v) => idx.eq(*v),
                Predicate::InList(vs) => idx.in_list(vs),
                Predicate::Range(lo, hi) => idx.range(*lo, *hi),
            };
            total += r.stats.vectors_accessed;
            if q.predicate.is_range_search() {
                range += r.stats.vectors_accessed;
            } else {
                point += r.stats.vectors_accessed;
            }
            match_counts.push(r.bitmap.count_ones());
        }
        // Every index family must return identical answers.
        match &reference {
            None => reference = Some(match_counts),
            Some(expect) => assert_eq!(expect, &match_counts, "{name} disagrees"),
        }
        table.row([
            (*name).to_string(),
            total.to_string(),
            point.to_string(),
            range.to_string(),
            format!("{:.1}", total as f64 / workload.len() as f64),
            idx.storage_bytes().to_string(),
        ]);
    }
    println!(
        "== TPC-D-style mix: {} queries, {:.0}% range searches, m = {m}, {} rows ==",
        workload.len(),
        100.0
            * workload
                .iter()
                .filter(|q| q.predicate.is_range_search())
                .count() as f64
            / workload.len() as f64,
        DEFAULT_ROWS,
    );
    println!(
        "(units: bitmap vectors for bitmap families, nodes for trees, buckets for range-based)"
    );
    println!("{}", table.render());
    write_result("tpcd_mix.csv", &table.to_csv());
}
