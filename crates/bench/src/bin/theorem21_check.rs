//! Experiment E4 — Theorem 2.1 in practice: with void tuples on the
//! reserved all-zero code, value selections skip the existence mask
//! that the separate-vector representation must read.
//!
//! Measures vectors accessed per query under both NULL policies on the
//! same data with the same deletions.

use ebi_analysis::report::TextTable;
use ebi_bench::{uniform_cells, write_result};
use ebi_core::index::{BuildOptions, EncodedBitmapIndex};
use ebi_core::nulls::NullPolicy;

fn main() {
    let m = 256u64;
    let rows = 50_000usize;
    let cells = uniform_cells(m, rows, 0x21);

    let build = |policy: NullPolicy| -> EncodedBitmapIndex {
        let mut idx = EncodedBitmapIndex::build_with(
            cells.iter().copied(),
            BuildOptions {
                policy,
                mapping: None,
                ..Default::default()
            },
        )
        .expect("build");
        // Delete every 97th row.
        for row in (0..rows).step_by(97) {
            idx.delete(row).expect("delete");
        }
        idx
    };
    let separate = build(NullPolicy::SeparateVectors);
    let reserved = build(NullPolicy::EncodedReserved);

    let mut table = TextTable::new(["query", "separate_vectors", "encoded_reserved(Thm 2.1)"]);
    let deltas = [1u64, 4, 16, 64, 128];
    for &delta in &deltas {
        let selection: Vec<u64> = (0..delta).collect();
        let a = separate.in_list(&selection).expect("query");
        let b = reserved.in_list(&selection).expect("query");
        assert_eq!(a.bitmap, b.bitmap, "policies must agree on answers");
        table.row([
            format!("IN [0,{delta})"),
            a.stats.vectors_accessed.to_string(),
            b.stats.vectors_accessed.to_string(),
        ]);
    }
    println!(
        "== Theorem 2.1: existence-mask cost by NULL policy (m = {m}, {rows} rows, ~1% deleted) =="
    );
    println!("{}", table.render());
    println!("note: the reserved-code index also answers without ever storing B_NotExist.");
    write_result("theorem21.csv", &table.to_csv());
}
