//! Experiment E8/E9 — **Figure 9(a)/(b)**: bitmap vectors accessed vs
//! range width δ, for |A| = 50 and |A| = 1000.
//!
//! Prints, per δ:
//!
//! * the analytical series (`c_s = δ`, `c_e` best case, `c_e` worst
//!   case), and
//! * *measured* vector counts from real indexes over generated data —
//!   a simple bitmap index, an encoded index with the **identity**
//!   (well-aligned) mapping, and an encoded index with a first-seen
//!   (improper) mapping. The two encoded columns bracket the paper's
//!   best-case curve and `c_e_w` worst-case line (§3.2).

use ebi_analysis::fig9::{ce_best, ce_worst};
use ebi_analysis::report::TextTable;
use ebi_baselines::{SelectionIndex, SimpleBitmapIndex};
use ebi_bench::{uniform_cells, write_result, DEFAULT_ROWS};
use ebi_core::index::BuildOptions;
use ebi_core::nulls::NullPolicy;
use ebi_core::{EncodedBitmapIndex, Mapping};

fn run_for_cardinality(m: u64, deltas: &[u64]) -> TextTable {
    println!("== Figure 9, |A| = {m} (k = {}) ==", ce_worst(m));
    let cells = uniform_cells(m, DEFAULT_ROWS, 0xF19 + m);
    // Identity mapping: value v ↦ code v — contiguous selections align
    // with subcubes, realising the best case.
    let aligned = EncodedBitmapIndex::build_with(
        cells.iter().copied(),
        BuildOptions {
            policy: NullPolicy::SeparateVectors,
            mapping: Some(Mapping::sequential(m as usize)),
            ..Default::default()
        },
    )
    .expect("build aligned EBI");
    // First-seen mapping: codes scattered relative to value order — the
    // "improper encoding" worst-case regime.
    let scattered = EncodedBitmapIndex::build(cells.iter().copied()).expect("build EBI");
    let simple = SimpleBitmapIndex::build(cells.iter().copied());

    let mut table = TextTable::new([
        "delta",
        "c_s(analytic)",
        "c_s(measured)",
        "c_e_best(analytic)",
        "c_e(aligned)",
        "c_e(scattered)",
        "c_e_worst",
    ]);
    for &delta in deltas {
        let selection: Vec<u64> = (0..delta).collect();
        let al = SelectionIndex::in_list(&aligned, &selection);
        let sc = SelectionIndex::in_list(&scattered, &selection);
        let sim = simple.in_list(&selection);
        assert_eq!(al.bitmap, sim.bitmap, "aligned disagrees at δ={delta}");
        assert_eq!(sc.bitmap, sim.bitmap, "scattered disagrees at δ={delta}");
        table.row([
            delta.to_string(),
            delta.to_string(),
            sim.stats.vectors_accessed.to_string(),
            ce_best(m, delta).to_string(),
            al.stats.vectors_accessed.to_string(),
            sc.stats.vectors_accessed.to_string(),
            ce_worst(m).to_string(),
        ]);
    }
    println!("{}", table.render());
    table
}

fn main() {
    // Figure 9(a): |A| = 50, full δ sweep.
    let deltas_a: Vec<u64> = (1..=50).collect();
    let t_a = run_for_cardinality(50, &deltas_a);
    write_result("fig09a_A50.csv", &t_a.to_csv());

    // Figure 9(b): |A| = 1000, sampled δ (powers of two, paper's
    // hallmark 512, and a dense low range).
    let mut deltas_b: Vec<u64> = (1..=32).collect();
    deltas_b.extend([48, 64, 96, 128, 192, 256, 384, 512, 640, 768, 896, 1000]);
    let t_b = run_for_cardinality(1000, &deltas_b);
    write_result("fig09b_A1000.csv", &t_b.to_csv());

    println!(
        "hallmarks: ce_best(50,32) = {} (paper: 1, saving 83%)",
        ce_best(50, 32)
    );
    println!(
        "           ce_best(1000,512) = {} (paper: 1, saving 90%)",
        ce_best(1000, 512)
    );
}
