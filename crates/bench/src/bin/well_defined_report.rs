//! Experiment E27 — the Definition 2.5 / Theorem 2.2 machinery as a
//! measurement: for each encoding strategy over random predicate
//! workloads, how many predicates end up *well-defined*, how many reach
//! the exact vector optimum, and the total cost — making the paper's
//! "well-defined ⇒ minimal" claim (and its converse's failure) visible
//! in numbers.

use ebi_analysis::report::TextTable;
use ebi_bench::write_result;
use ebi_core::encoding::{
    AffinityEncoding, AnnealingEncoding, EncodingProblem, EncodingStrategy, GrayEncoding,
    IdentityEncoding,
};
use ebi_core::well_defined::{achieved_cost, check, optimal_cost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_predicates(m: u64, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // Mix of contiguous ranges and scattered sets, sizes 2..m/2.
            let size = rng.random_range(2..=(m / 2).max(3)) as usize;
            if rng.random_ratio(1, 2) {
                let lo = rng.random_range(0..m - size as u64 + 1);
                (lo..lo + size as u64).collect()
            } else {
                let mut vs: Vec<u64> = (0..size).map(|_| rng.random_range(0..m)).collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            }
        })
        .filter(|p| p.len() >= 2)
        .collect()
}

fn main() {
    let strategies: Vec<(&str, Box<dyn EncodingStrategy>)> = vec![
        ("identity", Box::new(IdentityEncoding)),
        ("gray", Box::new(GrayEncoding)),
        ("affinity", Box::new(AffinityEncoding)),
        (
            "annealing",
            Box::new(AnnealingEncoding {
                iterations: 1200,
                seed: 0x3D,
            }),
        ),
    ];

    let mut table = TextTable::new([
        "m",
        "strategy",
        "well_defined",
        "at_optimum",
        "total_cost",
        "optimal_total",
    ]);
    for m in [16u64, 32, 64] {
        let values: Vec<u64> = (0..m).collect();
        let preds = random_predicates(m, 10, 0x7D1 + m);
        let width = ebi_core::Mapping::width_for(m as usize);
        let optimal_total: usize = {
            // Lower bound: per-predicate optimum under the best strategy's
            // mapping is mapping-dependent; report the identity mapping's
            // optimum as the reference column.
            let id = IdentityEncoding
                .encode(&EncodingProblem {
                    values: &values,
                    predicates: &preds,
                    width,
                    forbidden_codes: &[],
                })
                .expect("encode");
            preds.iter().map(|p| optimal_cost(&id, p)).sum()
        };
        for (name, strategy) in &strategies {
            let mapping = strategy
                .encode(&EncodingProblem {
                    values: &values,
                    predicates: &preds,
                    width,
                    forbidden_codes: &[],
                })
                .expect("encode");
            let mut well_defined = 0usize;
            let mut at_optimum = 0usize;
            let mut total = 0usize;
            for p in &preds {
                let wd = check(&mapping, p).holds();
                let achieved = achieved_cost(&mapping, p);
                let optimal = optimal_cost(&mapping, p);
                if wd {
                    well_defined += 1;
                    assert_eq!(
                        achieved, optimal,
                        "Theorem 2.2 violated for {name} on {p:?}"
                    );
                }
                if achieved == optimal {
                    at_optimum += 1;
                }
                total += achieved;
            }
            table.row([
                m.to_string(),
                (*name).to_string(),
                format!("{well_defined}/{}", preds.len()),
                format!("{at_optimum}/{}", preds.len()),
                total.to_string(),
                optimal_total.to_string(),
            ]);
        }
    }
    println!("== Definition 2.5 / Theorem 2.2 in numbers (10 random predicates per m) ==");
    println!("(well_defined ⇒ at_optimum is asserted per Theorem 2.2; the reverse need not hold)");
    println!("{}", table.render());
    write_result("well_defined.csv", &table.to_csv());
}
