//! Observability showcase — runs a TPC-D-lite-ish selection mix
//! through the profiled executor with a real pager + buffer pool and
//! prints the `EXPLAIN ANALYZE` tree per query.
//!
//! Artefacts written to `bench_results/`:
//!
//! * `obs_queries.jsonl` — one `ebi.query_report.v1` JSON line per
//!   query (schema documented in DESIGN.md §8);
//! * `obs_metrics.prom` — the process-global metrics registry in
//!   Prometheus text format after the run.
//!
//! `--smoke` shrinks the dataset for CI and self-checks the output
//! (schema tags, phase presence, cost parity with the untraced path).

use ebi_bench::{uniform_cells, write_result, zipf_cells};
use ebi_core::index::QueryOptions;
use ebi_core::EncodedBitmapIndex;
use ebi_storage::{BufferPool, Pager};
use ebi_warehouse::workload::{Predicate, Query};
use ebi_warehouse::{ConjunctiveQuery, DnfQuery, Executor, FetchModel};

fn clause(column: &str, predicate: Predicate) -> Query {
    Query {
        column: column.into(),
        predicate,
    }
}

fn conj(clauses: Vec<Query>) -> ConjunctiveQuery {
    ConjunctiveQuery { clauses }
}

const USAGE: &str = "explain — EXPLAIN ANALYZE showcase over the profiled executor

USAGE:
    explain [--smoke]

FLAGS:
    --smoke      small-row CI run with output self-checks
    -h, --help   print this help

Unknown flags are an error.";

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let rows = if smoke { 20_000 } else { 100_000 };
    let rows_per_page = 128usize;

    // Two dimension-like columns over the same fact rows.
    let region_cells = uniform_cells(25, rows, 0xE1);
    let brand_cells = zipf_cells(40, 0.6, rows, 0xE2);
    let mut region = EncodedBitmapIndex::build(region_cells).expect("build region");
    let mut brand = EncodedBitmapIndex::build(brand_cells).expect("build brand");
    let profile = QueryOptions {
        profile: true,
        ..Default::default()
    };
    region.set_query_options(profile);
    brand.set_query_options(profile);

    // Fact-table pages the fetch phase reads through a bounded pool.
    let pager = Pager::with_page_size(4096);
    let base_page = pager.allocate(rows.div_ceil(rows_per_page) as u64);
    let pool = BufferPool::new(&pager, 32);

    let mut exec = Executor::new(rows);
    exec.register("region", &region);
    exec.register("brand", &brand);
    exec.attach_storage(
        &pager,
        Some(&pool),
        Some(FetchModel {
            base_page,
            rows_per_page,
        }),
    );

    // The query mix: point, in-list, range, conjunction, disjunction —
    // the shapes §3.1 argues over.
    let mix: Vec<(&str, DnfQuery)> = vec![
        (
            "region = 7",
            DnfQuery {
                disjuncts: vec![conj(vec![clause("region", Predicate::Eq(7))])],
            },
        ),
        (
            "brand IN {1,5,9}",
            DnfQuery {
                disjuncts: vec![conj(vec![clause(
                    "brand",
                    Predicate::InList(vec![1, 5, 9]),
                )])],
            },
        ),
        (
            "region BETWEEN 10 AND 18",
            DnfQuery {
                disjuncts: vec![conj(vec![clause("region", Predicate::Range(10, 18))])],
            },
        ),
        (
            "region = 3 AND brand BETWEEN 20 AND 30",
            DnfQuery {
                disjuncts: vec![conj(vec![
                    clause("region", Predicate::Eq(3)),
                    clause("brand", Predicate::Range(20, 30)),
                ])],
            },
        ),
        (
            "(region = 1 AND brand = 2) OR region IN {21,22}",
            DnfQuery {
                disjuncts: vec![
                    conj(vec![
                        clause("region", Predicate::Eq(1)),
                        clause("brand", Predicate::Eq(2)),
                    ]),
                    conj(vec![clause("region", Predicate::InList(vec![21, 22]))]),
                ],
            },
        ),
    ];

    ebi_obs::set_enabled(true);
    let mut jsonl = String::new();
    for (label, query) in &mix {
        let (untraced_bitmap, untraced) = exec.run_dnf(query);
        let (bitmap, report) = exec.run_dnf_profiled(query, label);
        assert_eq!(bitmap, untraced_bitmap, "profiling changed results");
        assert_eq!(
            report.cost.vectors_accessed, untraced.vectors_accessed as u64,
            "profiling changed the paper's cost metric"
        );
        println!("{}", report.explain_analyze());
        jsonl.push_str(&report.to_json_line());
        jsonl.push('\n');

        if smoke {
            assert!(report
                .to_json_line()
                .starts_with("{\"schema\":\"ebi.query_report.v1\""));
            assert_eq!(report.phases.len(), 1, "one root span per query");
            assert_eq!(report.phases[0].name, "query");
            for phase in ["disjunct", "clause", "reduce", "eval", "fetch"] {
                assert!(
                    report.phase_wall_ns(phase).is_some(),
                    "missing phase {phase} in {label}"
                );
            }
            assert!(
                report.storage.buffer_hits + report.storage.buffer_misses > 0,
                "fetch phase read no pages"
            );
        }
    }
    ebi_obs::set_enabled(false);

    write_result("obs_queries.jsonl", &jsonl);
    write_result(
        "obs_metrics.prom",
        &ebi_obs::metrics::global().render_prometheus(),
    );
    if smoke {
        println!("explain --smoke: {} queries ok", mix.len());
    }
}
