//! Experiment E23 (extension) — the five-template TPC-D-lite suite end
//! to end: selections through encoded bitmap indexes (salespoints under
//! the Figure 5 hierarchy encoding), measures aggregated directly on
//! bitmaps, every template's cost in the paper's units.

use ebi_analysis::report::TextTable;
use ebi_bench::write_result;
use ebi_warehouse::generator::StarSpec;
use ebi_warehouse::tpcd_lite::TpcdLite;

fn main() {
    let spec = StarSpec {
        rows: 200_000,
        products: 2_000,
        dates: 365,
        ..StarSpec::default()
    };
    println!(
        "SALES star: {} rows, {} products, {} salespoints, {} dates",
        spec.rows, spec.products, spec.salespoints, spec.dates
    );
    let started = std::time::Instant::now();
    let suite = TpcdLite::new(&spec).expect("build suite");
    println!(
        "index build (4 indexes + measure slices): {:?}",
        started.elapsed()
    );

    let mut table = TextTable::new([
        "template",
        "rows",
        "groups",
        "vectors",
        "elapsed_ms",
        "first_groups",
    ]);
    let run_start = std::time::Instant::now();
    let results = suite.run_standard_mix(&spec).expect("run mix");
    for r in &results {
        let preview: Vec<String> = r
            .groups
            .iter()
            .take(3)
            .map(|(g, s)| format!("{g}:{s}"))
            .collect();
        table.row([
            r.name.to_string(),
            r.rows.to_string(),
            r.groups.len().to_string(),
            r.vectors_accessed.to_string(),
            String::from("-"),
            preview.join(" "),
        ]);
    }
    println!(
        "\n== TPC-D-lite standard mix ({} templates in {:?}) ==",
        results.len(),
        run_start.elapsed()
    );
    println!("{}", table.render());
    write_result("tpcd_lite.csv", &table.to_csv());
}
