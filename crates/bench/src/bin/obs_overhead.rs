//! Observability overhead — proves the disabled path is (near) free.
//!
//! Runs the same selection mix three ways per row count:
//!
//! * `baseline` — `profile: false`, subscriber off: the query path
//!   contains no observability calls at all;
//! * `disabled` — `profile: true`, subscriber off: every span entry
//!   point runs but bails after one relaxed atomic load. This is the
//!   path the <2% overhead budget applies to;
//! * `enabled`  — `profile: true`, subscriber on, full `QueryReport`
//!   assembly through the profiled executor.
//!
//! Timing is min-of-medians: each round's time is the median of three
//! mix runs, and the reported figure is the minimum over rounds —
//! robust against one-sided scheduler noise. Results go to
//! `BENCH_obs.json` at the workspace root; `--check` exits non-zero
//! when the disabled-path overhead exceeds 2%, `--smoke` shrinks the
//! dataset for CI.

use ebi_bench::uniform_cells;
use ebi_core::index::QueryOptions;
use ebi_core::EncodedBitmapIndex;
use ebi_service::{ColumnSpec, ServiceConfig, ShardedTable, TableOptions};
use ebi_warehouse::workload::{Predicate, Query};
use ebi_warehouse::{ConjunctiveQuery, DnfQuery, Executor};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Disabled-path overhead budget, percent.
const BUDGET_PCT: f64 = 2.0;

fn mix() -> Vec<DnfQuery> {
    let clause = |predicate: Predicate| Query {
        column: "c".into(),
        predicate,
    };
    vec![
        DnfQuery {
            disjuncts: vec![ConjunctiveQuery {
                clauses: vec![clause(Predicate::Eq(5))],
            }],
        },
        DnfQuery {
            disjuncts: vec![ConjunctiveQuery {
                clauses: vec![clause(Predicate::InList(vec![1, 9, 17, 33]))],
            }],
        },
        DnfQuery {
            disjuncts: vec![ConjunctiveQuery {
                clauses: vec![clause(Predicate::Range(8, 40))],
            }],
        },
        DnfQuery {
            disjuncts: vec![
                ConjunctiveQuery {
                    clauses: vec![clause(Predicate::Range(50, 60))],
                },
                ConjunctiveQuery {
                    clauses: vec![clause(Predicate::Eq(2))],
                },
            ],
        },
    ]
}

/// Each timed sample runs the mix enough times to take at least this
/// long, so scheduler jitter cannot masquerade as overhead.
const TARGET_SAMPLE_NS: u64 = 5_000_000;

/// Times `iters` passes over the mix, returning (nanoseconds, match
/// total per pass). The match total guards against dead-code
/// elimination and cross-mode result drift.
fn run_mix(exec: &Executor<'_>, queries: &[DnfQuery], profiled: bool, iters: usize) -> (u64, u64) {
    let start = Instant::now();
    let mut matches = 0u64;
    for _ in 0..iters {
        matches = 0;
        for q in queries {
            matches += if profiled {
                exec.run_dnf_profiled(q, "overhead mix").1.matches
            } else {
                exec.run_dnf(q).1.matches as u64
            };
        }
    }
    (start.elapsed().as_nanos() as u64, matches)
}

struct Mode<'m, 'a> {
    exec: &'m Executor<'a>,
    profiled: bool,
}

/// Min-of-medians over *interleaved* rounds: every round times each
/// mode back to back (median of `reps` samples), so slow thermal /
/// frequency drift hits all modes alike; the reported figure is the
/// per-mode minimum across rounds, normalised to one mix pass.
fn measure(modes: &[Mode<'_, '_>], queries: &[DnfQuery], iters: usize) -> Vec<u64> {
    let (rounds, reps) = (5usize, 3usize);
    let expected = run_mix(modes[0].exec, queries, modes[0].profiled, 1).1;
    for m in modes {
        let (_, got) = run_mix(m.exec, queries, m.profiled, 1); // warm-up
        assert_eq!(got, expected, "mode changed query results");
    }
    let mut best = vec![u64::MAX; modes.len()];
    for _ in 0..rounds {
        for (slot, m) in modes.iter().enumerate() {
            let mut times: Vec<u64> = (0..reps)
                .map(|_| run_mix(m.exec, queries, m.profiled, iters).0)
                .collect();
            times.sort_unstable();
            best[slot] = best[slot].min(times[reps / 2]);
        }
    }
    best.into_iter().map(|ns| ns / iters as u64).collect()
}

fn pct(over: u64, base: u64) -> f64 {
    (over as f64 - base as f64) / base as f64 * 100.0
}

const USAGE: &str = "\
usage: obs_overhead [--smoke] [--check]

  --smoke   shrink the dataset for CI
  --check   exit 1 when the disabled-path overhead exceeds the budget";

fn main() {
    let mut smoke = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("obs_overhead: unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if smoke {
        &[200_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let queries = mix();

    let mut results = String::new();
    let mut over_budget = false;
    for (i, &rows) in sizes.iter().enumerate() {
        let cells = uniform_cells(64, rows, 0xC3);
        // Two identical indexes, one per instrumentation setting, so
        // rounds can interleave modes without touching options.
        let plain = EncodedBitmapIndex::build(cells.iter().copied()).expect("build");
        let mut instrumented = EncodedBitmapIndex::build(cells).expect("build");
        instrumented.set_query_options(QueryOptions {
            profile: true,
            ..Default::default()
        });
        let mut exec_plain = Executor::new(rows);
        exec_plain.register("c", &plain);
        let mut exec_instr = Executor::new(rows);
        exec_instr.register("c", &instrumented);

        // Calibrate how many mix passes one timed sample needs.
        let (once_ns, _) = run_mix(&exec_plain, &queries, false, 1);
        let iters = (TARGET_SAMPLE_NS / once_ns.max(1)).clamp(1, 2_000) as usize;

        // baseline: no observability calls in the query path.
        // disabled: instrumented path, subscriber off — the <2% budget.
        ebi_obs::set_enabled(false);
        let cold = measure(
            &[
                Mode {
                    exec: &exec_plain,
                    profiled: false,
                },
                Mode {
                    exec: &exec_instr,
                    profiled: false,
                },
            ],
            &queries,
            iters,
        );
        let (baseline_ns, disabled_ns) = (cold[0], cold[1]);

        // enabled: full profiling through the executor.
        ebi_obs::set_enabled(true);
        let enabled_ns = measure(
            &[Mode {
                exec: &exec_instr,
                profiled: true,
            }],
            &queries,
            iters,
        )[0];
        ebi_obs::set_enabled(false);

        let disabled_pct = pct(disabled_ns, baseline_ns);
        let enabled_pct = pct(enabled_ns, baseline_ns);
        over_budget |= disabled_pct > BUDGET_PCT;
        println!(
            "rows={rows}: baseline={baseline_ns}ns disabled={disabled_ns}ns ({disabled_pct:+.2}%) \
             enabled={enabled_ns}ns ({enabled_pct:+.2}%)"
        );
        if i > 0 {
            results.push(',');
        }
        let _ = write!(
            results,
            "{{\"rows\":{rows},\"baseline_ns\":{baseline_ns},\"disabled_ns\":{disabled_ns},\
             \"enabled_ns\":{enabled_ns},\"disabled_overhead_pct\":{disabled_pct:.3},\
             \"enabled_overhead_pct\":{enabled_pct:.3}}}"
        );
    }

    let service = service_section(smoke);

    let json = format!(
        "{{\"schema\":\"ebi.bench_obs.v1\",\"budget_pct\":{BUDGET_PCT},\"results\":[{results}],\
         \"service\":{service}}}\n"
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("[written] {}", path.display());

    if check && over_budget {
        eprintln!("disabled-path overhead exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Service mix: full tail-sampled tracing cost, end to end
// ---------------------------------------------------------------------------

/// The service bench's query mix (mid-selectivity COUNTs over every
/// shard).
const SERVICE_MIX: &[&str] = &["a=1", "a IN 1,3,5 AND b BETWEEN 2 9", "a=0 OR b=1"];

/// Deterministic two-column table matching `service_bench`'s shape.
fn service_columns(rows: usize) -> Vec<ColumnSpec> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    for _ in 0..rows {
        a.push(ebi_storage::Cell::Value(next() % 7));
        b.push(ebi_storage::Cell::Value(next() % 13));
    }
    vec![ColumnSpec::new("a", a), ColumnSpec::new("b", b)]
}

/// Times one closed-loop client: `reqs` COUNT requests cycling the
/// mix, returning total nanoseconds.
fn drive_service(tcp: std::net::SocketAddr, reqs: usize) -> u64 {
    let mut stream = TcpStream::connect(tcp).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let start = Instant::now();
    let mut line = String::new();
    for i in 0..reqs {
        let q = SERVICE_MIX[i % SERVICE_MIX.len()];
        stream
            .write_all(format!("COUNT {q}\n").as_bytes())
            .expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(line.starts_with("OK {"), "service answered {line}");
    }
    start.elapsed().as_nanos() as u64
}

/// Measures per-request latency of the service mix in one obs mode
/// against a live in-process service (min of `rounds` medians-of-one,
/// mirroring the index-path discipline at service scale).
fn measure_service(tcp: std::net::SocketAddr, reqs: usize) -> u64 {
    let _ = drive_service(tcp, reqs); // warm-up
    let best = (0..5).map(|_| drive_service(tcp, reqs)).min().unwrap();
    best / reqs as u64
}

/// The enabled-path section: what full always-on tail-sampled tracing
/// costs under the service mix. Three figures over the same table:
///
/// * `disabled` — subscriber off: the ring still retains every trace
///   (tail sampling is always on) but reports carry no phase tree;
/// * `enabled` — subscriber on: spans, `QueryReport` assembly, ring;
/// * `tail_all_slow` — subscriber on with a 0ms slow threshold, so
///   every trace is additionally classified and retained as slow —
///   the worst-case tail-sampling write path.
fn service_section(smoke: bool) -> String {
    let (rows, reqs) = if smoke { (50_000, 200) } else { (500_000, 400) };
    let shards = 4;
    let table = ShardedTable::build(
        service_columns(rows),
        &TableOptions {
            shards,
            ..TableOptions::default()
        },
    )
    .expect("table builds");

    let run_mode = |enabled: bool, slow_ms: Option<u64>| -> u64 {
        let cfg = ServiceConfig {
            workers: 2,
            max_inflight: 4,
            timeout: Duration::from_secs(10),
            min_dispatch_words: 0,
            slow_query_ms: slow_ms,
            ..ServiceConfig::default()
        };
        ebi_obs::set_enabled(enabled);
        let (tx, rx) = mpsc::channel();
        let table = &table;
        let ns = std::thread::scope(|s| {
            let server = s.spawn(move || {
                ebi_service::run(table, &cfg, |h| tx.send(h).expect("send"))
            });
            let handle = rx.recv().expect("service came up");
            let ns = measure_service(handle.tcp_addr(), reqs);
            handle.shutdown();
            server.join().expect("service thread").expect("service ran");
            ns
        });
        ebi_obs::set_enabled(false);
        ns
    };

    let disabled_ns = run_mode(false, None);
    let enabled_ns = run_mode(true, None);
    let tail_ns = run_mode(true, Some(0));
    let enabled_pct = pct(enabled_ns, disabled_ns);
    let tail_pct = pct(tail_ns, disabled_ns);
    println!(
        "service mix ({rows} rows x {shards} shards): disabled={disabled_ns}ns/req \
         enabled={enabled_ns}ns/req ({enabled_pct:+.2}%) tail_all_slow={tail_ns}ns/req \
         ({tail_pct:+.2}%)"
    );
    format!(
        "{{\"rows\":{rows},\"shards\":{shards},\"requests\":{reqs},\
         \"disabled_ns_per_req\":{disabled_ns},\"enabled_ns_per_req\":{enabled_ns},\
         \"tail_all_slow_ns_per_req\":{tail_ns},\"enabled_overhead_pct\":{enabled_pct:.3},\
         \"tail_all_slow_overhead_pct\":{tail_pct:.3}}}"
    )
}
