//! Shared harness code for the figure generators (`src/bin`) and the
//! Criterion benches (`benches/`).
//!
//! Each paper artefact (figure, table, quantitative claim) has one
//! binary that prints the regenerated series next to the analytical
//! model and writes a CSV under `bench_results/`. See DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured notes.

use ebi_storage::Cell;
use ebi_warehouse::generator::{generate_column, ColumnSpec};
use std::path::PathBuf;

/// Default row count used by the measured sides of the figures.
pub const DEFAULT_ROWS: usize = 100_000;

/// A uniform column of cardinality `m`.
#[must_use]
pub fn uniform_cells(m: u64, rows: usize, seed: u64) -> Vec<Cell> {
    generate_column(&ColumnSpec::uniform(m), rows, seed)
}

/// A Zipf-skewed column.
#[must_use]
pub fn zipf_cells(m: u64, theta: f64, rows: usize, seed: u64) -> Vec<Cell> {
    generate_column(&ColumnSpec::zipf(m, theta), rows, seed)
}

/// The `bench_results/` directory at the workspace root (created on
/// demand).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

/// Writes `content` to `bench_results/<name>` and reports the path.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_result(name: &str, content: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write bench result");
    println!("[written] {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_here_too() {
        assert_eq!(uniform_cells(10, 100, 1), uniform_cells(10, 100, 1));
        assert_eq!(zipf_cells(10, 1.0, 100, 1), zipf_cells(10, 1.0, 100, 1));
    }

    #[test]
    fn out_dir_exists_after_call() {
        assert!(out_dir().is_dir());
    }
}
