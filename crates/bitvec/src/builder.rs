//! Streaming construction of bitmap-vector families.
//!
//! Index builders scan a column once and must append one bit per tuple to
//! *each* of `h` bitmap vectors (`h = |A|` for a simple bitmap index,
//! `h = ceil(log2 |A|)` for an encoded one). [`SliceFamilyBuilder`] owns
//! the `h` vectors and spreads a per-tuple code across them, which is the
//! inner loop of every index build in this workspace.

use crate::core::BitVec;

/// Incremental builder for one [`BitVec`].
///
/// Thin wrapper over [`BitVec::push`]/[`BitVec::push_run`] that tracks the
/// expected final length, so builds fail loudly when a column scan appends
/// the wrong number of bits.
#[derive(Debug, Clone)]
pub struct BitVecBuilder {
    bits: BitVec,
    expected: Option<usize>,
}

impl BitVecBuilder {
    /// New builder with no length expectation.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bits: BitVec::new(),
            expected: None,
        }
    }

    /// New builder that will verify exactly `n` bits were appended.
    #[must_use]
    pub fn with_expected_len(n: usize) -> Self {
        Self {
            bits: BitVec::with_capacity(n),
            expected: Some(n),
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends `n` copies of `bit`.
    pub fn push_run(&mut self, bit: bool, n: usize) {
        self.bits.push_run(bit, n);
    }

    /// Bits appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if nothing was appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if an expected length was declared and not met.
    #[must_use]
    pub fn finish(self) -> BitVec {
        if let Some(n) = self.expected {
            assert_eq!(
                self.bits.len(),
                n,
                "BitVecBuilder finished with {} bits, expected {n}",
                self.bits.len()
            );
        }
        self.bits
    }
}

impl Default for BitVecBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a family of `h` equal-length bitmap vectors from per-tuple codes.
///
/// For tuple `j` with code `c`, bit `j` of vector `i` is set iff bit `i`
/// of `c` is set — exactly Definition 2.1's
/// `B_i[j] = 1 iff M(t_j.A)[i] = 1`.
#[derive(Debug, Clone)]
pub struct SliceFamilyBuilder {
    slices: Vec<BitVec>,
    rows: usize,
}

impl SliceFamilyBuilder {
    /// Creates a builder for `h` slices.
    #[must_use]
    pub fn new(h: usize) -> Self {
        Self {
            slices: vec![BitVec::new(); h],
            rows: 0,
        }
    }

    /// Number of slices.
    #[must_use]
    pub fn width(&self) -> usize {
        self.slices.len()
    }

    /// Number of rows appended so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Appends one tuple's code: bit `i` of `code` lands in slice `i`.
    ///
    /// # Panics
    ///
    /// Panics if `code` has set bits at positions `>= width()`.
    pub fn push_code(&mut self, code: u64) {
        let h = self.slices.len();
        assert!(
            h == 64 || code < (1u64 << h),
            "code {code:#b} does not fit in {h} slices"
        );
        for (i, slice) in self.slices.iter_mut().enumerate() {
            slice.push(code >> i & 1 == 1);
        }
        self.rows += 1;
    }

    /// Finishes, returning slice `0` (LSB) first.
    #[must_use]
    pub fn finish(self) -> Vec<BitVec> {
        self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = BitVecBuilder::with_expected_len(5);
        b.push(true);
        b.push_run(false, 3);
        b.push(true);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let v = b.finish();
        assert_eq!(v.to_positions(), vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "expected 10")]
    fn builder_enforces_expected_len() {
        let mut b = BitVecBuilder::with_expected_len(10);
        b.push(true);
        let _ = b.finish();
    }

    #[test]
    fn slice_family_spreads_codes() {
        // Codes of the paper's Figure 1: a=00, b=01, c=10 over column
        // [a, b, c, b, a, c] — expect B1 = 001001, B0 = 010100 (LSB-first
        // row order).
        let mut fam = SliceFamilyBuilder::new(2);
        for code in [0b00u64, 0b01, 0b10, 0b01, 0b00, 0b10] {
            fam.push_code(code);
        }
        assert_eq!(fam.rows(), 6);
        let slices = fam.finish();
        assert_eq!(slices[0].to_positions(), vec![1, 3]); // B0 set where b
        assert_eq!(slices[1].to_positions(), vec![2, 5]); // B1 set where c
    }

    #[test]
    fn slice_family_full_width() {
        let mut fam = SliceFamilyBuilder::new(64);
        fam.push_code(u64::MAX);
        fam.push_code(0);
        let slices = fam.finish();
        assert!(slices.iter().all(|s| s.len() == 2 && s.bit(0) && !s.bit(1)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn slice_family_rejects_oversized_codes() {
        let mut fam = SliceFamilyBuilder::new(2);
        fam.push_code(0b100);
    }
}
