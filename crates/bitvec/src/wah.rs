//! Word-Aligned-Hybrid (WAH) run-length-compressed bitmaps.
//!
//! The paper notes (§2.1, §4) that the sparsity of simple bitmap vectors —
//! on average `(m-1)/m` ones are zero for a cardinality-`m` attribute — is
//! usually attacked with run-length compression. This module implements a
//! 64-bit WAH variant so the sparsity/space experiments can compare:
//!
//! * uncompressed simple bitmaps,
//! * WAH-compressed simple bitmaps, and
//! * encoded bitmaps (which have density ≈ 1/2 and barely compress —
//!   exactly the trade-off the encoded index makes: fewer, denser vectors).
//!
//! ## Layout
//!
//! Each code word is a `u64`:
//!
//! * **Literal** (`MSB = 0`): 63 payload bits verbatim.
//! * **Fill** (`MSB = 1`): bit 62 is the fill value, bits 0..62 count how
//!   many 63-bit groups the run covers.
//!
//! The final group may be partial; `len` records the exact bit count.

use crate::core::BitVec;
use crate::error::BitVecError;
use crate::roaring::{WindowFill, WindowKind};

/// Bits covered by one WAH group.
pub const GROUP_BITS: usize = 63;

const FILL_FLAG: u64 = 1 << 63;
const FILL_VALUE: u64 = 1 << 62;
const COUNT_MASK: u64 = FILL_VALUE - 1;
const PAYLOAD_MASK: u64 = (1 << 63) - 1;

/// A WAH-compressed, immutable bitmap.
///
/// ```
/// use ebi_bitvec::{wah::WahBitmap, BitVec};
///
/// let sparse = BitVec::from_positions(100_000, &[5, 70_000]);
/// let wah = WahBitmap::compress(&sparse);
/// assert_eq!(wah.count_ones(), 2);
/// assert!(wah.compression_ratio() < 0.01, "long zero runs collapse");
/// assert_eq!(wah.decompress(), sparse);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    code: Vec<u64>,
    len: usize,
}

impl WahBitmap {
    /// Compresses `bits`.
    #[must_use]
    pub fn compress(bits: &BitVec) -> Self {
        let mut code: Vec<u64> = Vec::new();
        let n_groups = bits.len().div_ceil(GROUP_BITS);
        for g in 0..n_groups {
            let start = g * GROUP_BITS;
            let end = (start + GROUP_BITS).min(bits.len());
            let mut payload = 0u64;
            for (off, i) in (start..end).enumerate() {
                if bits.bit(i) {
                    payload |= 1u64 << off;
                }
            }
            let width = end - start;
            let full_ones = width == GROUP_BITS && payload == PAYLOAD_MASK;
            let full_zeros = width == GROUP_BITS && payload == 0;
            if full_ones || full_zeros {
                let value = full_ones;
                if let Some(last) = code.last_mut() {
                    if *last & FILL_FLAG != 0
                        && (*last & FILL_VALUE != 0) == value
                        && (*last & COUNT_MASK) < COUNT_MASK
                    {
                        *last += 1;
                        continue;
                    }
                }
                code.push(FILL_FLAG | if value { FILL_VALUE } else { 0 } | 1);
            } else {
                code.push(payload);
            }
        }
        Self {
            code,
            len: bits.len(),
        }
    }

    /// Decompresses back to a plain [`BitVec`].
    #[must_use]
    pub fn decompress(&self) -> BitVec {
        let mut out = BitVec::with_capacity(self.len);
        let mut remaining = self.len;
        for &w in &self.code {
            if w & FILL_FLAG != 0 {
                let value = w & FILL_VALUE != 0;
                let groups = (w & COUNT_MASK) as usize;
                let bits = (groups * GROUP_BITS).min(remaining);
                out.push_run(value, bits);
                remaining -= bits;
            } else {
                let width = GROUP_BITS.min(remaining);
                for off in 0..width {
                    out.push(w >> off & 1 == 1);
                }
                remaining -= width;
            }
        }
        debug_assert_eq!(remaining, 0);
        out
    }

    /// Number of bits represented.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are represented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (code words only).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.code.len() * 8
    }

    /// Compression ratio versus the uncompressed word-packed form
    /// (`< 1.0` means the compressed form is smaller).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let raw = BitVec::zeros(self.len).storage_bytes();
        if raw == 0 {
            return 1.0;
        }
        self.storage_bytes() as f64 / raw as f64
    }

    /// Population count, computed directly on the compressed form.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        let mut covered = 0usize;
        for &w in &self.code {
            if w & FILL_FLAG != 0 {
                let groups = (w & COUNT_MASK) as usize;
                let bits = (groups * GROUP_BITS).min(self.len - covered);
                if w & FILL_VALUE != 0 {
                    total += bits;
                }
                covered += bits;
            } else {
                // Literal payloads beyond `len` are zero by construction.
                total += w.count_ones() as usize;
                covered = (covered + GROUP_BITS).min(self.len);
            }
        }
        total
    }

    /// Run statistics computed directly on the compressed form: fill
    /// words contribute whole runs without decoding, literal payloads
    /// are scanned bit-run-wise. Granules are WAH's native 63-bit
    /// groups (a fill counting `n` groups contributes `n`), so compare
    /// `fill_word_fraction()` — not raw word counts — with the dense
    /// and Roaring containers.
    #[must_use]
    pub fn run_stats(&self) -> crate::runs::RunStats {
        let mut st = crate::runs::RunStats::default();
        let mut cur = 0u64;
        let mut remaining = self.len;
        for &w in &self.code {
            if w & FILL_FLAG != 0 {
                let groups = w & COUNT_MASK;
                let bits = ((groups as usize) * GROUP_BITS).min(remaining);
                st.total_words += groups;
                st.fill_words += groups;
                if w & FILL_VALUE != 0 {
                    if cur == 0 {
                        st.runs += 1;
                    }
                    cur += bits as u64;
                    st.longest_run = st.longest_run.max(cur);
                } else {
                    cur = 0;
                }
                remaining -= bits;
            } else {
                let width = GROUP_BITS.min(remaining) as u32;
                let mask = if width as usize == GROUP_BITS {
                    PAYLOAD_MASK
                } else {
                    (1u64 << width) - 1
                };
                let p = w & mask;
                st.total_words += 1;
                if p == 0 || p == mask {
                    st.fill_words += 1;
                }
                st.scan_word(&mut cur, p, width);
                remaining -= width as usize;
            }
        }
        st
    }

    /// Bitwise AND directly on the compressed forms.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.binary_op(other, BinOp::And)
    }

    /// Bitwise OR directly on the compressed forms.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.binary_op(other, BinOp::Or)
    }

    /// Run-merging binary operation: `O(runs(a) + runs(b))`, not
    /// `O(n_groups)`. Aligned fill runs combine in one step; an
    /// *absorbing* fill (zero for AND, ones for OR) swallows the whole
    /// overlapping stretch of the other operand without decoding it, and
    /// an *identity* fill passes the other operand's groups through. The
    /// result is canonical: adjacent same-value fills are coalesced and
    /// any all-zero / all-ones group becomes (part of) a fill.
    fn binary_op(&self, other: &Self, op: BinOp) -> Self {
        assert_eq!(self.len, other.len, "WAH length mismatch");
        let n_groups = self.len.div_ceil(GROUP_BITS) as u64;
        let tail_partial = !self.len.is_multiple_of(GROUP_BITS);
        let mut out = Emitter::default();
        let mut a = RunCursor::new(&self.code);
        let mut b = RunCursor::new(&other.code);
        let mut remaining = n_groups;
        while remaining > 0 {
            if tail_partial && remaining == 1 {
                // The trailing partial group is stored literally (masked
                // to the valid width) so `count_ones` stays exact.
                let tail_mask = (1u64 << (self.len % GROUP_BITS)) - 1;
                let v = op.apply(a.next_group(), b.next_group()) & tail_mask;
                out.push_tail_literal(v);
                break;
            }
            match (a.peek(), b.peek()) {
                (
                    Run::Fill {
                        ones: va,
                        groups: na,
                    },
                    Run::Fill {
                        ones: vb,
                        groups: nb,
                    },
                ) => {
                    let n = na.min(nb).min(remaining);
                    out.push_fill(op.apply_bool(va, vb), n);
                    a.advance(n);
                    b.advance(n);
                    remaining -= n;
                }
                (Run::Fill { ones, groups }, _) if op.absorbs(ones) => {
                    let n = groups.min(remaining);
                    out.push_fill(ones, n);
                    a.advance(n);
                    b.advance(n);
                    remaining -= n;
                }
                (_, Run::Fill { ones, groups }) if op.absorbs(ones) => {
                    let n = groups.min(remaining);
                    out.push_fill(ones, n);
                    a.advance(n);
                    b.advance(n);
                    remaining -= n;
                }
                // An identity fill on one side: the other side's group
                // passes through unchanged.
                (Run::Fill { .. }, Run::Literal(p)) | (Run::Literal(p), Run::Fill { .. }) => {
                    out.push_group(p);
                    a.advance(1);
                    b.advance(1);
                    remaining -= 1;
                }
                (Run::Literal(pa), Run::Literal(pb)) => {
                    out.push_group(op.apply(pa, pb) & PAYLOAD_MASK);
                    a.advance(1);
                    b.advance(1);
                    remaining -= 1;
                }
            }
        }
        Self {
            code: out.finish(),
            len: self.len,
        }
    }

    /// Value of bit `i`, by scanning the code sequence.
    ///
    /// `O(code words)` — fine for spot probes (row decoding); bulk reads
    /// should go through [`WahCursor`] or [`WahBitmap::decompress`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        let mut group = i / GROUP_BITS;
        for &w in &self.code {
            if w & FILL_FLAG != 0 {
                let groups = (w & COUNT_MASK) as usize;
                if group < groups {
                    return w & FILL_VALUE != 0;
                }
                group -= groups;
            } else {
                if group == 0 {
                    return w >> (i % GROUP_BITS) & 1 == 1;
                }
                group -= 1;
            }
        }
        unreachable!("code words do not cover bit {i}")
    }

    /// Serialises as `[u64 len][u64 code words...]`, little-endian.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.code.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for &w in &self.code {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses the layout from [`WahBitmap::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BitVecError::Corrupt`] if the buffer is truncated or the
    /// code words do not cover exactly the declared bit count.
    pub fn from_bytes(raw: &[u8]) -> Result<Self, BitVecError> {
        if raw.len() < 8 || !raw.len().is_multiple_of(8) {
            return Err(BitVecError::Corrupt {
                detail: format!("WAH buffer of {} bytes is not word-aligned", raw.len()),
            });
        }
        let len = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")) as usize;
        let code: Vec<u64> = raw[8..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let covered: usize = code
            .iter()
            .map(|&w| {
                if w & FILL_FLAG != 0 {
                    (w & COUNT_MASK) as usize * GROUP_BITS
                } else {
                    GROUP_BITS
                }
            })
            .sum();
        // The last group may be partial, so coverage must reach len and
        // not exceed it by more than one group.
        if covered < len || covered >= len + GROUP_BITS {
            return Err(BitVecError::Corrupt {
                detail: format!("WAH code covers {covered} bits but header declares {len}"),
            });
        }
        Ok(Self { code, len })
    }
}

/// Resumable decoder that materialises word-aligned evaluation windows
/// out of a WAH code sequence without decompressing the whole bitmap.
///
/// The segment-major evaluator asks for windows in ascending row order;
/// the cursor remembers which code piece it sits on, so a full sweep
/// costs `O(code words + windows)` despite the 63-bit groups never
/// aligning with the 64-bit window words. Asking for an earlier window
/// resets and rescans from the front.
#[derive(Debug)]
pub struct WahCursor<'a> {
    wah: &'a WahBitmap,
    /// Index of the code piece the cursor sits on.
    idx: usize,
    /// Absolute index of the first group covered by piece `idx`.
    group: u64,
}

impl<'a> WahCursor<'a> {
    /// Opens a cursor at the start of `wah`.
    #[must_use]
    pub fn new(wah: &'a WahBitmap) -> Self {
        Self {
            wah,
            idx: 0,
            group: 0,
        }
    }

    /// Groups covered by code piece `w`.
    fn piece_groups(w: u64) -> u64 {
        if w & FILL_FLAG != 0 {
            w & COUNT_MASK
        } else {
            1
        }
    }

    /// Materialises the window covering bits
    /// `start_word * 64 .. (start_word + out.len()) * 64` (clipped to
    /// the bitmap length) into `out`, or classifies a window lying
    /// wholly inside one fill as uniform without writing any words.
    ///
    /// # Panics
    ///
    /// Panics if the window starts at or past the end of a non-empty
    /// bitmap.
    pub fn fill_window(&mut self, start_word: usize, out: &mut [u64]) -> WindowFill {
        let ws = start_word * 64;
        let len = self.wah.len;
        assert!(ws < len || len == 0, "window starts past end");
        let valid = (len - ws).min(out.len() * 64);
        let we_valid = ws + valid;
        let mut touched = 0u64;
        if self.group as usize * GROUP_BITS > ws {
            self.idx = 0;
            self.group = 0;
        }
        // Seek: skip pieces that end at or before the window start.
        let code = &self.wah.code;
        while self.idx < code.len() {
            let g = Self::piece_groups(code[self.idx]);
            if (self.group + g) as usize * GROUP_BITS <= ws {
                self.idx += 1;
                self.group += g;
                touched += 8;
            } else {
                break;
            }
        }
        // Uniform fast path: the whole (valid) window inside one fill.
        if self.idx < code.len() {
            let w = code[self.idx];
            if w & FILL_FLAG != 0 {
                let end_bit = (self.group + (w & COUNT_MASK)) as usize * GROUP_BITS;
                if end_bit >= we_valid {
                    return WindowFill {
                        kind: if w & FILL_VALUE != 0 {
                            WindowKind::Ones
                        } else {
                            WindowKind::Zeros
                        },
                        bytes_touched: touched + 8,
                    };
                }
            }
        }
        // Mixed: decode every piece overlapping the window.
        out.fill(0);
        let we = ws + out.len() * 64;
        let (mut i, mut g0) = (self.idx, self.group);
        let mut any = false;
        while i < code.len() && (g0 as usize) * GROUP_BITS < we {
            let w = code[i];
            touched += 8;
            if w & FILL_FLAG != 0 {
                let groups = w & COUNT_MASK;
                if w & FILL_VALUE != 0 {
                    let a = ((g0 as usize) * GROUP_BITS).max(ws);
                    let b = (((g0 + groups) as usize) * GROUP_BITS).min(we_valid);
                    if a < b {
                        set_bit_range(out, a - ws, b - ws);
                        any = true;
                    }
                }
                g0 += groups;
            } else {
                let off = (g0 as usize * GROUP_BITS) as i64 - ws as i64;
                if w & PAYLOAD_MASK != 0 {
                    scatter_group(out, off, w & PAYLOAD_MASK);
                    any = true;
                }
                g0 += 1;
            }
            i += 1;
        }
        WindowFill {
            kind: if any {
                WindowKind::Mixed
            } else {
                WindowKind::Zeros
            },
            bytes_touched: touched,
        }
    }
}

/// Sets bits `start..end` (exclusive) in a packed word buffer.
fn set_bit_range(out: &mut [u64], start: usize, end: usize) {
    debug_assert!(start < end && end <= out.len() * 64);
    let (ws, we) = (start / 64, (end - 1) / 64);
    let lo_mask = !0u64 << (start % 64);
    let hi_mask = !0u64 >> (63 - (end - 1) % 64);
    if ws == we {
        out[ws] |= lo_mask & hi_mask;
    } else {
        out[ws] |= lo_mask;
        for w in &mut out[ws + 1..we] {
            *w = !0;
        }
        out[we] |= hi_mask;
    }
}

/// ORs a 63-bit group payload into `out` at signed bit offset `off`
/// (negative when the group starts before the window; bits outside the
/// window are dropped).
fn scatter_group(out: &mut [u64], off: i64, payload: u64) {
    let (pos, payload) = if off < 0 {
        (0usize, payload >> (-off).min(64) as u32)
    } else {
        (off as usize, payload)
    };
    if payload == 0 || pos >= out.len() * 64 {
        return;
    }
    let (w, b) = (pos / 64, pos % 64);
    out[w] |= payload << b;
    if b > 0 && w + 1 < out.len() {
        out[w + 1] |= payload >> (64 - b);
    }
}

/// The two compressed-domain operations, named so [`WahBitmap::binary_op`]
/// can recognise absorbing fills (`0 AND x = 0`, `1 OR x = 1`) and skip
/// the other operand's runs without decoding them.
#[derive(Clone, Copy)]
enum BinOp {
    And,
    Or,
}

impl BinOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            Self::And => a & b,
            Self::Or => a | b,
        }
    }

    fn apply_bool(self, a: bool, b: bool) -> bool {
        match self {
            Self::And => a && b,
            Self::Or => a || b,
        }
    }

    /// `true` if a fill of `ones` forces the result regardless of the
    /// other operand.
    fn absorbs(self, ones: bool) -> bool {
        match self {
            Self::And => !ones,
            Self::Or => ones,
        }
    }
}

/// The piece a [`RunCursor`] currently sits on.
#[derive(Clone, Copy)]
enum Run {
    /// A fill covering `groups` whole 63-bit groups.
    Fill { ones: bool, groups: u64 },
    /// One literal group's payload.
    Literal(u64),
}

/// Streams *runs* (fills with their remaining group counts, or single
/// literal groups) out of a WAH code sequence.
struct RunCursor<'a> {
    code: &'a [u64],
    idx: usize,
    /// Groups left in the current fill word (0 = not inside a fill).
    fill_remaining: u64,
    fill_ones: bool,
}

impl<'a> RunCursor<'a> {
    fn new(code: &'a [u64]) -> Self {
        Self {
            code,
            idx: 0,
            fill_remaining: 0,
            fill_ones: false,
        }
    }

    /// The current run without consuming it.
    fn peek(&mut self) -> Run {
        if self.fill_remaining == 0 {
            let w = self.code[self.idx];
            if w & FILL_FLAG != 0 {
                self.idx += 1;
                self.fill_ones = w & FILL_VALUE != 0;
                self.fill_remaining = w & COUNT_MASK;
            } else {
                return Run::Literal(w);
            }
        }
        Run::Fill {
            ones: self.fill_ones,
            groups: self.fill_remaining,
        }
    }

    /// Consumes `n` groups, crossing piece boundaries as needed. Skipped
    /// literal words cost one index bump each; skipped fills cost O(1)
    /// per fill word regardless of their group counts.
    fn advance(&mut self, mut n: u64) {
        while n > 0 {
            match self.peek() {
                Run::Fill { groups, .. } => {
                    let step = groups.min(n);
                    self.fill_remaining -= step;
                    n -= step;
                }
                Run::Literal(_) => {
                    self.idx += 1;
                    n -= 1;
                }
            }
        }
    }

    /// Consumes and returns a single group's 63-bit payload.
    fn next_group(&mut self) -> u64 {
        match self.peek() {
            Run::Fill { ones, .. } => {
                self.fill_remaining -= 1;
                if ones {
                    PAYLOAD_MASK
                } else {
                    0
                }
            }
            Run::Literal(p) => {
                self.idx += 1;
                p
            }
        }
    }
}

/// Builds a canonical WAH code sequence: all-zero / all-ones groups become
/// fills, adjacent same-value fills merge (up to the 62-bit count cap),
/// and the trailing partial group is kept literal.
#[derive(Default)]
struct Emitter {
    code: Vec<u64>,
}

impl Emitter {
    fn push_fill(&mut self, ones: bool, mut groups: u64) {
        if let Some(w) = self.code.last_mut() {
            if *w & FILL_FLAG != 0 && (*w & FILL_VALUE != 0) == ones {
                let room = COUNT_MASK - (*w & COUNT_MASK);
                let add = room.min(groups);
                *w += add;
                groups -= add;
            }
        }
        while groups > 0 {
            let take = groups.min(COUNT_MASK);
            self.code
                .push(FILL_FLAG | if ones { FILL_VALUE } else { 0 } | take);
            groups -= take;
        }
    }

    /// Pushes one full group, classifying uniform payloads as fills.
    fn push_group(&mut self, payload: u64) {
        if payload == 0 || payload == PAYLOAD_MASK {
            self.push_fill(payload == PAYLOAD_MASK, 1);
        } else {
            self.code.push(payload);
        }
    }

    /// Pushes the trailing partial group, which stays literal even when
    /// uniform so `count_ones` needs no tail masking.
    fn push_tail_literal(&mut self, payload: u64) {
        self.code.push(payload);
    }

    fn finish(self) -> Vec<u64> {
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, f: impl Fn(usize) -> bool) -> BitVec {
        (0..len).map(f).collect()
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (name, bits) in [
            ("empty", BitVec::new()),
            ("all zero", BitVec::zeros(1000)),
            ("all one", BitVec::ones(1000)),
            ("sparse", BitVec::from_positions(10_000, &[3, 5000, 9999])),
            ("alternating", patterned(500, |i| i % 2 == 0)),
            (
                "partial tail",
                patterned(GROUP_BITS * 3 + 7, |i| i % 5 == 0),
            ),
        ] {
            let wah = WahBitmap::compress(&bits);
            assert_eq!(wah.decompress(), bits, "{name}");
            assert_eq!(wah.count_ones(), bits.count_ones(), "{name} popcount");
            assert_eq!(wah.len(), bits.len(), "{name} len");
        }
    }

    #[test]
    fn sparse_bitmap_compresses_well() {
        let bits = BitVec::from_positions(1_000_000, &[0, 999_999]);
        let wah = WahBitmap::compress(&bits);
        assert!(
            wah.compression_ratio() < 0.01,
            "ratio {}",
            wah.compression_ratio()
        );
    }

    #[test]
    fn dense_random_bitmap_barely_compresses() {
        // Density ≈ 1/2 is the encoded-index regime: RLE gains nothing.
        let bits = patterned(100_000, |i| (i * 2654435761) % 97 < 48);
        let wah = WahBitmap::compress(&bits);
        assert!(
            wah.compression_ratio() > 0.9,
            "ratio {}",
            wah.compression_ratio()
        );
    }

    #[test]
    fn compressed_and_or_match_plain_ops() {
        let a = patterned(5000, |i| i % 7 == 0 || i > 4000);
        let b = patterned(5000, |i| i % 11 == 0 || i < 600);
        let (wa, wb) = (WahBitmap::compress(&a), WahBitmap::compress(&b));
        assert_eq!(wa.and(&wb).decompress(), &a & &b);
        assert_eq!(wa.or(&wb).decompress(), &a | &b);
    }

    #[test]
    fn compressed_ops_on_long_fills() {
        let a = BitVec::zeros(GROUP_BITS * 100);
        let b = BitVec::ones(GROUP_BITS * 100);
        let (wa, wb) = (WahBitmap::compress(&a), WahBitmap::compress(&b));
        assert_eq!(wa.or(&wb).count_ones(), GROUP_BITS * 100);
        assert_eq!(wa.and(&wb).count_ones(), 0);
        // Fill runs should have merged into very few code words.
        assert!(wa.storage_bytes() <= 16);
    }

    #[test]
    fn binary_op_results_are_canonical() {
        // Canonical form == what `compress` would produce from the dense
        // result: uniform groups become fills, adjacent same-value fills
        // coalesce, partial tails stay literal.
        let shapes: Vec<(BitVec, BitVec)> = vec![
            (
                patterned(GROUP_BITS * 40 + 17, |i| i < GROUP_BITS * 10),
                patterned(GROUP_BITS * 40 + 17, |i| {
                    (GROUP_BITS * 5..GROUP_BITS * 30).contains(&i)
                }),
            ),
            (
                patterned(5000, |i| i % 7 == 0 || i > 4000),
                patterned(5000, |i| i % 11 == 0 || i < 600),
            ),
            (
                // Complementary halves: AND is all-zero, OR all-one.
                patterned(GROUP_BITS * 8, |i| i < GROUP_BITS * 4),
                patterned(GROUP_BITS * 8, |i| i >= GROUP_BITS * 4),
            ),
            (BitVec::new(), BitVec::new()),
        ];
        for (a, b) in shapes {
            let (wa, wb) = (WahBitmap::compress(&a), WahBitmap::compress(&b));
            assert_eq!(
                wa.and(&wb),
                WahBitmap::compress(&(&a & &b)),
                "AND canonical"
            );
            assert_eq!(wa.or(&wb), WahBitmap::compress(&(&a | &b)), "OR canonical");
        }
    }

    #[test]
    fn binary_op_skips_runs_without_expanding_them() {
        // A long zero fill AND anything is a zero fill: the result must
        // stay a handful of code words, and the dense operand's groups
        // must not be materialised into the output.
        let rows = GROUP_BITS * 100_000;
        let sparse = WahBitmap::compress(&BitVec::from_positions(rows, &[1, rows - 2]));
        let dense = WahBitmap::compress(&patterned(rows, |i| i % 3 == 0));
        let anded = sparse.and(&dense);
        assert!(
            anded.storage_bytes() <= 6 * 8,
            "absorbing fill did not stay compressed: {} bytes",
            anded.storage_bytes()
        );
        // Positions 1 and rows-2 both fall on i % 3 != 0.
        assert_eq!(anded.count_ones(), 0);
        assert_eq!(sparse.or(&dense).count_ones(), dense.count_ones() + 2);
    }

    #[test]
    fn cursor_windows_match_dense_words() {
        let len = 300_000 + 17; // partial tail group and partial tail word
        let bits = patterned(len, |i| {
            (i.wrapping_mul(2654435761)) % 251 < 2 || (50_000..180_000).contains(&i)
        });
        let wah = WahBitmap::compress(&bits);
        let mut cur = WahCursor::new(&wah);
        let words = bits.words();
        let mut buf = [0u64; 64];
        let mut start = 0;
        while start < words.len() {
            let n = 64.min(words.len() - start);
            let w = cur.fill_window(start, &mut buf[..n]);
            let dense = &words[start..start + n];
            match w.kind {
                crate::roaring::WindowKind::Mixed => {
                    assert_eq!(&buf[..n], dense, "window @{start}");
                }
                crate::roaring::WindowKind::Zeros => {
                    assert!(dense.iter().all(|&x| x == 0), "window @{start}");
                }
                crate::roaring::WindowKind::Ones => {
                    let valid = (len - start * 64).min(n * 64);
                    for (j, &x) in dense.iter().enumerate() {
                        let bits_here = (valid - j * 64).min(64);
                        let mask = if bits_here == 64 {
                            !0
                        } else {
                            (1u64 << bits_here) - 1
                        };
                        assert_eq!(x & mask, mask, "window @{start} word {j}");
                    }
                }
            }
            start += n;
        }
    }

    #[test]
    fn cursor_long_fill_windows_stay_uniform_and_cheap() {
        let rows = GROUP_BITS * 64 * 1000;
        let sparse = WahBitmap::compress(&BitVec::from_positions(rows, &[0, rows - 1]));
        let mut cur = WahCursor::new(&sparse);
        let mut buf = [0u64; 64];
        // A window deep inside the long zero fill never decodes groups.
        let w = cur.fill_window(3000, &mut buf);
        assert_eq!(w.kind, crate::roaring::WindowKind::Zeros);
        assert!(w.bytes_touched <= 3 * 8, "{} bytes", w.bytes_touched);
        // Regressing to an earlier window rescans but stays correct.
        let w = cur.fill_window(0, &mut buf);
        assert_eq!(w.kind, crate::roaring::WindowKind::Mixed);
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn serialisation_roundtrip() {
        let bits = patterned(12_345, |i| i % 13 == 0);
        let wah = WahBitmap::compress(&bits);
        let restored = WahBitmap::from_bytes(&wah.to_bytes()).unwrap();
        assert_eq!(restored, wah);
    }

    #[test]
    fn serialisation_rejects_bad_coverage() {
        let wah = WahBitmap::compress(&BitVec::ones(200));
        let mut raw = wah.to_bytes();
        // Corrupt the declared length upward beyond coverage.
        raw[..8].copy_from_slice(&10_000u64.to_le_bytes());
        assert!(WahBitmap::from_bytes(&raw).is_err());
        assert!(WahBitmap::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn binary_op_length_mismatch_panics() {
        let a = WahBitmap::compress(&BitVec::zeros(10));
        let b = WahBitmap::compress(&BitVec::zeros(20));
        let _ = a.and(&b);
    }
}
