//! Serde support for [`BitVec`].
//!
//! Serialises as `{ len, words }` and re-validates the tail invariant on
//! deserialisation, so hostile or corrupted input cannot smuggle set
//! bits beyond `len` (which would corrupt population counts).
//!
//! The impls are hand-written (no derive) against the vendored serde
//! shim's [`Value`] data model; the trait shapes match real serde, so
//! swapping the shim for the real crate only requires regenerating the
//! `Value`-tree plumbing, not the validation logic.

use crate::core::{BitVec, WORD_BITS};
use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

impl Serialize for BitVec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("len", Value::U64(self.len() as u64)),
            (
                "words",
                Value::Seq(self.words().iter().map(|&w| Value::U64(w)).collect()),
            ),
        ]))
    }
}

impl<'de> Deserialize<'de> for BitVec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let Value::Map(fields) = deserializer.deserialize_value()? else {
            return Err(D::Error::custom("BitVec: expected a map"));
        };
        let mut len_field: Option<u64> = None;
        let mut words_field: Option<Vec<u64>> = None;
        for (name, value) in fields {
            match (name, value) {
                ("len", Value::U64(n)) => len_field = Some(n),
                ("words", Value::Seq(items)) => {
                    let mut words = Vec::with_capacity(items.len());
                    for item in items {
                        let Value::U64(w) = item else {
                            return Err(D::Error::custom("BitVec: non-u64 word"));
                        };
                        words.push(w);
                    }
                    words_field = Some(words);
                }
                (other, _) => {
                    return Err(D::Error::custom(format!("BitVec: unknown field {other:?}")));
                }
            }
        }
        let raw_len = len_field.ok_or_else(|| D::Error::custom("BitVec: missing len"))?;
        let words = words_field.ok_or_else(|| D::Error::custom("BitVec: missing words"))?;
        let len =
            usize::try_from(raw_len).map_err(|_| D::Error::custom("bit length overflows usize"))?;
        if words.len() != len.div_ceil(WORD_BITS) {
            return Err(D::Error::custom(format!(
                "{} words inconsistent with {len} bits",
                words.len()
            )));
        }
        let v = BitVec { words, len };
        let mut masked = v.clone();
        masked.mask_tail();
        if masked.words != v.words {
            return Err(D::Error::custom("set bits beyond declared length"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{ValueDeserializer, ValueSerializer};

    fn roundtrip(v: &BitVec) -> Result<BitVec, String> {
        let tree = v.serialize(ValueSerializer).map_err(|e| e.to_string())?;
        BitVec::deserialize(ValueDeserializer(tree)).map_err(|e| e.to_string())
    }

    #[test]
    fn roundtrip_preserves_bits() {
        for len in [0usize, 1, 64, 130] {
            let v: BitVec = (0..len).map(|i| i % 3 == 0).collect();
            assert_eq!(roundtrip(&v).unwrap(), v, "len {len}");
        }
    }

    #[test]
    fn tail_violation_detected() {
        // Declare 4 bits but smuggle a set bit at position 5.
        let bad = Value::Map(vec![
            ("len", Value::U64(4)),
            ("words", Value::Seq(vec![Value::U64(0b10_0001)])),
        ]);
        let err = BitVec::deserialize(ValueDeserializer(bad)).unwrap_err();
        assert!(err.to_string().contains("beyond declared length"));
    }

    #[test]
    fn word_count_mismatch_detected() {
        let bad = Value::Map(vec![
            ("len", Value::U64(100)),
            ("words", Value::Seq(vec![Value::U64(0)])),
        ]);
        let err = BitVec::deserialize(ValueDeserializer(bad)).unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }
}
