//! Serde support for [`BitVec`].
//!
//! Serialises as `{ len, words }` and re-validates the tail invariant on
//! deserialisation, so hostile or corrupted input cannot smuggle set
//! bits beyond `len` (which would corrupt population counts).

use crate::core::{BitVec, WORD_BITS};
use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize, Deserialize)]
struct BitVecRepr {
    len: u64,
    words: Vec<u64>,
}

impl Serialize for BitVec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        BitVecRepr {
            len: self.len() as u64,
            words: self.words().to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for BitVec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = BitVecRepr::deserialize(deserializer)?;
        let len = usize::try_from(repr.len)
            .map_err(|_| D::Error::custom("bit length overflows usize"))?;
        if repr.words.len() != len.div_ceil(WORD_BITS) {
            return Err(D::Error::custom(format!(
                "{} words inconsistent with {len} bits",
                repr.words.len()
            )));
        }
        let v = BitVec {
            words: repr.words,
            len,
        };
        let mut masked = v.clone();
        masked.mask_tail();
        if masked.words != v.words {
            return Err(D::Error::custom("set bits beyond declared length"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal hand-rolled JSON-ish serializer is overkill; use the
    /// serde_test-free route: round-trip through `serde`'s token-less
    /// self-describing format via `serde_json`-like in-memory encoding.
    /// We avoid extra deps by round-tripping through `bincode`-style
    /// manual structs — here simply via the `Repr` directly.
    #[test]
    fn repr_roundtrip_preserves_bits() {
        let v: BitVec = (0..130).map(|i| i % 3 == 0).collect();
        let repr = BitVecRepr {
            len: v.len() as u64,
            words: v.words().to_vec(),
        };
        let restored = BitVec {
            words: repr.words.clone(),
            len: repr.len as usize,
        };
        assert_eq!(restored, v);
    }

    #[test]
    fn tail_violation_detected() {
        // Emulate what Deserialize checks: words with garbage past len.
        let bad = BitVec {
            words: vec![u64::MAX],
            len: 4,
        };
        let mut masked = bad.clone();
        masked.mask_tail();
        assert_ne!(masked.words, bad.words, "the guard must trip");
    }
}
