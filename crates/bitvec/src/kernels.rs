//! Fused multi-operand evaluation kernels for retrieval expressions.
//!
//! The naive way to evaluate a product term `B_3 · B_1' · B_0` is a
//! chain of whole-vector operations: clone `B_3`, `and_assign(B_1')`,
//! `and_assign(B_0)`, then OR the result into the selection bitmap.
//! Every step streams `n/64` words through memory, so a `k`-literal term
//! costs `(k+1) · n/64` word reads/writes and a full-size intermediate
//! allocation.
//!
//! The kernels here evaluate an entire term — up to 64 optionally
//! negated literals — in **one pass**, segment by segment
//! ([`SEGMENT_WORDS`] = 64 words = [`SEGMENT_BITS`] = 4096 rows at a
//! time), using a stack accumulator that stays resident in L1, and OR
//! the finished segment straight into the destination. No intermediate
//! `BitVec` is ever allocated, and two short-circuits apply per segment:
//!
//! * **summary pruning** — if a literal's [`SegmentSummary`] proves the
//!   term is zero on the segment (positive literal over an all-zero
//!   segment, or negated literal over an all-ones segment), the segment
//!   is skipped before any bitmap word is read;
//! * **accumulator short-circuit** — if the stack accumulator goes
//!   all-zero partway through the literal list, the remaining literals
//!   are not read for that segment.
//!
//! [`eval_dnf_range`] additionally iterates **segment-major**: the outer
//! loop walks segments and the inner loop walks product terms, so one
//! 512-byte window of every slice stays L1-resident while *all* terms
//! consume it — a many-term DNF reads each slice word once from memory
//! instead of once per term. A segment whose destination saturates to
//! all-ones skips its remaining terms (OR can add nothing).
//!
//! Evaluation over a *word range* underpins segment-parallel execution:
//! disjoint ranges of the destination can be filled by different threads
//! with bit-identical results.

use crate::core::{BitVec, WORD_BITS};
use crate::roaring::WindowKind;
use crate::simd::{self, KernelPath};
use crate::store::SliceStorage;
use crate::summary::SegmentSummary;
use crate::wah::WahCursor;

/// Words per evaluation segment.
pub const SEGMENT_WORDS: usize = 64;

/// Rows (bits) per evaluation segment.
pub const SEGMENT_BITS: usize = SEGMENT_WORDS * WORD_BITS;

/// One literal of a product term: a bitmap vector, possibly negated,
/// with an optional per-segment summary for pruning.
#[derive(Debug, Clone, Copy)]
pub struct Literal<'a> {
    words: &'a [u64],
    negated: bool,
    summary: Option<&'a SegmentSummary>,
}

impl<'a> Literal<'a> {
    /// Literal over `bits`, negated if `negated`.
    #[must_use]
    pub fn new(bits: &'a BitVec, negated: bool) -> Self {
        Self {
            words: bits.words(),
            negated,
            summary: None,
        }
    }

    /// Literal with a segment summary enabling whole-segment pruning.
    ///
    /// # Panics
    ///
    /// Panics if the summary was built over a vector of different length.
    #[must_use]
    pub fn with_summary(bits: &'a BitVec, negated: bool, summary: &'a SegmentSummary) -> Self {
        assert_eq!(
            summary.len(),
            bits.len(),
            "summary length {} != slice length {}",
            summary.len(),
            bits.len()
        );
        Self {
            words: bits.words(),
            negated,
            summary: Some(summary),
        }
    }

    /// `true` if the literal is complemented (`B_i'`).
    #[must_use]
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// `true` if this literal proves the term zero on global segment
    /// `seg` without reading bitmap words.
    fn prunes_segment(&self, seg: usize) -> bool {
        match self.summary {
            Some(s) if self.negated => s.segment_is_full(seg),
            Some(s) => s.segment_is_zero(seg),
            None => false,
        }
    }
}

/// Work counters reported by the fused kernels.
///
/// `words_scanned` counts *uncompressed* bitmap words actually read from
/// dense slice storage; `bytes_touched` additionally counts compressed
/// container bytes examined by the stored-slice kernels, so it reflects
/// real memory traffic across every container kind. The skip counters
/// measure how much reading the short-circuits avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Dense slice words read from memory.
    pub words_scanned: u64,
    /// Storage bytes examined: 8 per dense word plus the compressed
    /// bytes (array entries, run intervals, bitmap-container words)
    /// each on-demand window materialisation inspected.
    pub bytes_touched: u64,
    /// Compressed (term, literal, segment) windows classified all-zero
    /// or all-one from container metadata, with no materialisation.
    pub compressed_chunks_skipped: u64,
    /// (term, segment) pairs skipped via summaries before any read.
    pub segments_pruned: u64,
    /// (term, segment) pairs abandoned mid-term on an all-zero
    /// accumulator.
    pub segments_short_circuited: u64,
    /// Kernel entries that ran the scalar word-pass tier.
    pub dispatch_scalar: u64,
    /// Kernel entries that ran the portable vector tier.
    pub dispatch_portable: u64,
    /// Kernel entries that ran the AVX2 intrinsic tier.
    pub dispatch_avx2: u64,
}

impl KernelStats {
    /// Fresh counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.words_scanned += other.words_scanned;
        self.bytes_touched += other.bytes_touched;
        self.compressed_chunks_skipped += other.compressed_chunks_skipped;
        self.segments_pruned += other.segments_pruned;
        self.segments_short_circuited += other.segments_short_circuited;
        self.dispatch_scalar += other.dispatch_scalar;
        self.dispatch_portable += other.dispatch_portable;
        self.dispatch_avx2 += other.dispatch_avx2;
    }

    /// Records that one kernel entry resolved to `path`.
    pub fn record_dispatch(&mut self, path: KernelPath) {
        match path {
            KernelPath::Scalar => self.dispatch_scalar += 1,
            KernelPath::Portable => self.dispatch_portable += 1,
            KernelPath::Avx2 => self.dispatch_avx2 += 1,
        }
    }

    /// Name of the dominant kernel tier these counters saw, or `"none"`
    /// if no kernel entry was recorded. With mixed dispatch (e.g. a
    /// benchmark forcing paths mid-run) the most-used tier wins; ties
    /// break towards the more capable tier.
    #[must_use]
    pub fn kernel_path(&self) -> &'static str {
        let (s, p, a) = (
            self.dispatch_scalar,
            self.dispatch_portable,
            self.dispatch_avx2,
        );
        if s == 0 && p == 0 && a == 0 {
            "none"
        } else if a >= p && a >= s {
            KernelPath::Avx2.name()
        } else if p >= s {
            KernelPath::Portable.name()
        } else {
            KernelPath::Scalar.name()
        }
    }

    /// Adds these counters to the process-wide kernel metrics
    /// (`ebi_kernel_*_total` families) in `registry`. Callers batch: the
    /// kernels accumulate into a stack-resident `KernelStats` and
    /// publish once per evaluation, so the hot loops never touch the
    /// registry.
    pub fn publish_to(&self, registry: &ebi_obs::MetricsRegistry) {
        let counters = [
            ("ebi_kernel_words_scanned_total", self.words_scanned),
            ("ebi_kernel_bytes_touched_total", self.bytes_touched),
            (
                "ebi_kernel_compressed_chunks_skipped_total",
                self.compressed_chunks_skipped,
            ),
            ("ebi_kernel_segments_pruned_total", self.segments_pruned),
            (
                "ebi_kernel_segments_short_circuited_total",
                self.segments_short_circuited,
            ),
            ("ebi_kernel_dispatch_scalar_total", self.dispatch_scalar),
            ("ebi_kernel_dispatch_portable_total", self.dispatch_portable),
            ("ebi_kernel_dispatch_avx2_total", self.dispatch_avx2),
        ];
        for (name, v) in counters {
            if v != 0 {
                registry.counter(name, &[]).add(v);
            }
        }
    }
}

/// OR-accumulates one product term (the AND of `literals`) into
/// `dst`, which covers words `word_offset ..` of a vector of `len_bits`
/// bits.
///
/// An empty literal list is the tautology term: `dst` is set to all
/// ones. `dst` is only ever OR-ed into (besides final tail masking), so
/// calling this once per term over a zeroed buffer evaluates a full DNF.
///
/// # Panics
///
/// Panics if `word_offset` is not segment-aligned, if `dst` overruns
/// `len_bits`, or if any literal's slice is shorter than the range
/// (message contains "slice length", matching the whole-vector
/// evaluator).
pub fn or_accumulate_term(
    dst: &mut [u64],
    word_offset: usize,
    len_bits: usize,
    literals: &[Literal<'_>],
    stats: &mut KernelStats,
) {
    assert_eq!(
        word_offset % SEGMENT_WORDS,
        0,
        "word_offset {word_offset} not segment-aligned"
    );
    let total_words = len_bits.div_ceil(WORD_BITS);
    assert!(
        word_offset + dst.len() <= total_words,
        "destination range overruns {len_bits}-bit vector"
    );
    for lit in literals {
        assert!(
            lit.words.len() >= word_offset + dst.len(),
            "slice length {} words < evaluated range end {}",
            lit.words.len(),
            word_offset + dst.len()
        );
    }

    if literals.is_empty() {
        dst.fill(u64::MAX);
        mask_range_tail(dst, word_offset, len_bits);
        return;
    }

    let path = simd::selected_path();
    stats.record_dispatch(path);
    let mut acc = [0u64; SEGMENT_WORDS];
    for (chunk_idx, seg_dst) in dst.chunks_mut(SEGMENT_WORDS).enumerate() {
        let seg = word_offset / SEGMENT_WORDS + chunk_idx;
        let w0 = word_offset + chunk_idx * SEGMENT_WORDS;
        let nw = seg_dst.len();
        if eval_term_segment(path, &mut acc, literals, seg, w0, nw, stats) {
            simd::or_into(path, seg_dst, &acc[..nw]);
        }
    }
    // Negated literals set garbage bits beyond `len_bits` in the final
    // word; restore the tail invariant.
    mask_range_tail(dst, word_offset, len_bits);
}

/// Evaluates one non-empty product term over one segment into
/// `acc[..nw]`, where `w0` is the segment's first word and `seg` its
/// global index.
///
/// Returns `false` when the term contributes nothing on the segment
/// (summary-pruned, short-circuited, or evaluated to all-zero); `acc`
/// contents are unspecified in that case. The all-zero check folds into
/// the AND pass itself (an OR-reduction carried per word), so the
/// short-circuit costs no extra sweep over the accumulator. All word
/// work goes through the [`simd`] passes selected by `path`.
fn eval_term_segment(
    path: KernelPath,
    acc: &mut [u64; SEGMENT_WORDS],
    literals: &[Literal<'_>],
    seg: usize,
    w0: usize,
    nw: usize,
    stats: &mut KernelStats,
) -> bool {
    if literals.iter().any(|l| l.prunes_segment(seg)) {
        stats.segments_pruned += 1;
        return false;
    }
    // The first two literals are fused into a single load-AND-store
    // pass, saving the plain copy pass a chained evaluation would do.
    // Every pass also folds an OR-reduction (`any`) over what it wrote,
    // so the all-zero probe costs no separate sweep of the accumulator.
    let (first, rest) = literals.split_first().expect("non-empty literals");
    let src1 = &first.words[w0..w0 + nw];
    let mut any;
    let mut remaining: &[Literal<'_>] = rest;
    if let Some((second, rest)) = remaining.split_first() {
        let src2 = &second.words[w0..w0 + nw];
        any = simd::fused_pass2(
            path,
            &mut acc[..nw],
            src1,
            src2,
            first.negated,
            second.negated,
        );
        stats.words_scanned += 2 * nw as u64;
        stats.bytes_touched += 16 * nw as u64;
        remaining = rest;
    } else {
        any = simd::init_pass(path, &mut acc[..nw], src1, first.negated);
        stats.words_scanned += nw as u64;
        stats.bytes_touched += 8 * nw as u64;
    }

    while let Some((lit, rest)) = remaining.split_first() {
        // A zero accumulator cannot be revived by further ANDs: skip
        // the remaining literals for this segment.
        if !any {
            stats.segments_short_circuited += 1;
            return false;
        }
        let src = &lit.words[w0..w0 + nw];
        any = simd::and_pass(path, &mut acc[..nw], src, lit.negated);
        stats.words_scanned += nw as u64;
        stats.bytes_touched += 8 * nw as u64;
        remaining = rest;
    }
    // An all-zero result ORs nothing; telling the caller saves the pass.
    any
}

/// Evaluates a full DNF (OR of product terms) into `dst`, a zeroed
/// window covering words `word_offset ..` of a `len_bits`-bit vector.
///
/// Iteration is segment-major: every term consumes a segment while its
/// slice words are still cache-resident, and a segment whose
/// destination reaches all-ones skips its remaining terms. Disjoint
/// windows may be evaluated concurrently (the literal data is only
/// read); results are bit-identical to whole-vector evaluation.
///
/// # Panics
///
/// As [`or_accumulate_term`].
pub fn eval_dnf_range(
    dst: &mut [u64],
    word_offset: usize,
    len_bits: usize,
    terms: &[Vec<Literal<'_>>],
    stats: &mut KernelStats,
) {
    assert_eq!(
        word_offset % SEGMENT_WORDS,
        0,
        "word_offset {word_offset} not segment-aligned"
    );
    let total_words = len_bits.div_ceil(WORD_BITS);
    assert!(
        word_offset + dst.len() <= total_words,
        "destination range overruns {len_bits}-bit vector"
    );
    for lit in terms.iter().flatten() {
        assert!(
            lit.words.len() >= word_offset + dst.len(),
            "slice length {} words < evaluated range end {}",
            lit.words.len(),
            word_offset + dst.len()
        );
    }

    let path = simd::selected_path();
    stats.record_dispatch(path);
    let mut acc = [0u64; SEGMENT_WORDS];
    for (chunk_idx, seg_dst) in dst.chunks_mut(SEGMENT_WORDS).enumerate() {
        let seg = word_offset / SEGMENT_WORDS + chunk_idx;
        let w0 = word_offset + chunk_idx * SEGMENT_WORDS;
        let nw = seg_dst.len();
        for term in terms {
            if term.is_empty() {
                // Tautology term: the segment saturates immediately.
                seg_dst.fill(u64::MAX);
                break;
            }
            if eval_term_segment(path, &mut acc, term, seg, w0, nw, stats)
                && simd::or_into(path, seg_dst, &acc[..nw])
            {
                // Every destination word is saturated: no later term
                // can add a bit to this segment.
                break;
            }
        }
    }
    mask_range_tail(dst, word_offset, len_bits);
}

/// Evaluates a full DNF into a freshly allocated selection bitmap of
/// `len_bits` bits.
///
/// # Panics
///
/// As [`or_accumulate_term`].
#[must_use]
pub fn eval_dnf(terms: &[Vec<Literal<'_>>], len_bits: usize, stats: &mut KernelStats) -> BitVec {
    let mut dst = BitVec::zeros(len_bits);
    eval_dnf_range(&mut dst.words, 0, len_bits, terms, stats);
    dst
}

/// One literal of a product term over an adaptively stored slice: the
/// container-agnostic counterpart of [`Literal`].
#[derive(Debug, Clone, Copy)]
pub struct StoredLiteral<'a> {
    slice: &'a SliceStorage,
    negated: bool,
    summary: Option<&'a SegmentSummary>,
}

impl<'a> StoredLiteral<'a> {
    /// Literal over `slice`, negated if `negated`.
    #[must_use]
    pub fn new(slice: &'a SliceStorage, negated: bool) -> Self {
        Self {
            slice,
            negated,
            summary: None,
        }
    }

    /// Literal with a segment summary enabling whole-segment pruning.
    ///
    /// # Panics
    ///
    /// Panics if the summary was built over a vector of different length.
    #[must_use]
    pub fn with_summary(
        slice: &'a SliceStorage,
        negated: bool,
        summary: &'a SegmentSummary,
    ) -> Self {
        assert_eq!(
            summary.len(),
            slice.len(),
            "summary length {} != slice length {}",
            summary.len(),
            slice.len()
        );
        Self {
            slice,
            negated,
            summary: Some(summary),
        }
    }

    /// `true` if the literal is complemented (`B_i'`).
    #[must_use]
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    fn prunes_segment(&self, seg: usize) -> bool {
        match self.summary {
            Some(s) if self.negated => s.segment_is_full(seg),
            Some(s) => s.segment_is_zero(seg),
            None => false,
        }
    }
}

/// What one product term contributed to a segment.
enum TermSegment {
    /// Nothing: the term is zero on this segment.
    Zero,
    /// Everything: every literal was an identity window, so the term is
    /// all-ones on the segment without any word having been read.
    Ones,
    /// The accumulator holds the term's (non-zero) segment bits.
    Mixed,
}

/// Evaluates a DNF over adaptively stored slices into `dst`, a zeroed
/// window covering words `word_offset ..` of a `len_bits`-bit vector.
///
/// Iteration is segment-major exactly like [`eval_dnf_range`]; the
/// difference is the literal fetch. Dense slices hand their words to the
/// fold directly; compressed slices materialise one 64-word window on
/// demand into a scratch buffer — and windows their containers classify
/// as all-zero or all-one never materialise at all, instead short-
/// circuiting the term (positive×zeros, negated×ones) or dropping out of
/// the fold as identities (positive×ones, negated×zeros). WAH slices are
/// decoded through a per-literal resumable [`WahCursor`], so a full
/// ascending sweep costs `O(code words)` amortised.
///
/// Results are bit-identical to densifying every slice and running
/// [`eval_dnf_range`]; only the traffic counters differ.
///
/// # Panics
///
/// Panics if `word_offset` is not segment-aligned, if `dst` overruns
/// `len_bits`, or if any literal's slice length differs from `len_bits`
/// (message contains "slice length").
pub fn eval_dnf_stored_range(
    dst: &mut [u64],
    word_offset: usize,
    len_bits: usize,
    terms: &[Vec<StoredLiteral<'_>>],
    stats: &mut KernelStats,
) {
    assert_eq!(
        word_offset % SEGMENT_WORDS,
        0,
        "word_offset {word_offset} not segment-aligned"
    );
    let total_words = len_bits.div_ceil(WORD_BITS);
    assert!(
        word_offset + dst.len() <= total_words,
        "destination range overruns {len_bits}-bit vector"
    );
    for lit in terms.iter().flatten() {
        assert_eq!(
            lit.slice.len(),
            len_bits,
            "slice length {} bits != evaluated vector length {len_bits}",
            lit.slice.len()
        );
    }

    // Per-(term, literal) WAH cursors persist across the ascending
    // segment sweep so each code word is decoded at most once per range.
    let mut cursors: Vec<Vec<Option<WahCursor<'_>>>> = terms
        .iter()
        .map(|term| {
            term.iter()
                .map(|lit| match lit.slice {
                    SliceStorage::Wah(w) => Some(WahCursor::new(w)),
                    _ => None,
                })
                .collect()
        })
        .collect();

    let path = simd::selected_path();
    stats.record_dispatch(path);
    let mut acc = [0u64; SEGMENT_WORDS];
    let mut scratch = [0u64; SEGMENT_WORDS];
    for (chunk_idx, seg_dst) in dst.chunks_mut(SEGMENT_WORDS).enumerate() {
        let seg = word_offset / SEGMENT_WORDS + chunk_idx;
        let w0 = word_offset + chunk_idx * SEGMENT_WORDS;
        let nw = seg_dst.len();
        for (term, term_cursors) in terms.iter().zip(cursors.iter_mut()) {
            if term.is_empty() {
                // Tautology term: the segment saturates immediately.
                seg_dst.fill(u64::MAX);
                break;
            }
            let contrib = eval_stored_term_segment(
                path,
                &mut acc,
                &mut scratch,
                term,
                term_cursors,
                seg,
                w0,
                nw,
                stats,
            );
            match contrib {
                TermSegment::Zero => {}
                TermSegment::Ones => {
                    seg_dst.fill(u64::MAX);
                    break;
                }
                TermSegment::Mixed => {
                    if simd::or_into(path, seg_dst, &acc[..nw]) {
                        break;
                    }
                }
            }
        }
    }
    mask_range_tail(dst, word_offset, len_bits);
}

/// Evaluates a DNF over stored slices into a freshly allocated selection
/// bitmap of `len_bits` bits.
///
/// # Panics
///
/// As [`eval_dnf_stored_range`].
#[must_use]
pub fn eval_dnf_stored(
    terms: &[Vec<StoredLiteral<'_>>],
    len_bits: usize,
    stats: &mut KernelStats,
) -> BitVec {
    let mut dst = BitVec::zeros(len_bits);
    eval_dnf_stored_range(&mut dst.words, 0, len_bits, terms, stats);
    dst
}

/// Evaluates one non-empty stored term over one segment into
/// `acc[..nw]`.
#[allow(clippy::too_many_arguments)]
fn eval_stored_term_segment(
    path: KernelPath,
    acc: &mut [u64; SEGMENT_WORDS],
    scratch: &mut [u64; SEGMENT_WORDS],
    term: &[StoredLiteral<'_>],
    cursors: &mut [Option<WahCursor<'_>>],
    seg: usize,
    w0: usize,
    nw: usize,
    stats: &mut KernelStats,
) -> TermSegment {
    if term.iter().any(|l| l.prunes_segment(seg)) {
        stats.segments_pruned += 1;
        return TermSegment::Zero;
    }
    let mut started = false;
    for (li, lit) in term.iter().enumerate() {
        // Fetch the literal's window: either a direct borrow of dense
        // words, a materialised scratch window, or a uniform
        // classification that resolves the literal without any words.
        let src: &[u64] = match lit.slice {
            SliceStorage::Dense(b) => {
                stats.words_scanned += nw as u64;
                stats.bytes_touched += 8 * nw as u64;
                &b.words()[w0..w0 + nw]
            }
            SliceStorage::Roaring(r) => {
                let wf = r.fill_window(w0, &mut scratch[..nw]);
                stats.bytes_touched += wf.bytes_touched;
                match resolve_window(wf.kind, lit.negated, stats) {
                    WindowAction::TermDead => return TermSegment::Zero,
                    WindowAction::Identity => continue,
                    WindowAction::Fold => &scratch[..nw],
                }
            }
            SliceStorage::Wah(_) => {
                let cur = cursors[li].as_mut().expect("WAH literal has a cursor");
                let wf = cur.fill_window(w0, &mut scratch[..nw]);
                stats.bytes_touched += wf.bytes_touched;
                match resolve_window(wf.kind, lit.negated, stats) {
                    WindowAction::TermDead => return TermSegment::Zero,
                    WindowAction::Identity => continue,
                    WindowAction::Fold => &scratch[..nw],
                }
            }
        };
        let any = if started {
            simd::and_pass(path, &mut acc[..nw], src, lit.negated)
        } else {
            started = true;
            simd::init_pass(path, &mut acc[..nw], src, lit.negated)
        };
        if !any {
            if li + 1 < term.len() {
                stats.segments_short_circuited += 1;
            }
            return TermSegment::Zero;
        }
    }
    if started {
        TermSegment::Mixed
    } else {
        // Every literal was an identity window: the term is all ones
        // here and no accumulator pass ever ran.
        TermSegment::Ones
    }
}

/// What a uniform (or materialised) window means for the literal fold.
enum WindowAction {
    /// The literal zeroes the whole term on this segment.
    TermDead,
    /// The literal is all-ones here: it drops out of the AND.
    Identity,
    /// The window was materialised; fold it.
    Fold,
}

/// Maps a compressed window classification and literal polarity to a
/// fold action, crediting skipped materialisations.
fn resolve_window(kind: WindowKind, negated: bool, stats: &mut KernelStats) -> WindowAction {
    match (kind, negated) {
        (WindowKind::Zeros, false) | (WindowKind::Ones, true) => {
            stats.compressed_chunks_skipped += 1;
            WindowAction::TermDead
        }
        (WindowKind::Zeros, true) | (WindowKind::Ones, false) => {
            stats.compressed_chunks_skipped += 1;
            WindowAction::Identity
        }
        (WindowKind::Mixed, _) => WindowAction::Fold,
    }
}

/// Estimates the word traffic [`eval_dnf_range`] will generate for
/// `terms` over a `len_bits`-bit vector, accounting for summary pruning:
/// a (term, segment) pair any literal's summary prunes contributes
/// nothing; a live pair contributes one segment's words per literal.
///
/// Short-circuits and saturation are not predictable from summaries, so
/// this is an upper bound on post-pruning work — which is exactly what a
/// parallel splitter needs to decide whether fanning out pays.
#[must_use]
pub fn estimate_dnf_work_words(terms: &[Vec<Literal<'_>>], len_bits: usize) -> u64 {
    let segments = len_bits.div_ceil(SEGMENT_BITS);
    let mut words = 0u64;
    for term in terms {
        if term.is_empty() {
            continue;
        }
        let per_segment = (term.len() * SEGMENT_WORDS) as u64;
        if term.iter().all(|l| l.summary.is_none()) {
            words += segments as u64 * per_segment;
            continue;
        }
        for seg in 0..segments {
            if !term.iter().any(|l| l.prunes_segment(seg)) {
                words += per_segment;
            }
        }
    }
    words
}

/// [`estimate_dnf_work_words`] for stored-slice terms. Uniform
/// compressed windows still count (classification cost is small but the
/// estimate is an upper bound either way); only summary pruning is
/// subtracted.
#[must_use]
pub fn estimate_stored_dnf_work_words(terms: &[Vec<StoredLiteral<'_>>], len_bits: usize) -> u64 {
    let segments = len_bits.div_ceil(SEGMENT_BITS);
    let mut words = 0u64;
    for term in terms {
        if term.is_empty() {
            continue;
        }
        let per_segment = (term.len() * SEGMENT_WORDS) as u64;
        if term.iter().all(|l| l.summary.is_none()) {
            words += segments as u64 * per_segment;
            continue;
        }
        for seg in 0..segments {
            if !term.iter().any(|l| l.prunes_segment(seg)) {
                words += per_segment;
            }
        }
    }
    words
}

/// Zeroes bits at positions `>= len_bits` if the window `dst` (starting
/// at `word_offset`) contains the final partial word.
fn mask_range_tail(dst: &mut [u64], word_offset: usize, len_bits: usize) {
    let rem = len_bits % WORD_BITS;
    if rem == 0 {
        return;
    }
    let last_word = len_bits / WORD_BITS;
    if let Some(w) = last_word.checked_sub(word_offset) {
        if w < dst.len() {
            dst[w] &= (1u64 << rem) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SegmentSummary;

    fn naive_term(slices: &[(&BitVec, bool)], len: usize) -> BitVec {
        let mut acc = BitVec::ones(len);
        for &(s, neg) in slices {
            if neg {
                acc.and_not_assign(s);
            } else {
                acc.and_assign(s);
            }
        }
        acc
    }

    fn stripes(len: usize, period: usize, phase: usize) -> BitVec {
        (0..len).map(|i| i % period == phase).collect()
    }

    #[test]
    fn fused_term_matches_naive_chain() {
        let len = SEGMENT_BITS * 2 + 777;
        let a = stripes(len, 3, 0);
        let b = stripes(len, 5, 1);
        let c = stripes(len, 7, 2);
        let mut stats = KernelStats::new();
        let terms = vec![vec![
            Literal::new(&a, false),
            Literal::new(&b, true),
            Literal::new(&c, false),
        ]];
        let fused = eval_dnf(&terms, len, &mut stats);
        let naive = naive_term(&[(&a, false), (&b, true), (&c, false)], len);
        assert_eq!(fused, naive);
        assert!(stats.words_scanned > 0);
    }

    #[test]
    fn multi_term_or_accumulation_matches() {
        let len = SEGMENT_BITS + 100;
        let a = stripes(len, 2, 0);
        let b = stripes(len, 2, 1);
        let terms = vec![vec![Literal::new(&a, false)], vec![Literal::new(&b, false)]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r, BitVec::ones(len));
    }

    #[test]
    fn tautology_term_fills_ones_and_masks_tail() {
        let len = 100;
        let terms = vec![vec![]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r, BitVec::ones(len));
        assert_eq!(stats.words_scanned, 0);
    }

    #[test]
    fn negated_tail_garbage_is_masked() {
        let len = 70;
        let z = BitVec::zeros(len);
        let terms = vec![vec![Literal::new(&z, true)]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r, BitVec::ones(len));
        assert_eq!(r.count_ones() as usize, len);
    }

    #[test]
    fn summary_pruning_skips_zero_segments_without_reads() {
        // Slice with ones only in segment 1 of 3.
        let len = SEGMENT_BITS * 3;
        let mut a = BitVec::zeros(len);
        for i in SEGMENT_BITS..SEGMENT_BITS + 50 {
            a.set(i, true);
        }
        let sa = SegmentSummary::build(&a);
        let b = BitVec::ones(len);
        let sb = SegmentSummary::build(&b);
        let terms = vec![vec![
            Literal::with_summary(&a, false, &sa),
            Literal::with_summary(&b, false, &sb),
        ]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r, a);
        assert_eq!(stats.segments_pruned, 2, "segments 0 and 2 pruned");
        // Only segment 1's words were read: 64 words × 2 literals.
        assert_eq!(stats.words_scanned, 2 * SEGMENT_WORDS as u64);
    }

    #[test]
    fn negated_full_segment_prunes() {
        let len = SEGMENT_BITS * 2;
        let ones = BitVec::ones(len);
        let s = SegmentSummary::build(&ones);
        let other = stripes(len, 2, 0);
        let terms = vec![vec![
            Literal::with_summary(&ones, true, &s),
            Literal::new(&other, false),
        ]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r.count_ones(), 0);
        assert_eq!(stats.segments_pruned, 2);
        assert_eq!(stats.words_scanned, 0);
    }

    #[test]
    fn accumulator_short_circuit_skips_remaining_literals() {
        let len = SEGMENT_BITS;
        let zero = BitVec::zeros(len);
        let a = stripes(len, 2, 0);
        let b = stripes(len, 3, 0);
        // zero kills the accumulator in the fused first pass (which
        // reads the first two literals together); b must not be scanned.
        let terms = vec![vec![
            Literal::new(&zero, false),
            Literal::new(&a, false),
            Literal::new(&b, false),
        ]];
        let mut stats = KernelStats::new();
        let r = eval_dnf(&terms, len, &mut stats);
        assert_eq!(r.count_ones(), 0);
        assert_eq!(stats.segments_short_circuited, 1);
        assert_eq!(stats.words_scanned, 2 * SEGMENT_WORDS as u64);
    }

    #[test]
    fn range_evaluation_is_bit_identical_to_whole_vector() {
        let len = SEGMENT_BITS * 3 + 500;
        let a = stripes(len, 11, 3);
        let b = stripes(len, 13, 5);
        let terms = vec![
            vec![Literal::new(&a, false), Literal::new(&b, true)],
            vec![Literal::new(&b, false), Literal::new(&a, true)],
        ];
        let mut stats = KernelStats::new();
        let whole = eval_dnf(&terms, len, &mut stats);

        // Evaluate the same expression in two disjoint windows.
        let mut split = BitVec::zeros(len);
        let total_words = len.div_ceil(WORD_BITS);
        let cut = 2 * SEGMENT_WORDS;
        let (lo, hi) = split.words.split_at_mut(cut);
        let mut s1 = KernelStats::new();
        let mut s2 = KernelStats::new();
        eval_dnf_range(lo, 0, len, &terms, &mut s1);
        eval_dnf_range(hi, cut, len, &terms, &mut s2);
        assert_eq!(lo.len() + hi.len(), total_words);
        assert_eq!(split, whole);
        s1.merge(&s2);
        assert_eq!(s1.words_scanned, stats.words_scanned);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn short_slice_panics() {
        let a = BitVec::zeros(64);
        let terms = vec![vec![Literal::new(&a, false)]];
        let mut stats = KernelStats::new();
        let _ = eval_dnf(&terms, 4096, &mut stats);
    }

    #[test]
    #[should_panic(expected = "not segment-aligned")]
    fn unaligned_offset_panics() {
        let a = BitVec::zeros(SEGMENT_BITS * 2);
        let mut dst = vec![0u64; SEGMENT_WORDS];
        let mut stats = KernelStats::new();
        or_accumulate_term(
            &mut dst,
            1,
            SEGMENT_BITS * 2,
            &[Literal::new(&a, false)],
            &mut stats,
        );
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = KernelStats {
            words_scanned: 1,
            bytes_touched: 4,
            compressed_chunks_skipped: 5,
            segments_pruned: 2,
            segments_short_circuited: 3,
            dispatch_scalar: 1,
            dispatch_portable: 2,
            dispatch_avx2: 3,
        };
        a.merge(&KernelStats {
            words_scanned: 10,
            bytes_touched: 40,
            compressed_chunks_skipped: 50,
            segments_pruned: 20,
            segments_short_circuited: 30,
            dispatch_scalar: 10,
            dispatch_portable: 20,
            dispatch_avx2: 30,
        });
        assert_eq!(a.words_scanned, 11);
        assert_eq!(a.bytes_touched, 44);
        assert_eq!(a.compressed_chunks_skipped, 55);
        assert_eq!(a.segments_pruned, 22);
        assert_eq!(a.segments_short_circuited, 33);
        assert_eq!(a.dispatch_scalar, 11);
        assert_eq!(a.dispatch_portable, 22);
        assert_eq!(a.dispatch_avx2, 33);
    }

    #[test]
    fn kernel_path_reports_dominant_tier() {
        let mut s = KernelStats::new();
        assert_eq!(s.kernel_path(), "none");
        s.record_dispatch(crate::simd::KernelPath::Scalar);
        assert_eq!(s.kernel_path(), "scalar");
        s.record_dispatch(crate::simd::KernelPath::Portable);
        s.record_dispatch(crate::simd::KernelPath::Portable);
        assert_eq!(s.kernel_path(), "portable");
        for _ in 0..3 {
            s.record_dispatch(crate::simd::KernelPath::Avx2);
        }
        assert_eq!(s.kernel_path(), "avx2");
    }

    #[test]
    fn evaluation_records_the_selected_dispatch() {
        let len = SEGMENT_BITS;
        let a = stripes(len, 2, 0);
        let terms = vec![vec![Literal::new(&a, false)]];
        let mut stats = KernelStats::new();
        crate::simd::with_forced_path(crate::simd::KernelPath::Scalar, || {
            let _ = eval_dnf(&terms, len, &mut stats);
        });
        assert_eq!(stats.dispatch_scalar, 1);
        assert_eq!(stats.kernel_path(), "scalar");
    }

    #[test]
    fn work_estimate_accounts_for_summary_pruning() {
        let len = SEGMENT_BITS * 4;
        let mut a = BitVec::zeros(len);
        a.set(SEGMENT_BITS + 1, true);
        let sa = SegmentSummary::build(&a);
        let b = BitVec::ones(len);

        // No summaries: full work, 2 literals × 4 segments × 64 words.
        let plain = vec![vec![Literal::new(&a, false), Literal::new(&b, false)]];
        assert_eq!(
            estimate_dnf_work_words(&plain, len),
            2 * 4 * SEGMENT_WORDS as u64
        );

        // Summary on `a`: only segment 1 is live.
        let pruned = vec![vec![
            Literal::with_summary(&a, false, &sa),
            Literal::new(&b, false),
        ]];
        assert_eq!(
            estimate_dnf_work_words(&pruned, len),
            2 * SEGMENT_WORDS as u64
        );

        // Tautology terms cost nothing.
        assert_eq!(estimate_dnf_work_words(&[vec![]], len), 0);
    }

    #[test]
    fn dense_scans_report_bytes_touched() {
        let len = SEGMENT_BITS;
        let a = stripes(len, 2, 0);
        let terms = vec![vec![Literal::new(&a, false)]];
        let mut stats = KernelStats::new();
        let _ = eval_dnf(&terms, len, &mut stats);
        assert_eq!(stats.bytes_touched, 8 * stats.words_scanned);
    }

    fn storages_for(bits: &BitVec) -> Vec<SliceStorage> {
        use crate::store::StoragePolicy;
        vec![
            SliceStorage::from_dense(bits.clone(), StoragePolicy::Dense),
            SliceStorage::from_dense(bits.clone(), StoragePolicy::Roaring),
            SliceStorage::from_dense(bits.clone(), StoragePolicy::Wah),
        ]
    }

    #[test]
    fn stored_eval_matches_dense_for_every_container_mix() {
        let len = SEGMENT_BITS * 5 + 300;
        let a = stripes(len, 3, 0);
        let b: BitVec = (0..len).map(|i| (20_000..290_000).contains(&i)).collect();
        let c = BitVec::from_positions(len, &[5, 9000, len - 1]);
        let dense_terms = vec![
            vec![Literal::new(&a, false), Literal::new(&b, true)],
            vec![Literal::new(&c, false)],
            vec![Literal::new(&b, false), Literal::new(&a, true)],
        ];
        let mut ds = KernelStats::new();
        let expected = eval_dnf(&dense_terms, len, &mut ds);

        for sa in storages_for(&a) {
            for sb in storages_for(&b) {
                for sc in storages_for(&c) {
                    let terms = vec![
                        vec![
                            StoredLiteral::new(&sa, false),
                            StoredLiteral::new(&sb, true),
                        ],
                        vec![StoredLiteral::new(&sc, false)],
                        vec![
                            StoredLiteral::new(&sb, false),
                            StoredLiteral::new(&sa, true),
                        ],
                    ];
                    let mut stats = KernelStats::new();
                    let got = eval_dnf_stored(&terms, len, &mut stats);
                    assert_eq!(
                        got,
                        expected,
                        "mix {:?}/{:?}/{:?}",
                        sa.kind(),
                        sb.kind(),
                        sc.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn stored_eval_skips_uniform_compressed_windows() {
        use crate::store::StoragePolicy;
        // A very sparse slice: almost every window classifies as Zeros
        // and kills the term without materialisation.
        let len = SEGMENT_BITS * 64;
        let sparse = BitVec::from_positions(len, &[17]);
        let dense = stripes(len, 2, 0);
        let ss = SliceStorage::from_dense(sparse, StoragePolicy::Roaring);
        let sd = SliceStorage::from_dense(dense, StoragePolicy::Dense);
        let terms = vec![vec![
            StoredLiteral::new(&ss, false),
            StoredLiteral::new(&sd, false),
        ]];
        let mut stats = KernelStats::new();
        let got = eval_dnf_stored(&terms, len, &mut stats);
        assert_eq!(got.count_ones(), 0); // 17 is odd
        assert_eq!(
            stats.compressed_chunks_skipped, 63,
            "all but one window skipped"
        );
        // Only the one mixed window's dense partner was ever scanned.
        assert_eq!(stats.words_scanned, SEGMENT_WORDS as u64);
        assert!(stats.bytes_touched < 8 * 2 * (len as u64) / 64);
    }

    #[test]
    fn stored_eval_all_identity_term_is_all_ones() {
        use crate::store::StoragePolicy;
        let len = SEGMENT_BITS * 2;
        let full = SliceStorage::from_dense(BitVec::ones(len), StoragePolicy::Roaring);
        let terms = vec![vec![StoredLiteral::new(&full, false)]];
        let mut stats = KernelStats::new();
        let got = eval_dnf_stored(&terms, len, &mut stats);
        assert_eq!(got, BitVec::ones(len));
        assert_eq!(stats.words_scanned, 0, "no dense words read");
        assert_eq!(stats.compressed_chunks_skipped, 2);
    }

    #[test]
    fn stored_eval_respects_summaries() {
        use crate::store::StoragePolicy;
        use crate::summary::summarize_slices;
        let len = SEGMENT_BITS * 3;
        let mut a = BitVec::zeros(len);
        for i in SEGMENT_BITS..SEGMENT_BITS + 50 {
            a.set(i, true);
        }
        let summaries = summarize_slices(&[a.clone()]);
        let stored = SliceStorage::from_dense(a.clone(), StoragePolicy::Dense);
        let terms = vec![vec![StoredLiteral::with_summary(
            &stored,
            false,
            &summaries[0],
        )]];
        let mut stats = KernelStats::new();
        let got = eval_dnf_stored(&terms, len, &mut stats);
        assert_eq!(got, a);
        assert_eq!(stats.segments_pruned, 2);
    }

    #[test]
    fn stored_range_evaluation_is_bit_identical_to_whole_vector() {
        use crate::store::StoragePolicy;
        let len = SEGMENT_BITS * 3 + 500;
        let a = stripes(len, 11, 3);
        let b: BitVec = (0..len).map(|i| i % 13 < 4).collect();
        let sa = SliceStorage::from_dense(a, StoragePolicy::Wah);
        let sb = SliceStorage::from_dense(b, StoragePolicy::Roaring);
        let terms = vec![
            vec![
                StoredLiteral::new(&sa, false),
                StoredLiteral::new(&sb, true),
            ],
            vec![
                StoredLiteral::new(&sb, false),
                StoredLiteral::new(&sa, true),
            ],
        ];
        let mut stats = KernelStats::new();
        let whole = eval_dnf_stored(&terms, len, &mut stats);

        let mut split = BitVec::zeros(len);
        let cut = 2 * SEGMENT_WORDS;
        let (lo, hi) = split.words.split_at_mut(cut);
        let mut s1 = KernelStats::new();
        let mut s2 = KernelStats::new();
        eval_dnf_stored_range(lo, 0, len, &terms, &mut s1);
        eval_dnf_stored_range(hi, cut, len, &terms, &mut s2);
        assert_eq!(split, whole);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn stored_slice_length_mismatch_panics() {
        use crate::store::StoragePolicy;
        let s = SliceStorage::from_dense(BitVec::zeros(64), StoragePolicy::Dense);
        let terms = vec![vec![StoredLiteral::new(&s, false)]];
        let mut stats = KernelStats::new();
        let _ = eval_dnf_stored(&terms, 4096, &mut stats);
    }

    #[test]
    fn kernel_stats_publish_to_registry() {
        let stats = KernelStats {
            words_scanned: 10,
            bytes_touched: 80,
            segments_pruned: 3,
            segments_short_circuited: 1,
            ..KernelStats::default()
        };
        let reg = ebi_obs::MetricsRegistry::new();
        stats.publish_to(&reg);
        stats.publish_to(&reg);
        assert_eq!(reg.counter("ebi_kernel_words_scanned_total", &[]).get(), 20);
        assert_eq!(
            reg.counter("ebi_kernel_segments_pruned_total", &[]).get(),
            6
        );
        // Zero-valued counters are skipped, not registered as zeros.
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert!(!names.contains(&"ebi_kernel_compressed_chunks_skipped_total".to_string()));
    }
}
