//! Rank/select directory over a frozen [`BitVec`].
//!
//! `rank1(i)` (ones strictly before position `i`) and `select1(k)` (position
//! of the `k`-th one, zero-based) are the positional primitives used when a
//! bitmap query result must be joined back to physical tuple slots — e.g.
//! when a selection bitmap addresses rows of a compacted projection index.

use crate::core::{BitVec, WORD_BITS};

/// Words per superblock of the rank directory.
const SUPER_WORDS: usize = 8; // 512 bits per superblock

/// Precomputed rank/select directory for one bitmap.
///
/// ```
/// use ebi_bitvec::{rank::RankIndex, BitVec};
///
/// let bits = BitVec::from_positions(100, &[3, 40, 90]);
/// let idx = RankIndex::new(&bits);
/// assert_eq!(idx.rank1(&bits, 41), 2); // ones strictly before 41
/// assert_eq!(idx.select1(&bits, 2), Some(90)); // the third one
/// ```
///
/// Construction is `O(n / 64)`; `rank1` is `O(1)` plus at most
/// `SUPER_WORDS` popcounts; `select1` binary-searches superblocks then
/// scans within one.
#[derive(Debug, Clone)]
pub struct RankIndex {
    /// Cumulative ones before each superblock.
    supers: Vec<usize>,
    total_ones: usize,
    len: usize,
}

impl RankIndex {
    /// Builds the directory for `bits`.
    #[must_use]
    pub fn new(bits: &BitVec) -> Self {
        let words = bits.words();
        let n_super = words.len().div_ceil(SUPER_WORDS);
        let mut supers = Vec::with_capacity(n_super + 1);
        let mut acc = 0usize;
        for chunk_start in (0..words.len()).step_by(SUPER_WORDS) {
            supers.push(acc);
            let end = (chunk_start + SUPER_WORDS).min(words.len());
            acc += words[chunk_start..end]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        }
        supers.push(acc);
        Self {
            supers,
            total_ones: acc,
            len: bits.len(),
        }
    }

    /// Total number of ones in the indexed bitmap.
    #[must_use]
    pub fn total_ones(&self) -> usize {
        self.total_ones
    }

    /// Number of ones strictly before position `i` in `bits`.
    ///
    /// `bits` must be the same bitmap the directory was built from.
    ///
    /// # Panics
    ///
    /// Panics if `i > bits.len()` or the directory does not match `bits`.
    #[must_use]
    pub fn rank1(&self, bits: &BitVec, i: usize) -> usize {
        assert_eq!(
            bits.len(),
            self.len,
            "RankIndex built for a different bitmap"
        );
        assert!(i <= bits.len(), "rank position {i} out of range");
        let word = i / WORD_BITS;
        let sb = word / SUPER_WORDS;
        let mut r = self.supers[sb];
        let words = bits.words();
        for w in &words[sb * SUPER_WORDS..word] {
            r += w.count_ones() as usize;
        }
        let rem = i % WORD_BITS;
        if rem != 0 {
            r += (words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Position of the `k`-th set bit (zero-based), or `None` if there are
    /// at most `k` ones.
    #[must_use]
    pub fn select1(&self, bits: &BitVec, k: usize) -> Option<usize> {
        assert_eq!(
            bits.len(),
            self.len,
            "RankIndex built for a different bitmap"
        );
        if k >= self.total_ones {
            return None;
        }
        // Binary search for the superblock containing the k-th one.
        let sb = self.supers.partition_point(|&c| c <= k) - 1;
        let words = bits.words();
        let mut remaining = k - self.supers[sb];
        let start = sb * SUPER_WORDS;
        for (off, &w) in words[start..].iter().enumerate() {
            let pop = w.count_ones() as usize;
            if remaining < pop {
                return Some((start + off) * WORD_BITS + select_in_word(w, remaining));
            }
            remaining -= pop;
        }
        None
    }
}

/// Position of the `k`-th set bit within a single word (`k < popcount(w)`).
fn select_in_word(mut w: u64, mut k: usize) -> usize {
    loop {
        let tz = w.trailing_zeros() as usize;
        if k == 0 {
            return tz;
        }
        w &= w - 1;
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(bits: &BitVec, i: usize) -> usize {
        (0..i).filter(|&j| bits.bit(j)).count()
    }

    #[test]
    fn rank_matches_naive_on_pattern() {
        let bits: BitVec = (0..1500).map(|i| i % 5 == 0 || i % 7 == 0).collect();
        let idx = RankIndex::new(&bits);
        for i in [0usize, 1, 63, 64, 65, 511, 512, 513, 1024, 1499, 1500] {
            assert_eq!(idx.rank1(&bits, i), naive_rank(&bits, i), "rank({i})");
        }
        assert_eq!(idx.total_ones(), bits.count_ones());
    }

    #[test]
    fn select_inverts_rank() {
        let bits: BitVec = (0..2000).map(|i| i % 3 == 1).collect();
        let idx = RankIndex::new(&bits);
        let ones: Vec<usize> = bits.iter_ones().collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(idx.select1(&bits, k), Some(pos), "select({k})");
            assert_eq!(idx.rank1(&bits, pos), k);
        }
        assert_eq!(idx.select1(&bits, ones.len()), None);
    }

    #[test]
    fn select_on_all_zero_bitmap() {
        let bits = BitVec::zeros(700);
        let idx = RankIndex::new(&bits);
        assert_eq!(idx.select1(&bits, 0), None);
        assert_eq!(idx.rank1(&bits, 700), 0);
    }

    #[test]
    fn select_on_dense_bitmap() {
        let bits = BitVec::ones(600);
        let idx = RankIndex::new(&bits);
        for k in [0usize, 1, 63, 64, 511, 512, 599] {
            assert_eq!(idx.select1(&bits, k), Some(k));
        }
        assert_eq!(idx.select1(&bits, 600), None);
    }

    #[test]
    fn select_in_word_positions() {
        assert_eq!(select_in_word(0b1011, 0), 0);
        assert_eq!(select_in_word(0b1011, 1), 1);
        assert_eq!(select_in_word(0b1011, 2), 3);
        assert_eq!(select_in_word(1u64 << 63, 0), 63);
    }

    #[test]
    fn empty_bitmap_directory() {
        let bits = BitVec::new();
        let idx = RankIndex::new(&bits);
        assert_eq!(idx.total_ones(), 0);
        assert_eq!(idx.rank1(&bits, 0), 0);
        assert_eq!(idx.select1(&bits, 0), None);
    }
}
