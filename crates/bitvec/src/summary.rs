//! Per-segment population summaries for pruning query evaluation.
//!
//! A [`SegmentSummary`] records, for one bitmap vector, the number of set
//! bits in each fixed-size *segment* ([`SEGMENT_BITS`] = 4096 rows). The
//! fused evaluation kernels (see [`crate::kernels`]) consult these
//! summaries to skip whole segments without reading a single bitmap
//! word:
//!
//! * a **positive** literal whose slice has *no* ones in a segment makes
//!   the whole product term zero there;
//! * a **negated** literal whose slice is *all ones* in a segment
//!   likewise zeroes the term there.
//!
//! Summaries are built once at index-construction time (`O(n)` popcounts
//! the builder has effectively already paid) and cost 2 bytes per 4096
//! rows per slice — 0.05% space overhead.

use crate::core::BitVec;
use crate::kernels::{SEGMENT_BITS, SEGMENT_WORDS};

/// Per-segment one-counts for a single bitmap vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentSummary {
    /// One count per segment; 4096 fits in `u16`.
    ones: Vec<u16>,
    /// Bit length of the summarised vector.
    len: usize,
}

impl SegmentSummary {
    /// Builds the summary for `bits` by popcounting each segment.
    #[must_use]
    pub fn build(bits: &BitVec) -> Self {
        let ones = bits
            .words()
            .chunks(SEGMENT_WORDS)
            .map(|seg| {
                seg.iter()
                    .map(|w| w.count_ones())
                    .sum::<u32>()
                    .try_into()
                    .expect("segment popcount exceeds 4096")
            })
            .collect();
        Self {
            ones,
            len: bits.len(),
        }
    }

    /// Number of segments covered (the last may be partial).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.ones.len()
    }

    /// Bit length of the summarised vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the summarised vector was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits within segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg >= self.segments()`.
    #[must_use]
    pub fn ones_in(&self, seg: usize) -> u32 {
        u32::from(self.ones[seg])
    }

    /// Number of valid bits in segment `seg` (4096 except for a trailing
    /// partial segment).
    #[must_use]
    pub fn segment_bits(&self, seg: usize) -> usize {
        let start = seg * SEGMENT_BITS;
        debug_assert!(start < self.len || (self.len == 0 && seg == 0));
        (self.len - start).min(SEGMENT_BITS)
    }

    /// `true` if the vector has no set bits in segment `seg`: a positive
    /// literal over it annihilates any product term there.
    #[must_use]
    pub fn segment_is_zero(&self, seg: usize) -> bool {
        self.ones[seg] == 0
    }

    /// `true` if every valid bit of segment `seg` is set: a negated
    /// literal over it annihilates any product term there.
    #[must_use]
    pub fn segment_is_full(&self, seg: usize) -> bool {
        self.ones_in(seg) as usize == self.segment_bits(seg)
    }

    /// Total set bits across all segments (equals `BitVec::count_ones`
    /// of the source vector).
    #[must_use]
    pub fn total_ones(&self) -> u64 {
        self.ones.iter().map(|&c| u64::from(c)).sum()
    }

    /// Recomputes the summary over `bits` in place, reusing the count
    /// buffer (for index maintenance after appends or deletes).
    pub fn rebuild(&mut self, bits: &BitVec) {
        self.ones.clear();
        self.ones
            .extend(bits.words().chunks(SEGMENT_WORDS).map(|seg| {
                let c: u32 = seg.iter().map(|w| w.count_ones()).sum();
                u16::try_from(c).expect("segment popcount exceeds 4096")
            }));
        self.len = bits.len();
    }

    /// Heap bytes used by the summary.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.ones.len() * core::mem::size_of::<u16>()
    }
}

/// Builds summaries for a whole slice family.
#[must_use]
pub fn summarize_slices(slices: &[BitVec]) -> Vec<SegmentSummary> {
    slices.iter().map(SegmentSummary::build).collect()
}

/// Builds summaries for a family of adaptively stored slices.
#[must_use]
pub fn summarize_storage(slices: &[crate::store::SliceStorage]) -> Vec<SegmentSummary> {
    slices
        .iter()
        .map(crate::store::SliceStorage::summary)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_popcount_per_segment() {
        let mut v = BitVec::zeros(SEGMENT_BITS * 2 + 100);
        v.set(0, true);
        v.set(SEGMENT_BITS - 1, true);
        v.set(SEGMENT_BITS, true);
        v.set(SEGMENT_BITS * 2 + 99, true);
        let s = SegmentSummary::build(&v);
        assert_eq!(s.segments(), 3);
        assert_eq!(s.ones_in(0), 2);
        assert_eq!(s.ones_in(1), 1);
        assert_eq!(s.ones_in(2), 1);
        assert_eq!(s.total_ones(), v.count_ones() as u64);
    }

    #[test]
    fn zero_and_full_detection_honour_partial_tail() {
        let len = SEGMENT_BITS + 70;
        let v = BitVec::ones(len);
        let s = SegmentSummary::build(&v);
        assert!(s.segment_is_full(0));
        // Tail segment has only 70 valid bits, all set.
        assert_eq!(s.segment_bits(1), 70);
        assert!(s.segment_is_full(1));
        assert!(!s.segment_is_zero(1));

        let z = BitVec::zeros(len);
        let sz = SegmentSummary::build(&z);
        assert!(sz.segment_is_zero(0) && sz.segment_is_zero(1));
        assert!(!sz.segment_is_full(0));
    }

    #[test]
    fn rebuild_tracks_mutation() {
        let mut v = BitVec::zeros(5000);
        let mut s = SegmentSummary::build(&v);
        assert_eq!(s.total_ones(), 0);
        v.set(4999, true);
        s.rebuild(&v);
        assert_eq!(s.ones_in(1), 1);
        assert_eq!(s.len(), 5000);
    }

    #[test]
    fn empty_vector_has_no_segments() {
        let s = SegmentSummary::build(&BitVec::new());
        assert_eq!(s.segments(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn family_helper_summarizes_each_slice() {
        let slices = vec![BitVec::ones(100), BitVec::zeros(100)];
        let sums = summarize_slices(&slices);
        assert_eq!(sums.len(), 2);
        assert!(sums[0].segment_is_full(0));
        assert!(sums[1].segment_is_zero(0));
    }
}
