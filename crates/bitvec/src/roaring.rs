//! Roaring-style chunked compressed bitmaps.
//!
//! The encoded index stores `k = ceil(log2 m)` bit-slices whose density
//! hovers near 1/2 on *uniform* data — the regime where run-length
//! schemes gain nothing (see [`crate::wah`]). On skewed domains,
//! however, individual slices can be very sparse or very dense, and the
//! hybrid container layout of *Better bitmap performance with Roaring
//! bitmaps* (Chambi, Lemire, Kaser, Godin) adapts per 2^16-row chunk:
//!
//! * **Array**: a sorted `u16` list of set positions — wins when a
//!   chunk holds few ones;
//! * **Bitmap**: 1024 packed words — wins near density 1/2;
//! * **Run**: sorted `(start, end)` intervals — wins when ones cluster.
//!
//! Chunks with no set bits are simply absent. Chunk-level AND / OR /
//! AND-NOT kernels operate directly on the compressed containers:
//! array×array intersections *gallop* (exponential-probe binary
//! search), run×any operations skip whole intervals, and only the
//! dense×dense pairs fall back to 1024-word scratch operations.
//!
//! [`RoaringBitmap::fill_window`] materialises one 64-word evaluation
//! window (the fused kernels' 4096-row segment) on demand, classifying
//! all-zero / all-one windows without writing any words so the
//! segment-major evaluator can short-circuit in the compressed domain.

use crate::core::BitVec;
use crate::error::BitVecError;
use crate::simd;

/// Rows covered by one chunk.
pub const CHUNK_BITS: usize = 1 << 16;
/// 64-bit words in one fully materialised chunk.
pub const CHUNK_WORDS: usize = CHUNK_BITS / 64;
/// Maximum entries before an array container costs more than a bitmap.
pub const ARRAY_MAX: usize = CHUNK_BITS / 16;

/// Classification of a materialised evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Every valid bit in the window is zero; the output buffer was not
    /// written.
    Zeros,
    /// Every valid bit in the window is one; the output buffer was not
    /// written.
    Ones,
    /// The window was materialised into the output buffer.
    Mixed,
}

/// Result of materialising an evaluation window from compressed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowFill {
    /// Whether the window is uniform (buffer untouched) or materialised.
    pub kind: WindowKind,
    /// Compressed bytes examined to produce this window.
    pub bytes_touched: u64,
}

/// One chunk's physical representation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted positions of set bits within the chunk.
    Array(Vec<u16>),
    /// Packed words covering the whole chunk.
    Bitmap(Box<[u64; CHUNK_WORDS]>),
    /// Sorted, non-adjacent, inclusive `(start, end)` intervals.
    Run(Vec<(u16, u16)>),
}

impl Container {
    fn cardinality(&self) -> usize {
        match self {
            Self::Array(a) => a.len(),
            Self::Bitmap(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
            Self::Run(r) => r.iter().map(|&(s, e)| e as usize - s as usize + 1).sum(),
        }
    }

    /// Heap bytes of the container payload.
    fn storage_bytes(&self) -> usize {
        match self {
            Self::Array(a) => a.len() * 2,
            Self::Bitmap(_) => CHUNK_WORDS * 8,
            Self::Run(r) => r.len() * 4,
        }
    }

    fn bit(&self, pos: u16) -> bool {
        match self {
            Self::Array(a) => a.binary_search(&pos).is_ok(),
            Self::Bitmap(w) => w[pos as usize / 64] >> (pos % 64) & 1 == 1,
            Self::Run(r) => match r.binary_search_by_key(&pos, |&(s, _)| s) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => r[i - 1].1 >= pos,
            },
        }
    }

    /// ORs the container's bits into `words`.
    fn materialize_into(&self, words: &mut [u64; CHUNK_WORDS]) {
        match self {
            Self::Array(a) => {
                for &p in a {
                    words[p as usize / 64] |= 1u64 << (p % 64);
                }
            }
            Self::Bitmap(w) => {
                simd::or_assign(simd::selected_path(), &mut words[..], &w[..]);
            }
            Self::Run(r) => {
                for &(s, e) in r {
                    set_word_range(words, s as usize, e as usize);
                }
            }
        }
    }
}

/// Sets bits `start..=end` in a packed word buffer.
fn set_word_range(words: &mut [u64], start: usize, end: usize) {
    let (ws, we) = (start / 64, end / 64);
    if ws == we {
        words[ws] |= ones_mask(start % 64, end % 64);
    } else {
        words[ws] |= !0u64 << (start % 64);
        for w in &mut words[ws + 1..we] {
            *w = !0;
        }
        words[we] |= ones_mask(0, end % 64);
    }
}

/// Clears bits `start..=end` in a packed word buffer.
fn clear_word_range(words: &mut [u64], start: usize, end: usize) {
    let (ws, we) = (start / 64, end / 64);
    if ws == we {
        words[ws] &= !ones_mask(start % 64, end % 64);
    } else {
        words[ws] &= !(!0u64 << (start % 64));
        for w in &mut words[ws + 1..we] {
            *w = 0;
        }
        words[we] &= !ones_mask(0, end % 64);
    }
}

/// Mask with bits `lo..=hi` set (`0 <= lo <= hi < 64`).
fn ones_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi < 64);
    (!0u64 >> (63 - hi)) & (!0u64 << lo)
}

/// Classifies a materialised chunk into its cheapest container, or
/// `None` when it has no set bits. Costs follow the serialised sizes:
/// `2·n` for arrays, `4·runs` for run lists, 8 KiB for bitmaps.
fn classify(words: &[u64; CHUNK_WORDS]) -> Option<Container> {
    let mut ones = 0usize;
    let mut runs = 0usize;
    let mut prev_msb = 0u64;
    for &w in words {
        ones += w.count_ones() as usize;
        // A run starts wherever a one is not preceded by a one.
        runs += (w & !(w << 1 | prev_msb)).count_ones() as usize;
        prev_msb = w >> 63;
    }
    if ones == 0 {
        return None;
    }
    let (cost_array, cost_run, cost_bitmap) = (2 * ones, 4 * runs, CHUNK_WORDS * 8);
    Some(if cost_run < cost_array.min(cost_bitmap) {
        let mut r = Vec::with_capacity(runs);
        collect_runs(words, &mut r);
        Container::Run(r)
    } else if cost_array <= cost_bitmap {
        let mut a = Vec::with_capacity(ones);
        for (i, &w) in words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                a.push((i * 64 + bits.trailing_zeros() as usize) as u16);
                bits &= bits - 1;
            }
        }
        Container::Array(a)
    } else {
        Container::Bitmap(Box::new(*words))
    })
}

/// Collects maximal runs of set bits as inclusive `(start, end)` pairs.
fn collect_runs(words: &[u64; CHUNK_WORDS], out: &mut Vec<(u16, u16)>) {
    let mut open: Option<usize> = None;
    for (i, &w) in words.iter().enumerate() {
        let base = i * 64;
        let mut bit = 0usize;
        while bit < 64 {
            let rest = w >> bit;
            if rest & 1 == 1 {
                if open.is_none() {
                    open = Some(base + bit);
                }
                bit += (rest.trailing_ones() as usize).min(64 - bit);
                if bit < 64 {
                    let s = open.take().expect("run just opened");
                    out.push((s as u16, (base + bit - 1) as u16));
                }
            } else {
                if let Some(s) = open.take() {
                    out.push((s as u16, (base + bit - 1) as u16));
                }
                bit += (rest.trailing_zeros() as usize).min(64 - bit);
            }
        }
    }
    if let Some(s) = open {
        out.push((s as u16, (CHUNK_BITS - 1) as u16));
    }
}

/// A chunked, adaptively compressed bitmap.
///
/// ```
/// use ebi_bitvec::{roaring::RoaringBitmap, BitVec};
///
/// let sparse = BitVec::from_positions(1_000_000, &[5, 70_000, 999_999]);
/// let r = RoaringBitmap::from_bitvec(&sparse);
/// assert_eq!(r.count_ones(), 3);
/// assert!(r.storage_bytes() < 100, "three array entries, not 125 KB");
/// assert_eq!(r.to_bitvec(), sparse);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoaringBitmap {
    /// Bit length of the represented vector.
    len: usize,
    /// `(chunk index, container)` pairs, sorted by chunk index; chunks
    /// with no set bits are absent.
    chunks: Vec<(u32, Container)>,
}

impl RoaringBitmap {
    /// Compresses `bits` chunk by chunk, choosing the cheapest container
    /// for each 2^16-row chunk.
    #[must_use]
    pub fn from_bitvec(bits: &BitVec) -> Self {
        let mut chunks = Vec::new();
        let mut scratch = [0u64; CHUNK_WORDS];
        for (key, words) in bits.words().chunks(CHUNK_WORDS).enumerate() {
            scratch[..words.len()].copy_from_slice(words);
            scratch[words.len()..].fill(0);
            if let Some(c) = classify(&scratch) {
                chunks.push((key as u32, c));
            }
        }
        Self {
            len: bits.len(),
            chunks,
        }
    }

    /// Decompresses back to a plain [`BitVec`].
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        let total_words = out.words().len();
        let mut scratch = [0u64; CHUNK_WORDS];
        for (key, c) in &self.chunks {
            let base = *key as usize * CHUNK_WORDS;
            let n = CHUNK_WORDS.min(total_words - base);
            scratch.fill(0);
            c.materialize_into(&mut scratch);
            out.words_mut()[base..base + n].copy_from_slice(&scratch[..n]);
        }
        out
    }

    /// Number of bits represented.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are represented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Population count, computed on the compressed form.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.cardinality()).sum()
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        let key = (i / CHUNK_BITS) as u32;
        match self.chunks.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(idx) => self.chunks[idx].1.bit((i % CHUNK_BITS) as u16),
            Err(_) => false,
        }
    }

    /// Number of non-empty chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Compressed heap bytes (containers plus 4-byte chunk keys).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.chunks.iter().map(|(_, c)| 4 + c.storage_bytes()).sum()
    }

    /// Run statistics, streamed through 64-word evaluation windows so
    /// uniform windows (absent chunks, saturated containers) resolve
    /// without materialising any words. Granules are 64-bit words,
    /// directly comparable with [`BitVec::run_stats`].
    #[must_use]
    pub fn run_stats(&self) -> crate::runs::RunStats {
        let mut st = crate::runs::RunStats::default();
        let mut cur = 0u64;
        let mut buf = [0u64; 64];
        let total_words = self.len.div_ceil(64);
        let mut word = 0usize;
        while word < total_words {
            let window_words = (total_words - word).min(64);
            let valid_bits = (self.len - word * 64).min(window_words * 64);
            let fill = self.fill_window(word, &mut buf[..window_words]);
            match fill.kind {
                WindowKind::Zeros => {
                    st.total_words += window_words as u64;
                    st.fill_words += window_words as u64;
                    cur = 0;
                }
                WindowKind::Ones => {
                    st.total_words += window_words as u64;
                    st.fill_words += window_words as u64;
                    if cur == 0 {
                        st.runs += 1;
                    }
                    cur += valid_bits as u64;
                    st.longest_run = st.longest_run.max(cur);
                }
                WindowKind::Mixed => {
                    st.scan_words(&mut cur, &buf[..window_words], valid_bits);
                }
            }
            word += window_words;
        }
        st
    }

    /// Bitwise AND directly on the compressed forms.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "roaring length mismatch");
        let mut chunks = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    if let Some(c) = and_containers(ca, cb) {
                        chunks.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Self {
            len: self.len,
            chunks,
        }
    }

    /// Bitwise OR directly on the compressed forms.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "roaring length mismatch");
        let mut chunks = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() || j < other.chunks.len() {
            let ka = self.chunks.get(i).map(|&(k, _)| k);
            let kb = other.chunks.get(j).map(|&(k, _)| k);
            match (ka, kb) {
                (Some(a), Some(b)) if a == b => {
                    chunks.push((a, or_containers(&self.chunks[i].1, &other.chunks[j].1)));
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    chunks.push((a, self.chunks[i].1.clone()));
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    chunks.push((b, other.chunks[j].1.clone()));
                    j += 1;
                }
                (Some(a), None) => {
                    chunks.push((a, self.chunks[i].1.clone()));
                    i += 1;
                }
                (None, Some(b)) => {
                    chunks.push((b, other.chunks[j].1.clone()));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        Self {
            len: self.len,
            chunks,
        }
    }

    /// Bitwise AND-NOT (`self & !other`) directly on the compressed
    /// forms.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "roaring length mismatch");
        let mut chunks = Vec::new();
        for (ka, ca) in &self.chunks {
            match other.chunks.binary_search_by_key(ka, |&(k, _)| k) {
                Err(_) => chunks.push((*ka, ca.clone())),
                Ok(j) => {
                    if let Some(c) = andnot_containers(ca, &other.chunks[j].1) {
                        chunks.push((*ka, c));
                    }
                }
            }
        }
        Self {
            len: self.len,
            chunks,
        }
    }

    /// Materialises the evaluation window covering bits
    /// `start_word * 64 .. (start_word + out.len()) * 64` (clipped to
    /// `len`) into `out`, or classifies it as uniform without writing.
    ///
    /// The window must lie within a single chunk, which holds for any
    /// 64-word segment window because 64 divides [`CHUNK_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the window crosses a chunk boundary or starts past the
    /// end of the bitmap.
    #[must_use]
    pub fn fill_window(&self, start_word: usize, out: &mut [u64]) -> WindowFill {
        let key = (start_word / CHUNK_WORDS) as u32;
        let word_in_chunk = start_word % CHUNK_WORDS;
        assert!(
            word_in_chunk + out.len() <= CHUNK_WORDS,
            "window crosses a chunk boundary"
        );
        let start_bit = start_word * 64;
        assert!(
            start_bit < self.len || self.len == 0,
            "window starts past end"
        );
        // Bits of the window that are inside `len`.
        let valid = (self.len - start_bit).min(out.len() * 64);
        let idx = match self.chunks.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(idx) => idx,
            Err(_) => {
                return WindowFill {
                    kind: WindowKind::Zeros,
                    bytes_touched: 0,
                }
            }
        };
        let lo = (word_in_chunk * 64) as u16;
        let hi_incl = (word_in_chunk * 64 + out.len() * 64 - 1).min(CHUNK_BITS - 1) as u16;
        match &self.chunks[idx].1 {
            Container::Array(a) => {
                let from = a.partition_point(|&p| p < lo);
                let to = a.partition_point(|&p| p <= hi_incl);
                let touched = 2 * (to - from) as u64;
                if from == to {
                    return WindowFill {
                        kind: WindowKind::Zeros,
                        bytes_touched: touched,
                    };
                }
                if to - from == valid {
                    return WindowFill {
                        kind: WindowKind::Ones,
                        bytes_touched: touched,
                    };
                }
                out.fill(0);
                for &p in &a[from..to] {
                    let off = (p - lo) as usize;
                    out[off / 64] |= 1u64 << (off % 64);
                }
                WindowFill {
                    kind: WindowKind::Mixed,
                    bytes_touched: touched,
                }
            }
            Container::Run(r) => {
                let from = r.partition_point(|&(_, e)| e < lo);
                let to = r.partition_point(|&(s, _)| s <= hi_incl);
                let touched = 4 * (to - from) as u64;
                if from == to {
                    return WindowFill {
                        kind: WindowKind::Zeros,
                        bytes_touched: touched,
                    };
                }
                if to - from == 1 {
                    let (s, e) = r[from];
                    let last_valid = lo as usize + valid - 1;
                    if s as usize <= lo as usize && e as usize >= last_valid {
                        return WindowFill {
                            kind: WindowKind::Ones,
                            bytes_touched: touched,
                        };
                    }
                }
                out.fill(0);
                for &(s, e) in &r[from..to] {
                    let cs = s.max(lo) as usize - lo as usize;
                    let ce = e.min(hi_incl) as usize - lo as usize;
                    set_word_range(out, cs, ce);
                }
                WindowFill {
                    kind: WindowKind::Mixed,
                    bytes_touched: touched,
                }
            }
            Container::Bitmap(w) => {
                let src = &w[word_in_chunk..word_in_chunk + out.len()];
                let touched = 8 * out.len() as u64;
                let full_words = valid / 64;
                let rem = valid % 64;
                let all_zero = src[..full_words].iter().all(|&x| x == 0)
                    && (rem == 0 || src[full_words] & ones_mask(0, rem - 1) == 0);
                if all_zero {
                    return WindowFill {
                        kind: WindowKind::Zeros,
                        bytes_touched: touched,
                    };
                }
                let all_one = src[..full_words].iter().all(|&x| x == !0)
                    && (rem == 0
                        || src[full_words] & ones_mask(0, rem - 1) == ones_mask(0, rem - 1));
                if all_one {
                    return WindowFill {
                        kind: WindowKind::Ones,
                        bytes_touched: touched,
                    };
                }
                out.copy_from_slice(src);
                WindowFill {
                    kind: WindowKind::Mixed,
                    bytes_touched: touched,
                }
            }
        }
    }

    /// Serialises as
    /// `[u64 len][u32 chunks]` then per chunk
    /// `[u32 key][u8 kind][u32 count][payload]`, little-endian.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.storage_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (key, c) in &self.chunks {
            out.extend_from_slice(&key.to_le_bytes());
            match c {
                Container::Array(a) => {
                    out.push(0);
                    out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                    for &p in a {
                        out.extend_from_slice(&p.to_le_bytes());
                    }
                }
                Container::Bitmap(w) => {
                    out.push(1);
                    out.extend_from_slice(&(CHUNK_WORDS as u32).to_le_bytes());
                    for &x in w.iter() {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Container::Run(r) => {
                    out.push(2);
                    out.extend_from_slice(&(r.len() as u32).to_le_bytes());
                    for &(s, e) in r {
                        out.extend_from_slice(&s.to_le_bytes());
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Parses the layout from [`RoaringBitmap::to_bytes`], validating
    /// chunk ordering, container invariants, and the length bound.
    ///
    /// # Errors
    ///
    /// Returns [`BitVecError::Corrupt`] on truncation, unordered or
    /// duplicate chunk keys, unsorted containers, or set bits at or
    /// beyond the declared length.
    pub fn from_bytes(raw: &[u8]) -> Result<Self, BitVecError> {
        let corrupt = |detail: String| BitVecError::Corrupt { detail };
        let mut r = Reader { raw, pos: 0 };
        let len = r.u64()? as usize;
        let n_chunks = r.u32()? as usize;
        let max_key = if len == 0 { 0 } else { (len - 1) / CHUNK_BITS };
        let mut chunks = Vec::with_capacity(n_chunks.min(1 << 16));
        let mut prev_key: Option<u32> = None;
        for _ in 0..n_chunks {
            let key = r.u32()?;
            if prev_key.is_some_and(|p| key <= p) {
                return Err(corrupt(format!("chunk key {key} out of order")));
            }
            if key as usize > max_key {
                return Err(corrupt(format!("chunk key {key} beyond {len}-bit bitmap")));
            }
            prev_key = Some(key);
            let kind = r.u8()?;
            let count = r.u32()? as usize;
            let chunk_end = ((len - key as usize * CHUNK_BITS) - 1).min(CHUNK_BITS - 1) as u16;
            let c = match kind {
                0 => {
                    if count == 0 || count > CHUNK_BITS {
                        return Err(corrupt(format!("array container of {count} entries")));
                    }
                    let mut a = Vec::with_capacity(count);
                    for _ in 0..count {
                        a.push(r.u16()?);
                    }
                    if !a.windows(2).all(|w| w[0] < w[1]) {
                        return Err(corrupt("unsorted array container".into()));
                    }
                    if *a.last().expect("non-empty") > chunk_end {
                        return Err(corrupt("array entry beyond bitmap length".into()));
                    }
                    Container::Array(a)
                }
                1 => {
                    if count != CHUNK_WORDS {
                        return Err(corrupt(format!("bitmap container of {count} words")));
                    }
                    let mut w = Box::new([0u64; CHUNK_WORDS]);
                    for x in w.iter_mut() {
                        *x = r.u64()?;
                    }
                    let valid_words = chunk_end as usize / 64;
                    let rem = chunk_end as usize % 64;
                    if w[valid_words] & !ones_mask(0, rem) != 0
                        || w[valid_words + 1..].iter().any(|&x| x != 0)
                    {
                        return Err(corrupt("bitmap bits beyond bitmap length".into()));
                    }
                    Container::Bitmap(w)
                }
                2 => {
                    if count == 0 || count > CHUNK_BITS / 2 {
                        return Err(corrupt(format!("run container of {count} runs")));
                    }
                    let mut runs = Vec::with_capacity(count);
                    for _ in 0..count {
                        let s = r.u16()?;
                        let e = r.u16()?;
                        if e < s {
                            return Err(corrupt(format!("inverted run {s}..{e}")));
                        }
                        runs.push((s, e));
                    }
                    if !runs.windows(2).all(|w| w[1].0 > w[0].1) {
                        return Err(corrupt("overlapping or unsorted runs".into()));
                    }
                    if runs.last().expect("non-empty").1 > chunk_end {
                        return Err(corrupt("run beyond bitmap length".into()));
                    }
                    Container::Run(runs)
                }
                other => return Err(corrupt(format!("unknown container kind {other}"))),
            };
            chunks.push((key, c));
        }
        if r.pos != raw.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after last chunk",
                raw.len() - r.pos
            )));
        }
        Ok(Self { len, chunks })
    }
}

/// Byte-slice reader used by [`RoaringBitmap::from_bytes`].
struct Reader<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], BitVecError> {
        if self.raw.len() - self.pos < n {
            return Err(BitVecError::Corrupt {
                detail: format!("truncated at byte {}", self.pos),
            });
        }
        let s = &self.raw[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BitVecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BitVecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, BitVecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, BitVecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Galloping search: first index in `a[from..]` with `a[i] >= key`,
/// probing exponentially then binary-searching the bracketed range.
fn gallop(a: &[u16], from: usize, key: u16) -> usize {
    if from >= a.len() || a[from] >= key {
        return from;
    }
    let mut step = 1;
    let mut hi = from;
    while hi + step < a.len() && a[hi + step] < key {
        hi += step;
        step *= 2;
    }
    let end = (hi + step + 1).min(a.len());
    hi + 1 + a[hi + 1..end].partition_point(|&x| x < key)
}

/// AND of two containers; `None` when the intersection is empty.
fn and_containers(a: &Container, b: &Container) -> Option<Container> {
    use Container::{Array, Bitmap, Run};
    let out = match (a, b) {
        (Array(xs), Array(ys)) => {
            // Gallop the smaller list through the larger one.
            let (small, large) = if xs.len() <= ys.len() {
                (xs, ys)
            } else {
                (ys, xs)
            };
            let mut out = Vec::new();
            let mut j = 0;
            for &x in small {
                j = gallop(large, j, x);
                if j == large.len() {
                    break;
                }
                if large[j] == x {
                    out.push(x);
                    j += 1;
                }
            }
            Array(out)
        }
        (Array(xs), Bitmap(w)) | (Bitmap(w), Array(xs)) => Array(
            xs.iter()
                .copied()
                .filter(|&p| w[p as usize / 64] >> (p % 64) & 1 == 1)
                .collect(),
        ),
        (Array(xs), Run(rs)) | (Run(rs), Array(xs)) => {
            // Skip from run to run, galloping the array to each start.
            let mut out = Vec::new();
            let mut j = 0;
            for &(s, e) in rs {
                j = gallop(xs, j, s);
                while j < xs.len() && xs[j] <= e {
                    out.push(xs[j]);
                    j += 1;
                }
                if j == xs.len() {
                    break;
                }
            }
            Array(out)
        }
        (Run(ra), Run(rb)) => {
            // Interval intersection: advance whichever run ends first.
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < ra.len() && j < rb.len() {
                let (sa, ea) = ra[i];
                let (sb, eb) = rb[j];
                let s = sa.max(sb);
                let e = ea.min(eb);
                if s <= e {
                    out.push((s, e));
                }
                if ea <= eb {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            Run(out)
        }
        (Run(rs), Bitmap(w)) | (Bitmap(w), Run(rs)) => {
            // Run-skipping: only words inside runs are ever read.
            let mut scratch = [0u64; CHUNK_WORDS];
            for &(s, e) in rs {
                set_word_range(&mut scratch, s as usize, e as usize);
            }
            simd::and_assign(simd::selected_path(), &mut scratch, &w[..]);
            return classify(&scratch);
        }
        (Bitmap(wa), Bitmap(wb)) => {
            let mut scratch = [0u64; CHUNK_WORDS];
            simd::and_words(simd::selected_path(), &mut scratch, &wa[..], &wb[..]);
            return classify(&scratch);
        }
    };
    match &out {
        Array(v) if v.is_empty() => None,
        Run(v) if v.is_empty() => None,
        _ => Some(out),
    }
}

/// OR of two containers (never empty: both inputs are non-empty).
fn or_containers(a: &Container, b: &Container) -> Container {
    use Container::{Array, Run};
    match (a, b) {
        (Array(xs), Array(ys)) => {
            let mut out = Vec::with_capacity(xs.len() + ys.len());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() || j < ys.len() {
                match (xs.get(i), ys.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        out.push(x);
                        i += 1;
                        j += 1;
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        out.push(x);
                        i += 1;
                    }
                    (Some(_), Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (Some(&x), None) => {
                        out.push(x);
                        i += 1;
                    }
                    (None, Some(&y)) => {
                        out.push(y);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            if out.len() > ARRAY_MAX {
                let mut scratch = [0u64; CHUNK_WORDS];
                for &p in &out {
                    scratch[p as usize / 64] |= 1u64 << (p % 64);
                }
                classify(&scratch).expect("non-empty union")
            } else {
                Array(out)
            }
        }
        (Run(ra), Run(rb)) => {
            // Interval union with coalescing of touching runs.
            let mut out: Vec<(u16, u16)> = Vec::with_capacity(ra.len() + rb.len());
            let (mut i, mut j) = (0, 0);
            while i < ra.len() || j < rb.len() {
                let next = match (ra.get(i), rb.get(j)) {
                    (Some(&x), Some(&y)) => {
                        if x.0 <= y.0 {
                            i += 1;
                            x
                        } else {
                            j += 1;
                            y
                        }
                    }
                    (Some(&x), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        j += 1;
                        y
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                match out.last_mut() {
                    Some(last) if next.0 as u32 <= last.1 as u32 + 1 => {
                        last.1 = last.1.max(next.1);
                    }
                    _ => out.push(next),
                }
            }
            Run(out)
        }
        _ => {
            // At least one dense or mixed pair: materialise and reclassify.
            let mut scratch = [0u64; CHUNK_WORDS];
            a.materialize_into(&mut scratch);
            b.materialize_into(&mut scratch);
            classify(&scratch).expect("non-empty union")
        }
    }
}

/// AND-NOT (`a & !b`) of two containers; `None` when empty.
fn andnot_containers(a: &Container, b: &Container) -> Option<Container> {
    use Container::{Array, Bitmap, Run};
    let out = match (a, b) {
        (Array(xs), Array(ys)) => {
            let mut out = Vec::with_capacity(xs.len());
            let mut j = 0;
            for &x in xs {
                j = gallop(ys, j, x);
                if j == ys.len() || ys[j] != x {
                    out.push(x);
                }
            }
            Array(out)
        }
        (Array(xs), Bitmap(w)) => Array(
            xs.iter()
                .copied()
                .filter(|&p| w[p as usize / 64] >> (p % 64) & 1 == 0)
                .collect(),
        ),
        (Array(xs), Run(rs)) => {
            // Skip array entries covered by any run.
            let mut out = Vec::with_capacity(xs.len());
            let mut j = 0;
            for &x in xs {
                while j < rs.len() && rs[j].1 < x {
                    j += 1;
                }
                if j == rs.len() || rs[j].0 > x {
                    out.push(x);
                }
            }
            Array(out)
        }
        (Run(ra), Run(rb)) => {
            // Interval subtraction: clip each run of `a` by runs of `b`.
            let mut out = Vec::new();
            let mut j = 0;
            for &(s, e) in ra {
                let mut cur = s as u32;
                while j < rb.len() && rb[j].1 < s {
                    j += 1;
                }
                let mut jj = j;
                while jj < rb.len() && rb[jj].0 as u32 <= e as u32 {
                    let (bs, be) = rb[jj];
                    if (bs as u32) > cur {
                        out.push((cur as u16, bs - 1));
                    }
                    cur = cur.max(be as u32 + 1);
                    jj += 1;
                }
                if cur <= e as u32 {
                    out.push((cur as u16, e));
                }
            }
            Run(out)
        }
        (Bitmap(wa), Array(ys)) => {
            let mut scratch = *wa.clone();
            for &p in ys {
                scratch[p as usize / 64] &= !(1u64 << (p % 64));
            }
            return classify(&scratch);
        }
        (Bitmap(wa), Run(rs)) => {
            let mut scratch = *wa.clone();
            for &(s, e) in rs {
                clear_word_range(&mut scratch, s as usize, e as usize);
            }
            return classify(&scratch);
        }
        (Bitmap(wa), Bitmap(wb)) => {
            let mut scratch = [0u64; CHUNK_WORDS];
            simd::andnot_words(simd::selected_path(), &mut scratch, &wa[..], &wb[..]);
            return classify(&scratch);
        }
        (Run(_), _) => {
            let mut scratch = [0u64; CHUNK_WORDS];
            a.materialize_into(&mut scratch);
            match b {
                Array(ys) => {
                    for &p in ys {
                        scratch[p as usize / 64] &= !(1u64 << (p % 64));
                    }
                }
                Bitmap(wb) => {
                    simd::andnot_assign(simd::selected_path(), &mut scratch, &wb[..]);
                }
                Run(_) => unreachable!("run×run handled above"),
            }
            return classify(&scratch);
        }
    };
    match &out {
        Array(v) if v.is_empty() => None,
        Run(v) if v.is_empty() => None,
        _ => Some(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, f: impl Fn(usize) -> bool) -> BitVec {
        (0..len).map(f).collect()
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (name, bits) in [
            ("empty", BitVec::new()),
            ("all zero", BitVec::zeros(200_000)),
            ("all one", BitVec::ones(200_000)),
            (
                "sparse",
                BitVec::from_positions(300_000, &[3, 65_535, 65_536, 299_999]),
            ),
            ("alternating", patterned(150_000, |i| i % 2 == 0)),
            ("clustered", patterned(150_000, |i| (i / 5000) % 3 == 0)),
            ("partial tail", patterned(CHUNK_BITS + 77, |i| i % 5 == 0)),
        ] {
            let r = RoaringBitmap::from_bitvec(&bits);
            assert_eq!(r.to_bitvec(), bits, "{name}");
            assert_eq!(r.count_ones(), bits.count_ones(), "{name} popcount");
            assert_eq!(r.len(), bits.len(), "{name} len");
        }
    }

    #[test]
    fn container_choice_follows_density() {
        // A handful of ones per chunk: arrays beat everything.
        let sparse = RoaringBitmap::from_bitvec(&BitVec::from_positions(
            CHUNK_BITS * 3,
            &[1, 2, CHUNK_BITS + 5, CHUNK_BITS * 2 + 9],
        ));
        assert!(sparse.storage_bytes() < 64, "{}", sparse.storage_bytes());

        // Density 1/2 random-ish: bitmap containers, ~8 KiB per chunk.
        let dense = RoaringBitmap::from_bitvec(&patterned(CHUNK_BITS, |i| {
            (i.wrapping_mul(2654435761)) % 97 < 48
        }));
        assert_eq!(dense.storage_bytes(), 4 + CHUNK_WORDS * 8);

        // Long runs: a run container collapses the whole chunk.
        let runs = RoaringBitmap::from_bitvec(&patterned(CHUNK_BITS, |i| i < 60_000));
        assert!(runs.storage_bytes() <= 8, "{}", runs.storage_bytes());
    }

    #[test]
    fn ops_match_dense_across_container_pairs() {
        // Each operand mixes array, run, and bitmap chunks so every
        // container pairing is exercised.
        let len = CHUNK_BITS * 3 + 1000;
        let a = patterned(len, |i| {
            let c = i / CHUNK_BITS;
            match c {
                0 => i % 1009 == 0,                          // array
                1 => (i % CHUNK_BITS) < 40_000,              // run
                _ => (i.wrapping_mul(2654435761)) % 97 < 48, // bitmap
            }
        });
        let b = patterned(len, |i| {
            let c = i / CHUNK_BITS;
            match c {
                0 => (i % CHUNK_BITS) > 30_000,         // run
                1 => (i.wrapping_mul(40503)) % 89 < 43, // bitmap
                _ => i % 733 == 0,                      // array
            }
        });
        let (ra, rb) = (
            RoaringBitmap::from_bitvec(&a),
            RoaringBitmap::from_bitvec(&b),
        );
        assert_eq!(ra.and(&rb).to_bitvec(), &a & &b, "AND");
        assert_eq!(ra.or(&rb).to_bitvec(), &a | &b, "OR");
        let not_b = {
            let mut x = b.clone();
            x.words_mut().iter_mut().for_each(|w| *w = !*w);
            x.words_mut()[(len - 1) / 64] &= (1u64 << (len % 64)) - 1;
            x
        };
        assert_eq!(ra.and_not(&rb).to_bitvec(), &a & &not_b, "ANDNOT");
        // Same-kind pairings as well.
        assert_eq!(ra.and(&ra).to_bitvec(), a, "self AND");
        assert_eq!(rb.or(&rb).to_bitvec(), b, "self OR");
        assert_eq!(ra.and_not(&ra).count_ones(), 0, "self ANDNOT");
    }

    #[test]
    fn absent_chunks_short_circuit() {
        let len = CHUNK_BITS * 20;
        let a = RoaringBitmap::from_bitvec(&BitVec::from_positions(len, &[5, 6]));
        let dense = RoaringBitmap::from_bitvec(&patterned(len, |i| i % 2 == 0));
        // Intersection only visits the single shared chunk.
        let x = a.and(&dense);
        assert_eq!(x.chunk_count(), 1);
        assert_eq!(x.count_ones(), 1); // 6 is even, 5 is odd
        let y = a.or(&dense);
        assert_eq!(y.count_ones(), dense.count_ones() + 1);
    }

    #[test]
    fn bit_probes_every_container_kind() {
        let len = CHUNK_BITS * 3;
        let bits = patterned(len, |i| {
            let c = i / CHUNK_BITS;
            match c {
                0 => i == 17,
                1 => (i % CHUNK_BITS) < 100,
                _ => (i.wrapping_mul(2654435761)) % 97 < 48,
            }
        });
        let r = RoaringBitmap::from_bitvec(&bits);
        for i in [
            0,
            17,
            18,
            CHUNK_BITS,
            CHUNK_BITS + 99,
            CHUNK_BITS + 100,
            len - 1,
        ] {
            assert_eq!(r.bit(i), bits.bit(i), "bit {i}");
        }
    }

    #[test]
    fn window_classification_and_fill() {
        let len = CHUNK_BITS * 2;
        let bits = patterned(len, |i| {
            (CHUNK_BITS / 2..CHUNK_BITS / 2 + 4096).contains(&i) || i == CHUNK_BITS + 70
        });
        let r = RoaringBitmap::from_bitvec(&bits);
        let mut buf = [0u64; 64];

        // Window fully inside the ones run.
        let w = r.fill_window(CHUNK_BITS / 2 / 64, &mut buf);
        assert_eq!(w.kind, WindowKind::Ones);

        // Window in an untouched region of a present chunk.
        let w = r.fill_window(0, &mut buf);
        assert_eq!(w.kind, WindowKind::Zeros);

        // Window holding the single stray bit.
        let w = r.fill_window(CHUNK_BITS / 64, &mut buf);
        assert_eq!(w.kind, WindowKind::Mixed);
        assert_eq!(buf[70 / 64], 1u64 << (70 % 64));
        assert!(w.bytes_touched > 0);

        // Window in an absent chunk region costs nothing.
        let empty = RoaringBitmap::from_bitvec(&BitVec::zeros(len));
        let w = empty.fill_window(5 * 64, &mut buf);
        assert_eq!(w.kind, WindowKind::Zeros);
        assert_eq!(w.bytes_touched, 0);
    }

    #[test]
    fn window_fill_matches_dense_words() {
        let len = CHUNK_BITS + 3000; // partial final chunk
        let bits = patterned(len, |i| (i.wrapping_mul(2654435761)) % 31 < 9);
        let r = RoaringBitmap::from_bitvec(&bits);
        let total_words = bits.words().len();
        let mut buf = [0u64; 64];
        let mut start = 0;
        while start < total_words {
            let n = 64.min(total_words - start);
            let w = r.fill_window(start, &mut buf[..n]);
            match w.kind {
                WindowKind::Mixed => {
                    assert_eq!(
                        &buf[..n],
                        &bits.words()[start..start + n],
                        "window @{start}"
                    );
                }
                WindowKind::Zeros => {
                    assert!(bits.words()[start..start + n].iter().all(|&x| x == 0));
                }
                WindowKind::Ones => {
                    unreachable!("no all-ones window in this pattern");
                }
            }
            start += n;
        }
    }

    #[test]
    fn serialisation_roundtrip_every_kind() {
        let len = CHUNK_BITS * 3 + 500;
        let bits = patterned(len, |i| {
            let c = i / CHUNK_BITS;
            match c {
                0 => i % 997 == 0,
                1 => (i % CHUNK_BITS) < 50_000,
                2 => (i.wrapping_mul(2654435761)) % 97 < 48,
                _ => i % 3 == 0,
            }
        });
        let r = RoaringBitmap::from_bitvec(&bits);
        let restored = RoaringBitmap::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(restored, r);
    }

    #[test]
    fn serialisation_rejects_corruption() {
        let r = RoaringBitmap::from_bitvec(&BitVec::from_positions(CHUNK_BITS, &[7, 9]));
        let good = r.to_bytes();
        assert!(
            RoaringBitmap::from_bytes(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        let mut bad_kind = good.clone();
        bad_kind[16] = 9; // container kind byte
        assert!(RoaringBitmap::from_bytes(&bad_kind).is_err(), "bad kind");
        let mut unsorted = good.clone();
        // Swap the two array entries (bytes 21.. hold [7, 9] LE).
        unsorted[21..23].copy_from_slice(&9u16.to_le_bytes());
        unsorted[23..25].copy_from_slice(&7u16.to_le_bytes());
        assert!(RoaringBitmap::from_bytes(&unsorted).is_err(), "unsorted");
        let mut trailing = good;
        trailing.push(0);
        assert!(RoaringBitmap::from_bytes(&trailing).is_err(), "trailing");
    }

    #[test]
    fn serialisation_rejects_bits_beyond_len() {
        // A 100-bit bitmap whose array container claims position 200.
        let mut raw = Vec::new();
        raw.extend_from_slice(&100u64.to_le_bytes());
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes()); // chunk key 0
        raw.push(0); // array
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&200u16.to_le_bytes());
        assert!(RoaringBitmap::from_bytes(&raw).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn op_length_mismatch_panics() {
        let a = RoaringBitmap::from_bitvec(&BitVec::zeros(10));
        let b = RoaringBitmap::from_bitvec(&BitVec::zeros(20));
        let _ = a.and(&b);
    }
}
