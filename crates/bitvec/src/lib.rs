#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]
//! Bit-vector substrate for encoded bitmap indexing.
//!
//! This crate provides the low-level bitmap machinery that every index in
//! the workspace is built from:
//!
//! * [`BitVec`] — a growable, word-packed vector of bits with bulk logical
//!   operations (`AND`, `OR`, `XOR`, `NOT`, `AND NOT`), population count,
//!   and position iterators. This is the physical representation of one
//!   *bitmap vector* in the sense of Wu & Buchmann (ICDE 1998): bit `j`
//!   corresponds to tuple `j` of the indexed table.
//! * [`rank::RankIndex`] — an auxiliary rank/select directory for
//!   positional queries over a frozen bitmap.
//! * [`wah::WahBitmap`] — a word-aligned-hybrid run-length-compressed
//!   bitmap, covering the "compression techniques (e.g. run-length) for
//!   simple bitmap indexes" the paper lists as related work, and used by
//!   the sparsity experiments.
//! * [`roaring::RoaringBitmap`] — a chunked hybrid array/bitmap/run
//!   compressed bitmap in the style of Chambi et al., with chunk-level
//!   compressed-domain set operations and on-demand evaluation windows.
//! * [`store::SliceStorage`] — the per-slice adaptive container choice
//!   (dense word-packed, Roaring, or WAH) driven by measured density.
//! * [`builder::BitVecBuilder`] — streaming construction helpers used by
//!   the index builders.
//! * [`kernels`] — fused, segment-streaming evaluation kernels that
//!   compute an entire product term (AND of up to 64 optionally negated
//!   vectors) in one pass with no intermediate allocation, OR-ing terms
//!   into a shared destination, with per-segment short-circuiting.
//! * [`summary::SegmentSummary`] — per-4096-row one-counts built at
//!   index construction, letting the kernels skip whole segments before
//!   reading any bitmap word.
//!
//! # Invariant
//!
//! All operations maintain the invariant that bits at positions `>= len()`
//! inside the last storage word are zero, so `count_ones` and word-level
//! comparisons are always exact.
//!
//! # Example
//!
//! ```
//! use ebi_bitvec::BitVec;
//!
//! let mut b = BitVec::from_bools([true, false, true, true]);
//! let mask = BitVec::from_bools([true, true, false, true]);
//! b &= &mask;
//! assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
//! ```

pub mod builder;
mod core;
pub mod error;
mod iter;
pub mod kernels;
mod ops;
pub mod rank;
pub mod roaring;
pub mod runs;
mod serde_impl;
pub mod serial;
pub mod simd;
pub mod store;
pub mod summary;
pub mod wah;

pub use crate::core::{BitVec, WORD_BITS};
pub use crate::error::BitVecError;
pub use crate::iter::{BitIter, OnesIter};
pub use crate::kernels::{KernelStats, Literal, StoredLiteral, SEGMENT_BITS, SEGMENT_WORDS};
pub use crate::runs::RunStats;
pub use crate::simd::KernelPath;
pub use crate::store::{SliceStorage, StorageKind, StoragePolicy};
pub use crate::summary::SegmentSummary;
