//! Run statistics for bitmap containers.
//!
//! Row reordering (Lemire/Kaser/Aouiche: sorting the fact table before
//! building the index) pays off exactly when it lengthens the runs of
//! identical bits inside each slice — longer runs mean more WAH fill
//! words, more Roaring run containers, and more uniform evaluation
//! windows the stored kernels can skip from metadata alone.
//! [`RunStats`] is the per-container measurement of that quantity, so
//! the reordering win is observable per slice rather than only in
//! aggregate storage bytes.
//!
//! All three containers report the same logical statistics over the
//! same bit sequence:
//!
//! * `runs` / `longest_run` — maximal runs of **set** bits, in bits.
//!   These are container-independent (the same bitmap yields the same
//!   values dense, Roaring, or WAH).
//! * `fill_words` / `total_words` — how many of the container's
//!   scanning granules were uniform (all-zero or all-one). Dense and
//!   Roaring count 64-bit words; WAH counts its native 63-bit groups.
//!   The granule size differs, so compare [`fill_word_fraction`]
//!   (dimensionless) across containers, not raw counts.
//!
//! [`fill_word_fraction`]: RunStats::fill_word_fraction

/// Run statistics of one bitmap: how run-friendly its bit layout is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of maximal runs of set bits.
    pub runs: u64,
    /// Length in bits of the longest run of set bits.
    pub longest_run: u64,
    /// Scanning granules (words or WAH groups) that were uniform —
    /// all-zero or all-one over their valid bits.
    pub fill_words: u64,
    /// Total scanning granules examined.
    pub total_words: u64,
}

impl RunStats {
    /// Statistics of the word-packed bitmap `words` holding `len_bits`
    /// valid bits (trailing bits of the last word are ignored).
    #[must_use]
    pub fn from_words(words: &[u64], len_bits: usize) -> Self {
        let mut st = Self::default();
        let mut cur = 0u64;
        st.scan_words(&mut cur, words, len_bits);
        st
    }

    /// Fraction of uniform granules, in `[0, 1]`; `0.0` when empty.
    #[must_use]
    pub fn fill_word_fraction(&self) -> f64 {
        if self.total_words == 0 {
            0.0
        } else {
            self.fill_words as f64 / self.total_words as f64
        }
    }

    /// Folds `other` into `self` for whole-index aggregation. Runs are
    /// summed (slices are independent bitmaps, so no run spans two).
    pub fn merge(&mut self, other: &Self) {
        self.runs += other.runs;
        self.longest_run = self.longest_run.max(other.longest_run);
        self.fill_words += other.fill_words;
        self.total_words += other.total_words;
    }

    /// Scans `len_bits` valid bits of `words`, updating word accounting
    /// and run lengths. `cur` carries the length of the in-progress run
    /// of ones across calls (callers stream one container in order).
    pub(crate) fn scan_words(&mut self, cur: &mut u64, words: &[u64], len_bits: usize) {
        let mut remaining = len_bits;
        for &raw in words {
            if remaining == 0 {
                break;
            }
            let valid = remaining.min(64) as u32;
            let mask = if valid == 64 {
                u64::MAX
            } else {
                (1u64 << valid) - 1
            };
            let w = raw & mask;
            self.total_words += 1;
            if w == 0 || w == mask {
                self.fill_words += 1;
            }
            self.scan_word(cur, w, valid);
            remaining -= valid as usize;
        }
    }

    /// Run accounting for one granule of `valid` bits (word accounting
    /// is the caller's job — WAH granules are 63 bits wide).
    pub(crate) fn scan_word(&mut self, cur: &mut u64, w: u64, valid: u32) {
        let mut bit = 0u32;
        while bit < valid {
            let rest = w >> bit;
            if rest & 1 == 0 {
                *cur = 0;
                bit += rest.trailing_zeros().min(valid - bit);
            } else {
                let ones = (!rest).trailing_zeros().min(valid - bit);
                if *cur == 0 {
                    self.runs += 1;
                }
                *cur += u64::from(ones);
                self.longest_run = self.longest_run.max(*cur);
                bit += ones;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::BitVec;
    use crate::roaring::RoaringBitmap;
    use crate::store::{SliceStorage, StoragePolicy};
    use crate::wah::WahBitmap;

    #[test]
    fn empty_and_uniform() {
        assert_eq!(RunStats::from_words(&[], 0), RunStats::default());

        let zeros = BitVec::zeros(1000);
        let st = zeros.run_stats();
        assert_eq!(st.runs, 0);
        assert_eq!(st.longest_run, 0);
        assert_eq!(st.total_words, 16);
        assert_eq!(st.fill_words, 16);

        let ones = BitVec::ones(1000);
        let st = ones.run_stats();
        assert_eq!(st.runs, 1);
        assert_eq!(st.longest_run, 1000);
        assert!((st.fill_word_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_across_word_boundaries() {
        // One run spanning three words, one short run, one lone bit.
        let mut b = BitVec::zeros(300);
        for i in 60..140 {
            b.set(i, true);
        }
        for i in 200..203 {
            b.set(i, true);
        }
        b.set(299, true);
        let st = b.run_stats();
        assert_eq!(st.runs, 3);
        assert_eq!(st.longest_run, 80);
        assert_eq!(st.total_words, 5);
        assert_eq!(st.fill_words, 1, "only word 1 (bits 64..128) is uniform");
    }

    #[test]
    fn tail_word_bits_are_ignored() {
        // 70 bits: last word has 6 valid bits, set them all.
        let mut b = BitVec::zeros(70);
        for i in 64..70 {
            b.set(i, true);
        }
        let st = b.run_stats();
        assert_eq!(st.runs, 1);
        assert_eq!(st.longest_run, 6);
        assert_eq!(st.fill_words, 2, "all-zero word 0 and all-valid-ones tail");
    }

    #[test]
    fn containers_agree_on_run_structure() {
        type Pattern = (usize, Box<dyn Fn(usize) -> bool>);
        let patterns: [Pattern; 4] = [
            (200_000, Box::new(|i| (30_000..90_000).contains(&i))),
            (200_000, Box::new(|i| i % 97 == 0)),
            (150_000, Box::new(|i| i % 1000 < 700)),
            (66_000, Box::new(|i| i / 7 % 3 == 0)),
        ];
        for (len, f) in patterns {
            let bits: BitVec = (0..len).map(&f).collect();
            let dense = bits.run_stats();
            let roar = RoaringBitmap::from_bitvec(&bits).run_stats();
            let wah = WahBitmap::compress(&bits).run_stats();
            // Run structure is container-independent.
            for st in [&roar, &wah] {
                assert_eq!(st.runs, dense.runs);
                assert_eq!(st.longest_run, dense.longest_run);
            }
            // Granule sizes differ (63 vs 64 bits) but fractions are
            // close on these run-heavy layouts.
            assert!((roar.fill_word_fraction() - dense.fill_word_fraction()).abs() < 1e-12);
            assert!((wah.fill_word_fraction() - dense.fill_word_fraction()).abs() < 0.05);
        }
    }

    #[test]
    fn slice_storage_dispatches() {
        let bits: BitVec = (0..150_000).map(|i| i % 1000 < 10).collect();
        let reference = bits.run_stats();
        for policy in [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
        ] {
            let st = SliceStorage::from_dense(bits.clone(), policy).run_stats();
            assert_eq!(st.runs, reference.runs, "{policy:?}");
            assert_eq!(st.longest_run, reference.longest_run, "{policy:?}");
        }
    }

    #[test]
    fn merge_aggregates() {
        let a = RunStats {
            runs: 3,
            longest_run: 10,
            fill_words: 4,
            total_words: 8,
        };
        let mut b = RunStats {
            runs: 2,
            longest_run: 40,
            fill_words: 1,
            total_words: 8,
        };
        b.merge(&a);
        assert_eq!(b.runs, 5);
        assert_eq!(b.longest_run, 40);
        assert_eq!(b.fill_words, 5);
        assert_eq!(b.total_words, 16);
        assert!((b.fill_word_fraction() - 5.0 / 16.0).abs() < 1e-12);
    }
}
