//! Adaptive per-slice storage: dense, Roaring, or WAH.
//!
//! The encoded index keeps `k = ceil(log2 m)` bit-slices. On uniform
//! data each slice has density ≈ 1/2 and the word-packed [`BitVec`] is
//! optimal; on skewed domains individual slices become very sparse (or
//! very dense) and a compressed container wins both space and — via
//! window-on-demand evaluation — bytes touched per query.
//!
//! [`SliceStorage`] is the per-slice container choice and
//! [`StoragePolicy`] the build-time rule that makes it. The default
//! [`StoragePolicy::Adaptive`] policy measures the slice density and
//! keeps mid-density slices dense (compression would only add
//! overhead), switching to Roaring containers outside the
//! `[0.20, 0.80]` band on large vectors.

use crate::core::BitVec;
use crate::error::BitVecError;
use crate::roaring::{RoaringBitmap, CHUNK_BITS};
use crate::wah::WahBitmap;
use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

/// Density band (inclusive) within which compression is not attempted
/// by [`StoragePolicy::Adaptive`].
const DENSE_BAND: (f64, f64) = (0.20, 0.80);

/// Vectors shorter than this always stay dense under
/// [`StoragePolicy::Adaptive`]: container bookkeeping would dominate.
const ADAPTIVE_MIN_BITS: usize = 2 * CHUNK_BITS;

/// Build-time rule choosing each slice's [`SliceStorage`] container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoragePolicy {
    /// Word-packed [`BitVec`] for every slice (the pre-container
    /// behaviour).
    Dense,
    /// Roaring chunked containers for every slice.
    Roaring,
    /// WAH run-length compression for every slice.
    Wah,
    /// Per-slice choice from measured density: dense inside the
    /// `[0.20, 0.80]` band or below two chunks of rows, Roaring
    /// otherwise.
    #[default]
    Adaptive,
}

/// Which physical container a slice ended up in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Word-packed [`BitVec`].
    Dense,
    /// [`RoaringBitmap`] chunked containers.
    Roaring,
    /// [`WahBitmap`] run-length code.
    Wah,
}

impl StorageKind {
    /// Stable one-byte tag used by the serialised form.
    fn tag(self) -> u8 {
        match self {
            Self::Dense => 0,
            Self::Roaring => 1,
            Self::Wah => 2,
        }
    }
}

/// One encoded bit-slice in whichever container the build policy chose.
///
/// ```
/// use ebi_bitvec::{BitVec, SliceStorage, StorageKind, StoragePolicy};
///
/// let sparse = BitVec::from_positions(1_000_000, &[3, 999_999]);
/// let s = SliceStorage::from_dense(sparse.clone(), StoragePolicy::Adaptive);
/// assert_eq!(s.kind(), StorageKind::Roaring);
/// assert_eq!(s.count_ones(), 2);
/// assert_eq!(s.to_dense(), sparse);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SliceStorage {
    /// Word-packed, uncompressed.
    Dense(BitVec),
    /// Roaring chunked containers.
    Roaring(RoaringBitmap),
    /// WAH run-length code.
    Wah(WahBitmap),
}

impl SliceStorage {
    /// Applies `policy` to a freshly built dense slice.
    #[must_use]
    pub fn from_dense(bits: BitVec, policy: StoragePolicy) -> Self {
        match policy {
            StoragePolicy::Dense => Self::Dense(bits),
            StoragePolicy::Roaring => Self::Roaring(RoaringBitmap::from_bitvec(&bits)),
            StoragePolicy::Wah => Self::Wah(WahBitmap::compress(&bits)),
            StoragePolicy::Adaptive => {
                if bits.len() < ADAPTIVE_MIN_BITS {
                    return Self::Dense(bits);
                }
                let density = 1.0 - bits.sparsity();
                if (DENSE_BAND.0..=DENSE_BAND.1).contains(&density) {
                    Self::Dense(bits)
                } else {
                    Self::Roaring(RoaringBitmap::from_bitvec(&bits))
                }
            }
        }
    }

    /// Which container this slice lives in.
    #[must_use]
    pub fn kind(&self) -> StorageKind {
        match self {
            Self::Dense(_) => StorageKind::Dense,
            Self::Roaring(_) => StorageKind::Roaring,
            Self::Wah(_) => StorageKind::Wah,
        }
    }

    /// Number of bits represented.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Dense(b) => b.len(),
            Self::Roaring(r) => r.len(),
            Self::Wah(w) => w.len(),
        }
    }

    /// `true` if no bits are represented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Population count, computed in the container's native domain.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        match self {
            Self::Dense(b) => b.count_ones(),
            Self::Roaring(r) => r.count_ones(),
            Self::Wah(w) => w.count_ones(),
        }
    }

    /// Fraction of zero bits (0.0 for an empty slice), mirroring
    /// [`BitVec::sparsity`].
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        let len = self.len();
        if len == 0 {
            return 0.0;
        }
        (len - self.count_ones()) as f64 / len as f64
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        match self {
            Self::Dense(b) => b.bit(i),
            Self::Roaring(r) => r.bit(i),
            Self::Wah(w) => w.bit(i),
        }
    }

    /// Heap bytes of the container payload.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        match self {
            Self::Dense(b) => b.storage_bytes(),
            Self::Roaring(r) => r.storage_bytes(),
            Self::Wah(w) => w.storage_bytes(),
        }
    }

    /// Run statistics in the container's native domain (WAH counts
    /// 63-bit groups; see [`crate::runs::RunStats`]).
    #[must_use]
    pub fn run_stats(&self) -> crate::runs::RunStats {
        match self {
            Self::Dense(b) => b.run_stats(),
            Self::Roaring(r) => r.run_stats(),
            Self::Wah(w) => w.run_stats(),
        }
    }

    /// The dense word-packed form (cloned for [`SliceStorage::Dense`]).
    #[must_use]
    pub fn to_dense(&self) -> BitVec {
        match self {
            Self::Dense(b) => b.clone(),
            Self::Roaring(r) => r.to_bitvec(),
            Self::Wah(w) => w.decompress(),
        }
    }

    /// Borrows the dense form when this slice is stored dense.
    #[must_use]
    pub fn as_dense(&self) -> Option<&BitVec> {
        match self {
            Self::Dense(b) => Some(b),
            _ => None,
        }
    }

    /// Converts in place to the dense container (a no-op when already
    /// dense). Index maintenance densifies before mutating because the
    /// compressed containers are immutable.
    pub fn densify(&mut self) -> &mut BitVec {
        if let Self::Dense(_) = self {
        } else {
            *self = Self::Dense(self.to_dense());
        }
        match self {
            Self::Dense(b) => b,
            _ => unreachable!("just densified"),
        }
    }

    /// Builds the slice's per-segment one-counts (decompressing
    /// transiently for compressed containers).
    #[must_use]
    pub fn summary(&self) -> crate::summary::SegmentSummary {
        match self.as_dense() {
            Some(b) => crate::summary::SegmentSummary::build(b),
            None => crate::summary::SegmentSummary::build(&self.to_dense()),
        }
    }

    /// Re-applies `policy` (used when [`StoragePolicy`] changes at query
    /// time or after maintenance densified a slice).
    #[must_use]
    pub fn repack(&self, policy: StoragePolicy) -> Self {
        Self::from_dense(self.to_dense(), policy)
    }

    /// Serialises as a one-byte container tag followed by the
    /// container's own byte layout.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.kind().tag()];
        match self {
            Self::Dense(b) => out.extend_from_slice(&b.to_bytes()),
            Self::Roaring(r) => out.extend_from_slice(&r.to_bytes()),
            Self::Wah(w) => out.extend_from_slice(&w.to_bytes()),
        }
        out
    }

    /// Parses the layout from [`SliceStorage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BitVecError::Corrupt`] on an unknown tag or when the
    /// container payload fails its own validation.
    pub fn from_bytes(raw: &[u8]) -> Result<Self, BitVecError> {
        let (&tag, body) = raw.split_first().ok_or_else(|| BitVecError::Corrupt {
            detail: "empty slice-storage buffer".into(),
        })?;
        match tag {
            0 => Ok(Self::Dense(BitVec::from_bytes(body.to_vec().into())?)),
            1 => Ok(Self::Roaring(RoaringBitmap::from_bytes(body)?)),
            2 => Ok(Self::Wah(WahBitmap::from_bytes(body)?)),
            other => Err(BitVecError::Corrupt {
                detail: format!("unknown slice-storage tag {other}"),
            }),
        }
    }
}

impl From<BitVec> for SliceStorage {
    fn from(bits: BitVec) -> Self {
        Self::Dense(bits)
    }
}

impl Serialize for SliceStorage {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("kind", Value::U64(u64::from(self.kind().tag()))),
            ("bytes", Value::Bytes(self.to_bytes())),
        ]))
    }
}

impl<'de> Deserialize<'de> for SliceStorage {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let Value::Map(fields) = deserializer.deserialize_value()? else {
            return Err(D::Error::custom("SliceStorage: expected a map"));
        };
        let mut kind: Option<u64> = None;
        let mut bytes: Option<Vec<u8>> = None;
        for (name, value) in fields {
            match (name, value) {
                ("kind", Value::U64(k)) => kind = Some(k),
                ("bytes", Value::Bytes(b)) => bytes = Some(b),
                (other, _) => {
                    return Err(D::Error::custom(format!(
                        "SliceStorage: unknown field {other:?}"
                    )));
                }
            }
        }
        let kind = kind.ok_or_else(|| D::Error::custom("SliceStorage: missing kind"))?;
        let bytes = bytes.ok_or_else(|| D::Error::custom("SliceStorage: missing bytes"))?;
        let parsed = Self::from_bytes(&bytes).map_err(D::Error::custom)?;
        if u64::from(parsed.kind().tag()) != kind {
            return Err(D::Error::custom("SliceStorage: kind/tag mismatch"));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{ValueDeserializer, ValueSerializer};

    fn patterned(len: usize, f: impl Fn(usize) -> bool) -> BitVec {
        (0..len).map(f).collect()
    }

    #[test]
    fn adaptive_policy_follows_density() {
        // Small vectors stay dense regardless of density.
        let small =
            SliceStorage::from_dense(BitVec::from_positions(1000, &[5]), StoragePolicy::Adaptive);
        assert_eq!(small.kind(), StorageKind::Dense);

        // Mid-density large vectors stay dense (compression is a loss).
        let mid = SliceStorage::from_dense(
            patterned(ADAPTIVE_MIN_BITS, |i| i % 2 == 0),
            StoragePolicy::Adaptive,
        );
        assert_eq!(mid.kind(), StorageKind::Dense);

        // Sparse and near-full large vectors compress.
        let sparse = SliceStorage::from_dense(
            BitVec::from_positions(ADAPTIVE_MIN_BITS, &[7]),
            StoragePolicy::Adaptive,
        );
        assert_eq!(sparse.kind(), StorageKind::Roaring);
        assert!(sparse.storage_bytes() < 64);

        let full = SliceStorage::from_dense(
            patterned(ADAPTIVE_MIN_BITS, |i| i != 9),
            StoragePolicy::Adaptive,
        );
        assert_eq!(full.kind(), StorageKind::Roaring);
        assert!(full.storage_bytes() < ADAPTIVE_MIN_BITS / 8);
    }

    #[test]
    fn forced_policies_and_accessors_agree_across_kinds() {
        let bits = patterned(200_000, |i| i % 97 == 0 || (30_000..90_000).contains(&i));
        for policy in [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
        ] {
            let s = SliceStorage::from_dense(bits.clone(), policy);
            assert_eq!(s.len(), bits.len(), "{policy:?}");
            assert_eq!(s.count_ones(), bits.count_ones(), "{policy:?}");
            assert_eq!(s.to_dense(), bits, "{policy:?}");
            assert!((s.sparsity() - bits.sparsity()).abs() < 1e-12, "{policy:?}");
            for i in [0, 96, 97, 29_999, 30_000, 89_999, 90_000, 199_999] {
                assert_eq!(s.bit(i), bits.bit(i), "{policy:?} bit {i}");
            }
        }
    }

    #[test]
    fn densify_and_repack_roundtrip() {
        let bits = BitVec::from_positions(ADAPTIVE_MIN_BITS, &[1, 2, 3]);
        let mut s = SliceStorage::from_dense(bits, StoragePolicy::Adaptive);
        assert_eq!(s.kind(), StorageKind::Roaring);
        s.densify().set(10, true);
        assert_eq!(s.kind(), StorageKind::Dense);
        assert_eq!(s.count_ones(), 4);
        let repacked = s.repack(StoragePolicy::Adaptive);
        assert_eq!(repacked.kind(), StorageKind::Roaring);
        assert_eq!(repacked.count_ones(), 4);
    }

    #[test]
    fn byte_roundtrip_every_kind() {
        let bits = patterned(150_000, |i| i % 53 == 0);
        for policy in [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
        ] {
            let s = SliceStorage::from_dense(bits.clone(), policy);
            let restored = SliceStorage::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(restored, s, "{policy:?}");
        }
        assert!(SliceStorage::from_bytes(&[]).is_err());
        assert!(SliceStorage::from_bytes(&[9, 0, 0]).is_err());
    }

    #[test]
    fn serde_roundtrip_every_kind() {
        let bits = patterned(150_000, |i| (20_000..120_000).contains(&i));
        for policy in [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
        ] {
            let s = SliceStorage::from_dense(bits.clone(), policy);
            let tree = s.serialize(ValueSerializer).unwrap();
            let restored = SliceStorage::deserialize(ValueDeserializer(tree)).unwrap();
            assert_eq!(restored, s, "{policy:?}");
        }
        // Mismatched kind tag is rejected.
        let s = SliceStorage::from_dense(bits, StoragePolicy::Wah);
        let Value::Map(mut fields) = s.serialize(ValueSerializer).unwrap() else {
            panic!("map expected");
        };
        fields[0].1 = Value::U64(0);
        let err = SliceStorage::deserialize(ValueDeserializer(Value::Map(fields))).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }
}
