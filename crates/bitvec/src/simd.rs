//! Vectorised word passes behind the fused evaluation kernels.
//!
//! Every hot loop in [`crate::kernels`] and the Roaring bitmap-container
//! ops reduces to one of a handful of *word passes* over at most
//! [`crate::kernels::SEGMENT_WORDS`] 64-bit words: initialise an
//! accumulator from an (optionally complemented) operand, AND a further
//! operand in, fuse the first two operands into one load-AND-store, OR a
//! finished accumulator into the destination. This module provides those
//! passes at three implementation tiers and picks one at runtime:
//!
//! * **scalar** — the original word-at-a-time loops. Always compiled,
//!   always correct; the other tiers are verified against it by the
//!   `prop_simd` differential suite.
//! * **portable** — 4-lane unrolled passes (`u64x4` blocks) written so
//!   the auto-vectoriser emits full-width vector code for whatever the
//!   target baseline offers (SSE2 on vanilla `x86_64`, NEON on
//!   aarch64). With the `nightly-simd` feature the same tier is built on
//!   `std::simd` portable vectors instead of the manual unroll.
//! * **avx2** — explicit 256-bit `core::arch::x86_64` intrinsics,
//!   reached only when the `simd` feature is on, the binary runs on
//!   `x86_64`, and `is_x86_feature_detected!("avx2")` says the host has
//!   the instructions. This is the only `unsafe` code in the crate; the
//!   unsafety is confined to [`avx2`] and vetted by Miri in CI.
//!
//! Negation is folded into every pass as an XOR mask (`x ^ 0 = x`,
//! `x ^ !0 = !x`), so a single implementation covers all operand
//! polarities, including the `!(a | b) = !a & !b` fused case.
//!
//! # Dispatch
//!
//! [`selected_path`] resolves, in order: a thread-local override
//! ([`with_forced_path`], used by the differential tests), a process
//! override ([`force_path_global`], used by benchmarks), the `EBI_KERNEL`
//! environment variable (`scalar` / `portable` / `avx2` / `auto`), and
//! finally runtime CPU detection. Forcing a path the build or host
//! cannot execute clamps down to the best available path, never up, so
//! the selected path is always executable. The kernels resolve the path
//! once per evaluation and record it in
//! [`KernelStats`](crate::kernels::KernelStats), which surfaces through
//! `QueryStats` and the `eval` span attributes up to `EXPLAIN ANALYZE`.

// The workspace denies `unsafe_code`; this module is the one sanctioned
// exception — the AVX2 tier and its dispatch calls. Every unsafe block
// carries a SAFETY comment and the whole tier is vetted by Miri in CI.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which word-pass implementation tier ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum KernelPath {
    /// Word-at-a-time loops — the always-correct fallback.
    Scalar = 0,
    /// 4-lane portable vector passes (auto-vectorised, or `std::simd`
    /// under the `nightly-simd` feature).
    Portable = 1,
    /// Explicit AVX2 intrinsics (runtime-detected, x86_64 only).
    Avx2 = 2,
}

impl KernelPath {
    /// Stable lowercase name for stats, JSON, and span attributes.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Portable => "portable",
            Self::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Scalar),
            1 => Some(Self::Portable),
            2 => Some(Self::Avx2),
            _ => None,
        }
    }
}

/// Sentinel for "no override".
const AUTO: u8 = u8::MAX;

static GLOBAL_FORCE: AtomicU8 = AtomicU8::new(AUTO);

thread_local! {
    static TLS_FORCE: Cell<u8> = const { Cell::new(AUTO) };
}

/// The best path this build + host can execute, detected once.
///
/// Without the `simd` feature this is always [`KernelPath::Scalar`];
/// with it, [`KernelPath::Portable`] everywhere and [`KernelPath::Avx2`]
/// when the x86_64 host reports the feature. Under Miri, runtime CPU
/// detection is unavailable, so detection falls back to compile-time
/// target features.
#[must_use]
pub fn detected_path() -> KernelPath {
    #[cfg(feature = "simd")]
    {
        static DETECTED: AtomicU8 = AtomicU8::new(AUTO);
        if let Some(p) = KernelPath::from_u8(DETECTED.load(Ordering::Relaxed)) {
            return p;
        }
        let p = detect();
        DETECTED.store(p as u8, Ordering::Relaxed);
        p
    }
    #[cfg(not(feature = "simd"))]
    {
        KernelPath::Scalar
    }
}

#[cfg(feature = "simd")]
fn detect() -> KernelPath {
    let hw = hardware_best();
    match std::env::var("EBI_KERNEL").as_deref() {
        Ok("scalar") => KernelPath::Scalar,
        Ok("portable") => KernelPath::Portable.min(hw),
        Ok("avx2") => KernelPath::Avx2.min(hw),
        _ => hw,
    }
}

/// Best path the hardware supports, ignoring overrides.
#[cfg(feature = "simd")]
fn hardware_best() -> KernelPath {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelPath::Avx2;
        }
    }
    #[cfg(all(target_arch = "x86_64", miri))]
    {
        // Miri cannot run CPUID; trust the compile-time target set so
        // `RUSTFLAGS=-Ctarget-feature=+avx2 cargo miri test` vets the
        // intrinsic path.
        if cfg!(target_feature = "avx2") {
            return KernelPath::Avx2;
        }
    }
    KernelPath::Portable
}

/// Every path executable on this build + host, worst first. The
/// differential tests iterate this to prove all tiers agree bit-for-bit.
#[must_use]
pub fn available_paths() -> Vec<KernelPath> {
    let best = detected_path();
    [KernelPath::Scalar, KernelPath::Portable, KernelPath::Avx2]
        .into_iter()
        .filter(|p| *p <= best)
        .collect()
}

/// Resolves the path the next kernel invocation will run:
/// thread-local override, then process override, then detection.
/// Overrides are clamped to [`detected_path`] so the result is always
/// executable.
#[must_use]
pub fn selected_path() -> KernelPath {
    let best = detected_path();
    let tls = TLS_FORCE.with(Cell::get);
    if let Some(p) = KernelPath::from_u8(tls) {
        return p.min(best);
    }
    if let Some(p) = KernelPath::from_u8(GLOBAL_FORCE.load(Ordering::Relaxed)) {
        return p.min(best);
    }
    best
}

/// Forces every thread onto `path` (clamped to what the host can run),
/// or restores auto-detection with `None`. Benchmarks use this to
/// measure the scalar baseline on SIMD-capable hosts.
pub fn force_path_global(path: Option<KernelPath>) {
    GLOBAL_FORCE.store(path.map_or(AUTO, |p| p as u8), Ordering::Relaxed);
}

/// Runs `f` with the *calling thread* forced onto `path` (clamped to
/// what the host can run), restoring the previous override afterwards —
/// even on panic. Worker threads spawned inside `f` are not affected;
/// use [`force_path_global`] to steer those.
pub fn with_forced_path<R>(path: KernelPath, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            TLS_FORCE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TLS_FORCE.with(|c| c.replace(path as u8)));
    f()
}

/// XOR mask implementing optional complement: `x ^ polarity(neg)` is
/// `x` or `!x`.
#[inline]
fn polarity(negated: bool) -> u64 {
    if negated {
        u64::MAX
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Public passes: dispatch on `path`, which callers resolve once per
// evaluation via `selected_path()`.
// ---------------------------------------------------------------------------

/// `acc[i] = (s1[i] ^ ¬?) & (s2[i] ^ ¬?)` — the fused first-two-literal
/// pass. Returns `true` if any output word is non-zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn fused_pass2(
    path: KernelPath,
    acc: &mut [u64],
    s1: &[u64],
    s2: &[u64],
    neg1: bool,
    neg2: bool,
) -> bool {
    assert_eq!(acc.len(), s1.len());
    assert_eq!(acc.len(), s2.len());
    let (m1, m2) = (polarity(neg1), polarity(neg2));
    match path {
        KernelPath::Scalar => scalar::fused_pass2(acc, s1, s2, m1, m2),
        #[cfg(feature = "simd")]
        KernelPath::Portable => portable::fused_pass2(acc, s1, s2, m1, m2),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `path` is clamped to `detected_path()`, which only
        // reports Avx2 after runtime (or, under Miri, compile-time)
        // feature detection.
        KernelPath::Avx2 => unsafe { avx2::fused_pass2(acc, s1, s2, m1, m2) },
        #[allow(unreachable_patterns)]
        _ => scalar::fused_pass2(acc, s1, s2, m1, m2),
    }
}

/// `acc[i] = src[i] ^ ¬?` — first-literal initialisation. Returns `true`
/// if any output word is non-zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn init_pass(path: KernelPath, acc: &mut [u64], src: &[u64], negated: bool) -> bool {
    assert_eq!(acc.len(), src.len());
    let m = polarity(negated);
    match path {
        KernelPath::Scalar => scalar::init_pass(acc, src, m),
        #[cfg(feature = "simd")]
        KernelPath::Portable => portable::init_pass(acc, src, m),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as in `fused_pass2`.
        KernelPath::Avx2 => unsafe { avx2::init_pass(acc, src, m) },
        #[allow(unreachable_patterns)]
        _ => scalar::init_pass(acc, src, m),
    }
}

/// `acc[i] &= src[i] ^ ¬?` — fold one more literal into the
/// accumulator. Returns `true` if the accumulator is still non-zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_pass(path: KernelPath, acc: &mut [u64], src: &[u64], negated: bool) -> bool {
    assert_eq!(acc.len(), src.len());
    let m = polarity(negated);
    match path {
        KernelPath::Scalar => scalar::and_pass(acc, src, m),
        #[cfg(feature = "simd")]
        KernelPath::Portable => portable::and_pass(acc, src, m),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as in `fused_pass2`.
        KernelPath::Avx2 => unsafe { avx2::and_pass(acc, src, m) },
        #[allow(unreachable_patterns)]
        _ => scalar::and_pass(acc, src, m),
    }
}

/// `dst[i] |= src[i]` — OR a finished term into the destination.
/// Returns `true` if every destination word is now all-ones (the
/// segment-saturation break).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn or_into(path: KernelPath, dst: &mut [u64], src: &[u64]) -> bool {
    assert_eq!(dst.len(), src.len());
    match path {
        KernelPath::Scalar => scalar::or_into(dst, src),
        #[cfg(feature = "simd")]
        KernelPath::Portable => portable::or_into(dst, src),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as in `fused_pass2`.
        KernelPath::Avx2 => unsafe { avx2::or_into(dst, src) },
        #[allow(unreachable_patterns)]
        _ => scalar::or_into(dst, src),
    }
}

/// `out[i] = a[i] & b[i]` — Roaring bitmap-container intersection.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_words(path: KernelPath, out: &mut [u64], a: &[u64], b: &[u64]) {
    let _ = fused_pass2(path, out, a, b, false, false);
}

/// `out[i] = a[i] & !b[i]` — Roaring bitmap-container subtraction.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn andnot_words(path: KernelPath, out: &mut [u64], a: &[u64], b: &[u64]) {
    let _ = fused_pass2(path, out, a, b, false, true);
}

/// `dst[i] &= src[i]` — in-place container intersection.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_assign(path: KernelPath, dst: &mut [u64], src: &[u64]) {
    let _ = and_pass(path, dst, src, false);
}

/// `dst[i] &= !src[i]` — in-place container subtraction.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn andnot_assign(path: KernelPath, dst: &mut [u64], src: &[u64]) {
    let _ = and_pass(path, dst, src, true);
}

/// `dst[i] |= src[i]` — in-place container union.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn or_assign(path: KernelPath, dst: &mut [u64], src: &[u64]) {
    let _ = or_into(path, dst, src);
}

// ---------------------------------------------------------------------------
// Scalar tier: the reference implementation.
// ---------------------------------------------------------------------------

mod scalar {
    pub fn fused_pass2(acc: &mut [u64], s1: &[u64], s2: &[u64], m1: u64, m2: u64) -> bool {
        let mut any = 0u64;
        for ((a, &x), &y) in acc.iter_mut().zip(s1).zip(s2) {
            let v = (x ^ m1) & (y ^ m2);
            *a = v;
            any |= v;
        }
        any != 0
    }

    pub fn init_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let mut any = 0u64;
        for (a, &x) in acc.iter_mut().zip(src) {
            let v = x ^ m;
            *a = v;
            any |= v;
        }
        any != 0
    }

    pub fn and_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let mut any = 0u64;
        for (a, &x) in acc.iter_mut().zip(src) {
            *a &= x ^ m;
            any |= *a;
        }
        any != 0
    }

    pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
        let mut all = u64::MAX;
        for (d, &x) in dst.iter_mut().zip(src) {
            *d |= x;
            all &= *d;
        }
        all == u64::MAX
    }
}

// ---------------------------------------------------------------------------
// Portable tier: 4-lane blocks the auto-vectoriser widens to whatever
// the target baseline offers. With `nightly-simd`, `std::simd` vectors.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", not(feature = "nightly-simd")))]
mod portable {
    const LANES: usize = 4;

    pub fn fused_pass2(acc: &mut [u64], s1: &[u64], s2: &[u64], m1: u64, m2: u64) -> bool {
        let mut anyv = [0u64; LANES];
        let n = acc.len();
        let blocks = n / LANES * LANES;
        for i in (0..blocks).step_by(LANES) {
            for l in 0..LANES {
                let v = (s1[i + l] ^ m1) & (s2[i + l] ^ m2);
                acc[i + l] = v;
                anyv[l] |= v;
            }
        }
        let mut any = anyv.iter().fold(0, |a, &v| a | v);
        for i in blocks..n {
            let v = (s1[i] ^ m1) & (s2[i] ^ m2);
            acc[i] = v;
            any |= v;
        }
        any != 0
    }

    pub fn init_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let mut anyv = [0u64; LANES];
        let n = acc.len();
        let blocks = n / LANES * LANES;
        for i in (0..blocks).step_by(LANES) {
            for l in 0..LANES {
                let v = src[i + l] ^ m;
                acc[i + l] = v;
                anyv[l] |= v;
            }
        }
        let mut any = anyv.iter().fold(0, |a, &v| a | v);
        for i in blocks..n {
            let v = src[i] ^ m;
            acc[i] = v;
            any |= v;
        }
        any != 0
    }

    pub fn and_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let mut anyv = [0u64; LANES];
        let n = acc.len();
        let blocks = n / LANES * LANES;
        for i in (0..blocks).step_by(LANES) {
            for l in 0..LANES {
                let v = acc[i + l] & (src[i + l] ^ m);
                acc[i + l] = v;
                anyv[l] |= v;
            }
        }
        let mut any = anyv.iter().fold(0, |a, &v| a | v);
        for i in blocks..n {
            acc[i] &= src[i] ^ m;
            any |= acc[i];
        }
        any != 0
    }

    pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
        let mut allv = [u64::MAX; LANES];
        let n = dst.len();
        let blocks = n / LANES * LANES;
        for i in (0..blocks).step_by(LANES) {
            for l in 0..LANES {
                let v = dst[i + l] | src[i + l];
                dst[i + l] = v;
                allv[l] &= v;
            }
        }
        let mut all = allv.iter().fold(u64::MAX, |a, &v| a & v);
        for i in blocks..n {
            dst[i] |= src[i];
            all &= dst[i];
        }
        all == u64::MAX
    }
}

#[cfg(all(feature = "simd", feature = "nightly-simd"))]
mod portable {
    //! `std::simd` build of the portable tier (nightly only).
    use std::simd::{cmp::SimdPartialEq, u64x4, Simd};

    pub fn fused_pass2(acc: &mut [u64], s1: &[u64], s2: &[u64], m1: u64, m2: u64) -> bool {
        let (vm1, vm2) = (u64x4::splat(m1), u64x4::splat(m2));
        let mut anyv = u64x4::splat(0);
        let n = acc.len();
        let blocks = n / 4 * 4;
        for i in (0..blocks).step_by(4) {
            let x = Simd::from_slice(&s1[i..i + 4]) ^ vm1;
            let y = Simd::from_slice(&s2[i..i + 4]) ^ vm2;
            let v = x & y;
            v.copy_to_slice(&mut acc[i..i + 4]);
            anyv |= v;
        }
        let mut any = !anyv.simd_eq(u64x4::splat(0)).all() as u64;
        for i in blocks..n {
            let v = (s1[i] ^ m1) & (s2[i] ^ m2);
            acc[i] = v;
            any |= v;
        }
        any != 0
    }

    pub fn init_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let vm = u64x4::splat(m);
        let mut anyv = u64x4::splat(0);
        let n = acc.len();
        let blocks = n / 4 * 4;
        for i in (0..blocks).step_by(4) {
            let v = Simd::from_slice(&src[i..i + 4]) ^ vm;
            v.copy_to_slice(&mut acc[i..i + 4]);
            anyv |= v;
        }
        let mut any = !anyv.simd_eq(u64x4::splat(0)).all() as u64;
        for i in blocks..n {
            let v = src[i] ^ m;
            acc[i] = v;
            any |= v;
        }
        any != 0
    }

    pub fn and_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let vm = u64x4::splat(m);
        let mut anyv = u64x4::splat(0);
        let n = acc.len();
        let blocks = n / 4 * 4;
        for i in (0..blocks).step_by(4) {
            let v = Simd::from_slice(&acc[i..i + 4]) & (Simd::from_slice(&src[i..i + 4]) ^ vm);
            v.copy_to_slice(&mut acc[i..i + 4]);
            anyv |= v;
        }
        let mut any = !anyv.simd_eq(u64x4::splat(0)).all() as u64;
        for i in blocks..n {
            acc[i] &= src[i] ^ m;
            any |= acc[i];
        }
        any != 0
    }

    pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
        let mut allv = u64x4::splat(u64::MAX);
        let n = dst.len();
        let blocks = n / 4 * 4;
        for i in (0..blocks).step_by(4) {
            let v = Simd::from_slice(&dst[i..i + 4]) | Simd::from_slice(&src[i..i + 4]);
            v.copy_to_slice(&mut dst[i..i + 4]);
            allv &= v;
        }
        let mut all = if allv.simd_eq(u64x4::splat(u64::MAX)).all() {
            u64::MAX
        } else {
            0
        };
        for i in blocks..n {
            dst[i] |= src[i];
            all &= dst[i];
        }
        all == u64::MAX
    }
}

// ---------------------------------------------------------------------------
// AVX2 tier: explicit 256-bit intrinsics. The only unsafe code in the
// crate — every function is `#[target_feature(enable = "avx2")]` and
// reachable only after runtime detection.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_storeu_si256, _mm256_testc_si256, _mm256_testz_si256, _mm256_xor_si256,
    };

    /// 4 × u64 per vector register.
    const LANES: usize = 4;

    /// Unaligned 4-lane load.
    ///
    /// # Safety
    /// `p .. p+4` must be in-bounds for reads, and the caller must have
    /// verified AVX2 support before reaching this module.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(p: *const u64) -> __m256i {
        // SAFETY: caller guarantees `p .. p+4` is in-bounds; loadu has
        // no alignment requirement.
        unsafe { _mm256_loadu_si256(p.cast()) }
    }

    /// Unaligned 4-lane store.
    ///
    /// # Safety
    /// `p .. p+4` must be in-bounds for writes, and the caller must
    /// have verified AVX2 support before reaching this module.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(p: *mut u64, v: __m256i) {
        // SAFETY: caller guarantees `p .. p+4` is in-bounds and writable.
        unsafe { _mm256_storeu_si256(p.cast(), v) }
    }

    /// # Safety
    /// Caller must have verified AVX2 support; slices must be equal
    /// length (checked by the dispatching wrapper).
    #[target_feature(enable = "avx2")]
    pub unsafe fn fused_pass2(acc: &mut [u64], s1: &[u64], s2: &[u64], m1: u64, m2: u64) -> bool {
        let n = acc.len();
        let blocks = n / LANES * LANES;
        // SAFETY: all pointer arithmetic stays below `blocks <= n`, the
        // common length of the three slices.
        unsafe {
            let vm1 = _mm256_set1_epi64x(m1 as i64);
            let vm2 = _mm256_set1_epi64x(m2 as i64);
            let mut anyv = _mm256_set1_epi64x(0);
            let (pa, p1, p2) = (acc.as_mut_ptr(), s1.as_ptr(), s2.as_ptr());
            let mut i = 0;
            while i < blocks {
                let x = _mm256_xor_si256(load(p1.add(i)), vm1);
                let y = _mm256_xor_si256(load(p2.add(i)), vm2);
                let v = _mm256_and_si256(x, y);
                store(pa.add(i), v);
                anyv = _mm256_or_si256(anyv, v);
                i += LANES;
            }
            let mut any = (_mm256_testz_si256(anyv, anyv) == 0) as u64;
            for i in blocks..n {
                let v = (s1[i] ^ m1) & (s2[i] ^ m2);
                acc[i] = v;
                any |= v;
            }
            any != 0
        }
    }

    /// # Safety
    /// As [`fused_pass2`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn init_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let n = acc.len();
        let blocks = n / LANES * LANES;
        // SAFETY: bounds as in `fused_pass2`.
        unsafe {
            let vm = _mm256_set1_epi64x(m as i64);
            let mut anyv = _mm256_set1_epi64x(0);
            let (pa, ps) = (acc.as_mut_ptr(), src.as_ptr());
            let mut i = 0;
            while i < blocks {
                let v = _mm256_xor_si256(load(ps.add(i)), vm);
                store(pa.add(i), v);
                anyv = _mm256_or_si256(anyv, v);
                i += LANES;
            }
            let mut any = (_mm256_testz_si256(anyv, anyv) == 0) as u64;
            for i in blocks..n {
                let v = src[i] ^ m;
                acc[i] = v;
                any |= v;
            }
            any != 0
        }
    }

    /// # Safety
    /// As [`fused_pass2`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_pass(acc: &mut [u64], src: &[u64], m: u64) -> bool {
        let n = acc.len();
        let blocks = n / LANES * LANES;
        // SAFETY: bounds as in `fused_pass2`.
        unsafe {
            let vm = _mm256_set1_epi64x(m as i64);
            let mut anyv = _mm256_set1_epi64x(0);
            let (pa, ps) = (acc.as_mut_ptr(), src.as_ptr());
            let mut i = 0;
            while i < blocks {
                let v = _mm256_and_si256(load(pa.add(i)), _mm256_xor_si256(load(ps.add(i)), vm));
                store(pa.add(i), v);
                anyv = _mm256_or_si256(anyv, v);
                i += LANES;
            }
            let mut any = (_mm256_testz_si256(anyv, anyv) == 0) as u64;
            for i in blocks..n {
                acc[i] &= src[i] ^ m;
                any |= acc[i];
            }
            any != 0
        }
    }

    /// # Safety
    /// As [`fused_pass2`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
        let n = dst.len();
        let blocks = n / LANES * LANES;
        // SAFETY: bounds as in `fused_pass2`.
        unsafe {
            let ones = _mm256_set1_epi64x(-1);
            let mut allv = ones;
            let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
            let mut i = 0;
            while i < blocks {
                let v = _mm256_or_si256(load(pd.add(i)), load(ps.add(i)));
                store(pd.add(i), v);
                allv = _mm256_and_si256(allv, v);
                i += LANES;
            }
            // testc(a, ones) == 1  ⟺  !a & ones == 0  ⟺  a == ones.
            let mut all = if _mm256_testc_si256(allv, ones) == 1 {
                u64::MAX
            } else {
                0
            };
            for i in blocks..n {
                dst[i] |= src[i];
                all &= dst[i];
            }
            all == u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize, seed: u64) -> Vec<u64> {
        // Deterministic mix of dense / sparse / uniform words.
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                match i % 5 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => x,
                }
            })
            .collect()
    }

    #[test]
    fn every_path_matches_scalar_on_every_pass() {
        for n in [0usize, 1, 3, 4, 5, 17, 63, 64] {
            let s1 = words(n, 0xA5A5);
            let s2 = words(n, 0x5A5A);
            for path in available_paths() {
                for (n1, n2) in [(false, false), (false, true), (true, false), (true, true)] {
                    let mut want = vec![0u64; n];
                    let wa = fused_pass2(KernelPath::Scalar, &mut want, &s1, &s2, n1, n2);
                    let mut got = vec![0u64; n];
                    let ga = fused_pass2(path, &mut got, &s1, &s2, n1, n2);
                    assert_eq!(got, want, "fused_pass2 {path:?} n={n} neg=({n1},{n2})");
                    assert_eq!(ga, wa, "fused_pass2 any {path:?} n={n}");

                    let mut want2 = want.clone();
                    let wb = and_pass(KernelPath::Scalar, &mut want2, &s2, n2);
                    let mut got2 = got.clone();
                    let gb = and_pass(path, &mut got2, &s2, n2);
                    assert_eq!(got2, want2, "and_pass {path:?} n={n}");
                    assert_eq!(gb, wb, "and_pass any {path:?} n={n}");

                    let mut wdst = s1.clone();
                    let ws = or_into(KernelPath::Scalar, &mut wdst, &want2);
                    let mut gdst = s1.clone();
                    let gs = or_into(path, &mut gdst, &got2);
                    assert_eq!(gdst, wdst, "or_into {path:?} n={n}");
                    assert_eq!(gs, ws, "or_into saturated {path:?} n={n}");
                }
                for neg in [false, true] {
                    let mut want = vec![0u64; n];
                    let wa = init_pass(KernelPath::Scalar, &mut want, &s1, neg);
                    let mut got = vec![0u64; n];
                    let ga = init_pass(path, &mut got, &s1, neg);
                    assert_eq!(got, want, "init_pass {path:?} n={n} neg={neg}");
                    assert_eq!(ga, wa, "init_pass any {path:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn saturation_and_zero_edges() {
        for path in available_paths() {
            let mut dst = vec![u64::MAX; 8];
            assert!(or_into(path, &mut dst, &[0u64; 8]), "{path:?}");
            let mut dst = vec![u64::MAX - 1; 7];
            assert!(!or_into(path, &mut dst, &[0u64; 7]), "{path:?}");
            let mut acc = vec![0u64; 9];
            assert!(!init_pass(path, &mut acc, &[0u64; 9], false));
            assert!(init_pass(path, &mut acc, &[0u64; 9], true));
            assert!(!and_pass(path, &mut acc, &[0u64; 9], false));
        }
    }

    #[test]
    fn forcing_is_clamped_and_scoped() {
        let best = detected_path();
        with_forced_path(KernelPath::Avx2, || {
            assert!(selected_path() <= best);
        });
        with_forced_path(KernelPath::Scalar, || {
            assert_eq!(selected_path(), KernelPath::Scalar);
            with_forced_path(KernelPath::Portable, || {
                assert_eq!(selected_path(), KernelPath::Portable.min(best));
            });
            assert_eq!(selected_path(), KernelPath::Scalar);
        });
        assert_eq!(selected_path(), best);
    }

    #[test]
    fn path_names_are_stable() {
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Portable.name(), "portable");
        assert_eq!(KernelPath::Avx2.name(), "avx2");
    }

    #[test]
    fn available_paths_starts_at_scalar() {
        let paths = available_paths();
        assert_eq!(paths[0], KernelPath::Scalar);
        assert!(paths.windows(2).all(|w| w[0] < w[1]));
        if cfg!(not(feature = "simd")) {
            assert_eq!(paths.len(), 1);
        }
    }
}
