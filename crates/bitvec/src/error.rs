//! Error type for fallible bit-vector operations (deserialisation).

use std::fmt;

/// Errors returned by fallible [`crate::BitVec`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitVecError {
    /// The byte buffer is too short or structurally malformed.
    Corrupt {
        /// Human-readable description of what failed to parse.
        detail: String,
    },
    /// The serialised length field is inconsistent with the payload size.
    LengthMismatch {
        /// Bit length declared in the header.
        declared_bits: usize,
        /// Number of payload words actually present.
        payload_words: usize,
    },
    /// The compressed stream declared more bits than the container allows.
    Overflow,
}

impl fmt::Display for BitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Corrupt { detail } => write!(f, "corrupt bitmap encoding: {detail}"),
            Self::LengthMismatch {
                declared_bits,
                payload_words,
            } => write!(
                f,
                "bitmap header declares {declared_bits} bits but payload has {payload_words} words"
            ),
            Self::Overflow => write!(f, "compressed bitmap length overflows usize"),
        }
    }
}

impl std::error::Error for BitVecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BitVecError::LengthMismatch {
            declared_bits: 100,
            payload_words: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("100 bits"));
        assert!(msg.contains("1 words"));
        assert!(BitVecError::Overflow.to_string().contains("overflow"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BitVecError::Corrupt { detail: "x".into() });
    }
}
