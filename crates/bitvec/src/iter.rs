//! Iterators over [`BitVec`] contents.

use crate::core::{BitVec, WORD_BITS};

/// Iterator over every bit of a [`BitVec`], in position order.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    vec: &'a BitVec,
    pos: usize,
}

impl Iterator for BitIter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.vec.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitIter<'_> {}

/// Iterator over the positions of set bits, ascending.
///
/// Skips zero words wholesale, so iterating a sparse bitmap costs
/// `O(words + ones)` — this is what makes bitmap-index result decoding
/// cheap even on very sparse vectors.
#[derive(Debug, Clone)]
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> OnesIter<'a> {
    fn new(vec: &'a BitVec) -> Self {
        let words = vec.words();
        Self {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

impl BitVec {
    /// Iterates every bit in position order.
    #[must_use]
    pub fn iter(&self) -> BitIter<'_> {
        BitIter { vec: self, pos: 0 }
    }

    /// Iterates the positions of set bits, ascending. For an index query
    /// result this yields the matching tuple-ids.
    #[must_use]
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter::new(self)
    }

    /// Collects the positions of set bits into a vector.
    #[must_use]
    pub fn to_positions(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_ones());
        out
    }

    /// Position of the first set bit, if any.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }
}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_iter_matches_get() {
        let v: BitVec = (0..130).map(|i| i % 7 == 0).collect();
        let collected: Vec<bool> = v.iter().collect();
        assert_eq!(collected.len(), 130);
        for (i, &b) in collected.iter().enumerate() {
            assert_eq!(b, v.bit(i));
        }
    }

    #[test]
    fn ones_iter_yields_sorted_positions() {
        let positions = vec![0usize, 1, 63, 64, 65, 127, 128, 199];
        let v = BitVec::from_positions(200, &positions);
        assert_eq!(v.to_positions(), positions);
    }

    #[test]
    fn ones_iter_on_empty_and_dense() {
        assert_eq!(BitVec::zeros(500).to_positions(), Vec::<usize>::new());
        assert_eq!(BitVec::new().to_positions(), Vec::<usize>::new());
        let dense = BitVec::ones(100);
        assert_eq!(dense.to_positions(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ones_iter_skips_long_zero_runs() {
        let v = BitVec::from_positions(10_000, &[9_999]);
        assert_eq!(v.to_positions(), vec![9_999]);
        assert_eq!(v.first_one(), Some(9_999));
        assert_eq!(BitVec::zeros(10).first_one(), None);
    }

    #[test]
    fn exact_size_hint() {
        let v = BitVec::zeros(42);
        let mut it = v.iter();
        assert_eq!(it.len(), 42);
        it.next();
        assert_eq!(it.len(), 41);
    }

    #[test]
    fn into_iterator_for_reference() {
        let v: BitVec = [true, false, true].into_iter().collect();
        let total: usize = (&v).into_iter().filter(|&b| b).count();
        assert_eq!(total, 2);
    }
}
