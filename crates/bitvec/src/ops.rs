//! Bulk logical operations on [`BitVec`].
//!
//! These are the physical counterparts of the Boolean connectives in the
//! paper's retrieval functions: `x AND y` (`&`), `x OR y` (`+` in the
//! paper, `|` here), `x'` (negation, [`BitVec::negated`]), and bitwise XOR
//! (`⊕`, used by the binary-distance definition and footnote 3's
//! don't-care rewrite).
//!
//! All binary operations require equal lengths and panic otherwise —
//! bitmap vectors over the same table always have identical length, so a
//! mismatch is a logic error, not a recoverable condition.

use crate::core::BitVec;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

impl BitVec {
    /// In-place `self &= other`.
    pub fn and_assign(&mut self, other: &Self) {
        self.check_len(other, "AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place `self |= other`.
    pub fn or_assign(&mut self, other: &Self) {
        self.check_len(other, "OR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place `self ^= other`.
    pub fn xor_assign(&mut self, other: &Self) {
        self.check_len(other, "XOR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place `self &= !other` ("and not", i.e. set difference).
    pub fn and_not_assign(&mut self, other: &Self) {
        self.check_len(other, "AND NOT");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Returns `self & !other` (set difference).
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_not_assign(other);
        out
    }

    /// In-place bitwise complement (the paper's `B'`). The tail invariant
    /// is restored so bits beyond `len()` stay zero.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns the bitwise complement (the paper's `B'`).
    #[must_use]
    pub fn negated(&self) -> Self {
        let mut out = self.clone();
        out.negate();
        out
    }

    /// `true` if `self & other` has no set bit, without materialising the
    /// intersection.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_len(other, "is_disjoint");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every set bit of `self` is also set in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_len(other, "is_subset");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Population count of `self & other` without materialising it.
    #[must_use]
    pub fn and_count(&self, other: &Self) -> usize {
        self.check_len(other, "and_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $assign:ident) => {
        impl $trait<&BitVec> for &BitVec {
            type Output = BitVec;
            fn $method(self, rhs: &BitVec) -> BitVec {
                let mut out = self.clone();
                out.$assign(rhs);
                out
            }
        }
        impl $trait<&BitVec> for BitVec {
            type Output = BitVec;
            fn $method(mut self, rhs: &BitVec) -> BitVec {
                self.$assign(rhs);
                self
            }
        }
    };
}

binop!(BitAnd, bitand, and_assign);
binop!(BitOr, bitor, or_assign);
binop!(BitXor, bitxor, xor_assign);

impl BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        self.and_assign(rhs);
    }
}
impl BitOrAssign<&BitVec> for BitVec {
    fn bitor_assign(&mut self, rhs: &BitVec) {
        self.or_assign(rhs);
    }
}
impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}
impl Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        self.negated()
    }
}
impl Not for BitVec {
    type Output = BitVec;
    fn not(mut self) -> BitVec {
        self.negate();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (BitVec, BitVec) {
        let a: BitVec = (0..150).map(|i| i % 2 == 0).collect();
        let b: BitVec = (0..150).map(|i| i % 3 == 0).collect();
        (a, b)
    }

    #[test]
    fn and_keeps_common_bits() {
        let (a, b) = sample();
        let c = &a & &b;
        for i in 0..150 {
            assert_eq!(c.bit(i), i % 2 == 0 && i % 3 == 0, "bit {i}");
        }
        assert_eq!(c.count_ones(), 25); // multiples of 6 in 0..150
    }

    #[test]
    fn or_keeps_union() {
        let (a, b) = sample();
        let c = &a | &b;
        for i in 0..150 {
            assert_eq!(c.bit(i), i % 2 == 0 || i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn xor_keeps_symmetric_difference() {
        let (a, b) = sample();
        let c = &a ^ &b;
        for i in 0..150 {
            assert_eq!(c.bit(i), (i % 2 == 0) != (i % 3 == 0), "bit {i}");
        }
    }

    #[test]
    fn negation_preserves_tail_invariant() {
        let a: BitVec = (0..70).map(|i| i < 35).collect();
        let n = a.negated();
        assert_eq!(n.count_ones(), 35);
        assert_eq!(n.len(), 70);
        // Double negation is identity.
        assert_eq!(n.negated(), a);
        // Tail bits beyond len stayed zero: count via words.
        assert_eq!(n.words().iter().map(|w| w.count_ones()).sum::<u32>(), 35);
    }

    #[test]
    fn and_not_is_set_difference() {
        let (a, b) = sample();
        let c = a.and_not(&b);
        for i in 0..150 {
            assert_eq!(c.bit(i), i % 2 == 0 && i % 3 != 0, "bit {i}");
        }
    }

    #[test]
    fn demorgan_laws_hold() {
        let (a, b) = sample();
        assert_eq!((&a & &b).negated(), &a.negated() | &b.negated());
        assert_eq!((&a | &b).negated(), &a.negated() & &b.negated());
    }

    #[test]
    fn xor_equals_or_minus_and() {
        // Footnote 3 of the paper: for {b, c} with don't-care 11,
        // B1 ⊕ B0 and B1 + B0 agree except on the don't-care rows.
        let (a, b) = sample();
        let x = &a ^ &b;
        let expected = (&a | &b).and_not(&(&a & &b));
        assert_eq!(x, expected);
    }

    #[test]
    fn subset_and_disjoint_predicates() {
        let a = BitVec::from_positions(100, &[1, 5, 9]);
        let b = BitVec::from_positions(100, &[1, 5, 9, 50]);
        let c = BitVec::from_positions(100, &[2, 6]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.and_count(&c), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let _ = &a & &b;
    }

    #[test]
    fn assign_operator_forms() {
        let (a, b) = sample();
        let mut c = a.clone();
        c &= &b;
        assert_eq!(c, &a & &b);
        let mut d = a.clone();
        d |= &b;
        assert_eq!(d, &a | &b);
        let mut e = a.clone();
        e ^= &b;
        assert_eq!(e, &a ^ &b);
        assert_eq!(!a.clone(), a.negated());
    }
}
