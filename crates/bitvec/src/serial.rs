//! Byte-level (de)serialisation of bitmaps.
//!
//! The storage substrate persists bitmap vectors as page payloads; this
//! module defines the on-disk layout:
//!
//! ```text
//! [ u64 little-endian: bit length | u64 × ceil(len/64): payload words ]
//! ```
//!
//! The layout is deliberately trivial — the interesting storage behaviour
//! (page granularity, read counting) lives in `ebi-storage`.

use crate::core::{BitVec, WORD_BITS};
use crate::error::BitVecError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

impl BitVec {
    /// Serialises to the length-prefixed little-endian word layout.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.words().len() * 8);
        buf.put_u64_le(self.len() as u64);
        for &w in self.words() {
            buf.put_u64_le(w);
        }
        buf.freeze()
    }

    /// Parses the layout produced by [`BitVec::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BitVecError`] when the buffer is truncated, has a
    /// length/payload mismatch, or carries set bits beyond the declared
    /// length (which would silently corrupt population counts).
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, BitVecError> {
        if bytes.len() < 8 {
            return Err(BitVecError::Corrupt {
                detail: format!("buffer of {} bytes has no length header", bytes.len()),
            });
        }
        let len_u64 = bytes.get_u64_le();
        let len = usize::try_from(len_u64).map_err(|_| BitVecError::Overflow)?;
        let expected_words = len.div_ceil(WORD_BITS);
        if bytes.len() != expected_words * 8 {
            return Err(BitVecError::LengthMismatch {
                declared_bits: len,
                payload_words: bytes.len() / 8,
            });
        }
        let mut words = Vec::with_capacity(expected_words);
        for _ in 0..expected_words {
            words.push(bytes.get_u64_le());
        }
        let v = BitVec { words, len };
        // Reject payloads that violate the tail invariant rather than
        // silently masking: a mismatch means the producer was buggy.
        let mut masked = v.clone();
        masked.mask_tail();
        if masked.words != v.words {
            return Err(BitVecError::Corrupt {
                detail: "set bits beyond declared length".into(),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        for len in [0usize, 1, 63, 64, 65, 1000] {
            let v: BitVec = (0..len).map(|i| i % 3 == 0).collect();
            let restored = BitVec::from_bytes(v.to_bytes()).unwrap();
            assert_eq!(restored, v, "len {len}");
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let err = BitVec::from_bytes(Bytes::from_static(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, BitVecError::Corrupt { .. }));
    }

    #[test]
    fn payload_length_mismatch_rejected() {
        let v = BitVec::ones(100);
        let mut raw = v.to_bytes().to_vec();
        raw.truncate(raw.len() - 8); // drop one payload word
        let err = BitVec::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, BitVecError::LengthMismatch { .. }));
    }

    #[test]
    fn tail_garbage_rejected() {
        // Declare 4 bits but set bit 5 in the payload word.
        let mut buf = BytesMut::new();
        buf.put_u64_le(4);
        buf.put_u64_le(0b10_0001);
        let err = BitVec::from_bytes(buf.freeze()).unwrap_err();
        assert!(matches!(err, BitVecError::Corrupt { .. }));
    }

    #[test]
    fn empty_bitmap_serialises_to_header_only() {
        let v = BitVec::new();
        let raw = v.to_bytes();
        assert_eq!(raw.len(), 8);
        assert_eq!(BitVec::from_bytes(raw).unwrap(), v);
    }
}
