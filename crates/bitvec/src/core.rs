//! The core word-packed [`BitVec`] type.

use std::fmt;

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// A growable, word-packed vector of bits.
///
/// `BitVec` is the physical representation of one *bitmap vector*: bit `j`
/// corresponds to tuple `j` of an indexed table. Bits are stored
/// least-significant-bit first within `u64` words.
///
/// The type maintains the invariant that any bits stored beyond `len()` in
/// the final word are zero, which keeps [`BitVec::count_ones`] and
/// equality exact without per-call masking.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    pub(crate) words: Vec<u64>,
    pub(crate) len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from an iterator of booleans.
    #[must_use]
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let iter = bools.into_iter();
        let (lo, _) = iter.size_hint();
        let mut v = Self::with_capacity(lo);
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Builds a bit vector of length `len` with ones exactly at `positions`.
    ///
    /// # Panics
    ///
    /// Panics if any position is `>= len`.
    #[must_use]
    pub fn from_positions(len: usize, positions: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &p in positions {
            v.set(p, true);
        }
        v
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw storage words (LSB-first packing).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw storage words, for evaluation kernels that write
    /// disjoint word ranges in parallel (see [`crate::kernels`]).
    ///
    /// Callers must uphold the tail invariant: bits at positions
    /// `>= len()` in the final word stay zero. The kernels re-mask the
    /// tail after writing.
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Size of the heap storage in bytes (the paper's `|T| / 8` cost unit,
    /// rounded up to whole words).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * (WORD_BITS / 8)
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / WORD_BITS, self.len % WORD_BITS);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << b;
        }
        self.len += 1;
    }

    /// Appends `n` copies of `bit`. Runs in `O(n / 64)`.
    pub fn push_run(&mut self, bit: bool, n: usize) {
        if !bit {
            self.len += n;
            self.words.resize(self.len.div_ceil(WORD_BITS), 0);
            return;
        }
        let mut remaining = n;
        // Fill the current partial word first.
        while remaining > 0 && !self.len.is_multiple_of(WORD_BITS) {
            self.push(true);
            remaining -= 1;
        }
        while remaining >= WORD_BITS {
            self.words.push(u64::MAX);
            self.len += WORD_BITS;
            remaining -= WORD_BITS;
        }
        for _ in 0..remaining {
            self.push(true);
        }
    }

    /// Returns bit `i`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1)
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Number of one bits (the bitmap's *population count*).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of zero bits — the paper's *sparsity* measure (§2.1: simple
    /// bitmap sparsity averages `(m-1)/m`; encoded bitmap sparsity ≈ 1/2).
    ///
    /// Returns `0.0` for an empty vector.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count_zeros() as f64 / self.len as f64
    }

    /// Run statistics of the word-packed layout (see [`RunStats`]).
    ///
    /// [`RunStats`]: crate::runs::RunStats
    #[must_use]
    pub fn run_stats(&self) -> crate::runs::RunStats {
        crate::runs::RunStats::from_words(&self.words, self.len)
    }

    /// `true` if any bit is set.
    #[must_use]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` if all bits are set (vacuously true when empty).
    #[must_use]
    pub fn all(&self) -> bool {
        let full = self.len / WORD_BITS;
        if self.words[..full].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let tail = self.len % WORD_BITS;
        if tail == 0 {
            return true;
        }
        self.words[full] == (1u64 << tail) - 1
    }

    /// Removes all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Truncates to at most `len` bits.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(WORD_BITS));
        self.mask_tail();
    }

    /// Grows the vector to `len` bits, appending zeros. No-op if already
    /// at least `len` long.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(WORD_BITS), 0);
        }
    }

    /// Appends every bit of `other` after this vector's bits.
    ///
    /// Word-aligned fast path when `len() % 64 == 0` (a plain word copy,
    /// used by parallel builders stitching chunk results); otherwise a
    /// shifted word merge.
    pub fn extend_bits(&mut self, other: &Self) {
        let shift = self.len % WORD_BITS;
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            return;
        }
        self.words.reserve(other.words.len());
        for &w in &other.words {
            // Low part of w goes into the current tail word, high part
            // starts the next word.
            let last = self.words.last_mut().expect("non-aligned => non-empty");
            *last |= w << shift;
            self.words.push(w >> (WORD_BITS - shift));
        }
        self.len += other.len;
        // Trim any excess word introduced by the final push.
        self.words.truncate(self.len.div_ceil(WORD_BITS));
        self.mask_tail();
    }

    /// ORs every bit of `other` into this vector starting at bit
    /// position `offset`, leaving all other bits untouched.
    ///
    /// This is the shard-merge primitive: a service shard evaluates its
    /// row range into a local bitmap whose bit `j` is shard-relative,
    /// and the merge writes it back at the shard's global RID offset.
    /// Shards are disjoint row ranges, so OR never collides; using OR
    /// (not assignment) keeps the word-boundary writes safe when
    /// adjacent shards share a word. Word-aligned fast path when
    /// `offset % 64 == 0`; otherwise each source word is split across
    /// two destination words.
    ///
    /// # Panics
    ///
    /// Panics if `offset + other.len() > self.len()`.
    pub fn or_shifted(&mut self, other: &Self, offset: usize) {
        assert!(
            offset + other.len <= self.len,
            "or_shifted out of range: offset {} + {} bits > {} bits",
            offset,
            other.len,
            self.len
        );
        if other.len == 0 {
            return;
        }
        let word0 = offset / WORD_BITS;
        let shift = offset % WORD_BITS;
        if shift == 0 {
            for (dst, &src) in self.words[word0..].iter_mut().zip(&other.words) {
                *dst |= src;
            }
        } else {
            for (i, &src) in other.words.iter().enumerate() {
                self.words[word0 + i] |= src << shift;
                let hi = src >> (WORD_BITS - shift);
                if let Some(dst) = self.words.get_mut(word0 + i + 1) {
                    *dst |= hi;
                }
            }
        }
        // `other` upholds the tail invariant, so no stray bits past
        // `offset + other.len` were written; re-mask our own tail only
        // to guard against `other` ending exactly at our length.
        self.mask_tail();
    }

    /// Zeroes any bits beyond `len` in the final word, restoring the tail
    /// invariant after word-level operations.
    pub(crate) fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Asserts two vectors have equal length; used by the binary ops.
    pub(crate) fn check_len(&self, other: &Self, op: &str) {
        assert_eq!(
            self.len, other.len,
            "BitVec length mismatch in {op}: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(128);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if shown < self.len {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector_has_no_bits() {
        let v = BitVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert!(!v.any());
        assert!(v.all(), "all() is vacuously true for the empty vector");
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut v = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            v.push(b);
        }
        assert_eq!(v.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.bit(i), b, "bit {i}");
        }
        assert_eq!(v.get(200), None);
    }

    #[test]
    fn zeros_and_ones_constructors() {
        for len in [0usize, 1, 63, 64, 65, 129, 1000] {
            let z = BitVec::zeros(len);
            assert_eq!(z.len(), len);
            assert_eq!(z.count_ones(), 0);
            let o = BitVec::ones(len);
            assert_eq!(o.len(), len);
            assert_eq!(o.count_ones(), len, "ones({len})");
            assert!(o.all());
        }
    }

    #[test]
    fn set_updates_bits_in_both_directions() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
        assert!(v.bit(0) && v.bit(99) && !v.bit(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = BitVec::zeros(10);
        v.set(10, true);
    }

    #[test]
    fn from_positions_places_exactly_those_bits() {
        let v = BitVec::from_positions(70, &[0, 5, 64, 69]);
        assert_eq!(v.count_ones(), 4);
        assert!(v.bit(0) && v.bit(5) && v.bit(64) && v.bit(69));
        assert!(!v.bit(1) && !v.bit(63));
    }

    #[test]
    fn push_run_matches_individual_pushes() {
        let mut a = BitVec::new();
        a.push_run(true, 7);
        a.push_run(false, 100);
        a.push_run(true, 130);
        let mut b = BitVec::new();
        for _ in 0..7 {
            b.push(true);
        }
        for _ in 0..100 {
            b.push(false);
        }
        for _ in 0..130 {
            b.push(true);
        }
        assert_eq!(a, b);
        assert_eq!(a.count_ones(), 137);
    }

    #[test]
    fn truncate_clears_tail_bits() {
        let mut v = BitVec::ones(130);
        v.truncate(65);
        assert_eq!(v.len(), 65);
        assert_eq!(v.count_ones(), 65);
        v.truncate(0);
        assert!(v.is_empty());
    }

    #[test]
    fn grow_appends_zeros() {
        let mut v = BitVec::ones(10);
        v.grow(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 10);
        v.grow(5); // no-op
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn sparsity_reflects_zero_fraction() {
        let mut v = BitVec::zeros(100);
        assert!((v.sparsity() - 1.0).abs() < 1e-12);
        for i in 0..50 {
            v.set(i, true);
        }
        assert!((v.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(BitVec::new().sparsity(), 0.0);
    }

    #[test]
    fn all_handles_word_boundaries() {
        let mut v = BitVec::ones(64);
        assert!(v.all());
        v.set(63, false);
        assert!(!v.all());
        let w = BitVec::ones(65);
        assert!(w.all());
    }

    #[test]
    fn storage_is_word_rounded() {
        assert_eq!(BitVec::zeros(1).storage_bytes(), 8);
        assert_eq!(BitVec::zeros(64).storage_bytes(), 8);
        assert_eq!(BitVec::zeros(65).storage_bytes(), 16);
    }

    #[test]
    fn extend_bits_aligned_and_unaligned() {
        for first_len in [0usize, 1, 37, 64, 65, 128, 200] {
            for second_len in [0usize, 1, 63, 64, 100] {
                let a: BitVec = (0..first_len).map(|i| i % 3 == 0).collect();
                let b: BitVec = (0..second_len).map(|i| i % 5 != 0).collect();
                let mut joined = a.clone();
                joined.extend_bits(&b);
                let expect: BitVec = (0..first_len)
                    .map(|i| i % 3 == 0)
                    .chain((0..second_len).map(|i| i % 5 != 0))
                    .collect();
                assert_eq!(joined, expect, "{first_len}+{second_len}");
            }
        }
    }

    #[test]
    fn extend_bits_preserves_tail_invariant() {
        let mut a: BitVec = (0..10).map(|_| true).collect();
        let b: BitVec = (0..10).map(|_| true).collect();
        a.extend_bits(&b);
        assert_eq!(a.count_ones(), 20);
        assert_eq!(
            a.words().iter().map(|w| w.count_ones()).sum::<u32>(),
            20,
            "no stray bits beyond len"
        );
    }

    #[test]
    fn collect_from_iterator() {
        let v: BitVec = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn or_shifted_matches_bitwise_reference() {
        // Sweep offsets across word boundaries (including deliberately
        // unaligned ones) and fragment lengths around 64.
        for &offset in &[0usize, 1, 63, 64, 65, 100, 127, 128] {
            for &frag_len in &[0usize, 1, 63, 64, 65, 130] {
                let total = offset + frag_len + 37; // uneven global tail
                let mut global = BitVec::from_positions(total, &[0]);
                let frag: BitVec = (0..frag_len).map(|i| i % 3 == 0).collect();
                global.or_shifted(&frag, offset);
                let expect: BitVec = (0..total)
                    .map(|i| {
                        i == 0 || (i >= offset && i < offset + frag_len && (i - offset) % 3 == 0)
                    })
                    .collect();
                assert_eq!(global, expect, "offset={offset} frag_len={frag_len}");
            }
        }
    }

    #[test]
    fn or_shifted_adjacent_fragments_share_words_safely() {
        // Two "shards" whose boundary falls mid-word: merging both must
        // reconstruct the full vector exactly.
        let full: BitVec = (0..200).map(|i| i % 7 == 0 || i % 11 == 3).collect();
        let cut = 83; // not a multiple of 64
        let lo: BitVec = (0..cut).map(|i| full.bit(i)).collect();
        let hi: BitVec = (cut..200).map(|i| full.bit(i)).collect();
        let mut merged = BitVec::zeros(200);
        merged.or_shifted(&hi, cut); // out of order on purpose
        merged.or_shifted(&lo, 0);
        assert_eq!(merged, full);
    }

    #[test]
    fn or_shifted_fragment_ending_at_len_keeps_tail_invariant() {
        let mut global = BitVec::zeros(70);
        let frag = BitVec::ones(6);
        global.or_shifted(&frag, 64);
        assert_eq!(global.count_ones(), 6);
        assert_eq!(
            global.words().iter().map(|w| w.count_ones()).sum::<u32>(),
            6,
            "no stray bits beyond len"
        );
    }

    #[test]
    #[should_panic(expected = "or_shifted out of range")]
    fn or_shifted_rejects_overflow() {
        let mut global = BitVec::zeros(64);
        let frag = BitVec::ones(2);
        global.or_shifted(&frag, 63);
    }
}
