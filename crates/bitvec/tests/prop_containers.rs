//! Differential property tests for the compressed slice containers.
//!
//! Roaring and WAH are alternate physical layouts of the same logical
//! bit vector: every operation — bulk logical ops, population counts,
//! point probes, window fills, byte round-trips — must be
//! **bit-identical** to the uncompressed [`BitVec`] it came from, at
//! every density. The strategies sweep densities from ~0.1% (long zero
//! runs, the run/array sweet spot) through 50% (incompressible) to
//! ~99.9% (long one runs), with lengths that straddle the 65 536-bit
//! Roaring chunk boundary and WAH's 63-bit groups.

use ebi_bitvec::roaring::{RoaringBitmap, WindowKind};
use ebi_bitvec::wah::{WahBitmap, WahCursor};
use ebi_bitvec::{BitVec, SliceStorage, StorageKind, StoragePolicy};
use proptest::prelude::*;

/// Deterministic xorshift so bit contents derive from one seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Random bits at `density_ppt` parts-per-thousand ones.
fn random_bits(len: usize, density_ppt: u64, seed: u64) -> BitVec {
    let mut state = seed;
    BitVec::from_bools((0..len).map(|_| next(&mut state) % 1000 < density_ppt))
}

/// Densities covering both compressible extremes and the midpoint.
fn density_ppt() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![1u64, 50, 200, 500, 800, 950, 999])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roaring_ops_match_dense(
        seed in any::<u64>(),
        len in 0usize..200_000,
        da in density_ppt(),
        db in density_ppt(),
    ) {
        let a = random_bits(len, da, seed);
        let b = random_bits(len, db, seed ^ 0x9E37_79B9);
        let ra = RoaringBitmap::from_bitvec(&a);
        let rb = RoaringBitmap::from_bitvec(&b);
        prop_assert_eq!(ra.count_ones(), a.count_ones());
        prop_assert_eq!(ra.to_bitvec(), a, "lossless round-trip");

        let mut and = a.clone();
        and.and_assign(&b);
        prop_assert_eq!(ra.and(&rb).to_bitvec(), and, "AND (densities {}/{})", da, db);
        let mut or = a.clone();
        or.or_assign(&b);
        prop_assert_eq!(ra.or(&rb).to_bitvec(), or, "OR");
        prop_assert_eq!(ra.and_not(&rb).to_bitvec(), a.and_not(&b), "AND-NOT");
    }

    #[test]
    fn wah_ops_match_dense(
        seed in any::<u64>(),
        len in 0usize..60_000,
        da in density_ppt(),
        db in density_ppt(),
    ) {
        let a = random_bits(len, da, seed);
        let b = random_bits(len, db, seed ^ 0x6C62_272E);
        let wa = WahBitmap::compress(&a);
        let wb = WahBitmap::compress(&b);
        prop_assert_eq!(wa.count_ones(), a.count_ones());
        prop_assert_eq!(wa.decompress(), a, "lossless round-trip");

        let mut and = a.clone();
        and.and_assign(&b);
        prop_assert_eq!(wa.and(&wb).decompress(), and, "AND (densities {}/{})", da, db);
        let mut or = a;
        or.or_assign(&b);
        prop_assert_eq!(wa.or(&wb).decompress(), or, "OR");
    }

    #[test]
    fn point_probes_match_dense(
        seed in any::<u64>(),
        len in 1usize..150_000,
        density in density_ppt(),
        probes in prop::collection::vec(any::<prop::sample::Index>(), 1..16),
    ) {
        let bits = random_bits(len, density, seed);
        let roaring = RoaringBitmap::from_bitvec(&bits);
        let wah = WahBitmap::compress(&bits);
        for p in probes {
            let i = p.index(len);
            prop_assert_eq!(roaring.bit(i), bits.bit(i), "roaring bit {}", i);
            prop_assert_eq!(wah.bit(i), bits.bit(i), "wah bit {}", i);
        }
    }

    #[test]
    fn window_fills_reconstruct_the_dense_words(
        seed in any::<u64>(),
        len in 1usize..150_000,
        density in density_ppt(),
    ) {
        let bits = random_bits(len, density, seed);
        let roaring = RoaringBitmap::from_bitvec(&bits);
        let wah = WahBitmap::compress(&bits);
        let mut cursor = WahCursor::new(&wah);
        let words = bits.words();
        // Odd window width exercises unaligned starts; Roaring's
        // contract keeps each window inside one 1024-word chunk, so
        // clip at chunk edges (64-word segment windows always fit).
        const CHUNK_WORDS: usize = 1024;
        let mut buf_r = [0u64; 17];
        let mut buf_w = [0u64; 17];
        let mut start = 0usize;
        while start < words.len() {
            let take = buf_r
                .len()
                .min(words.len() - start)
                .min(CHUNK_WORDS - start % CHUNK_WORDS);
            let fr = roaring.fill_window(start, &mut buf_r[..take]);
            let fw = cursor.fill_window(start, &mut buf_w[..take]);
            for (j, &want) in words[start..start + take].iter().enumerate() {
                let got_r = match fr.kind {
                    WindowKind::Zeros => 0,
                    WindowKind::Ones => !0u64,
                    WindowKind::Mixed => buf_r[j],
                };
                let got_w = match fw.kind {
                    WindowKind::Zeros => 0,
                    WindowKind::Ones => !0u64,
                    WindowKind::Mixed => buf_w[j],
                };
                // The final word may carry garbage past `len` in the
                // container fills; compare only the valid lanes.
                let tail_bits = len - (start + j) * 64;
                let mask = if tail_bits >= 64 { !0u64 } else { (1u64 << tail_bits) - 1 };
                prop_assert_eq!(got_r & mask, want & mask, "roaring word {}", start + j);
                prop_assert_eq!(got_w & mask, want & mask, "wah word {}", start + j);
            }
            start += take;
        }
    }

    #[test]
    fn slice_storage_round_trips_bytes_for_every_kind(
        seed in any::<u64>(),
        len in 0usize..150_000,
        density in density_ppt(),
    ) {
        let bits = random_bits(len, density, seed);
        for (policy, kind) in [
            (StoragePolicy::Dense, StorageKind::Dense),
            (StoragePolicy::Roaring, StorageKind::Roaring),
            (StoragePolicy::Wah, StorageKind::Wah),
        ] {
            let stored = SliceStorage::from_dense(bits.clone(), policy);
            prop_assert_eq!(stored.kind(), kind);
            prop_assert_eq!(stored.len(), bits.len());
            prop_assert_eq!(stored.count_ones(), bits.count_ones());
            prop_assert_eq!(stored.to_dense(), bits.clone(), "{:?} lossless", kind);
            let reloaded = SliceStorage::from_bytes(&stored.to_bytes()).expect("decode");
            prop_assert_eq!(reloaded.kind(), kind, "byte tag preserves the kind");
            prop_assert_eq!(reloaded.to_dense(), bits.clone(), "{:?} byte round-trip", kind);
        }
        // Adaptive must pick *some* container that stays lossless.
        let adaptive = SliceStorage::from_dense(bits.clone(), StoragePolicy::Adaptive);
        prop_assert_eq!(adaptive.to_dense(), bits);
        let reloaded = SliceStorage::from_bytes(&adaptive.to_bytes()).expect("decode");
        prop_assert_eq!(reloaded.kind(), adaptive.kind());
        prop_assert_eq!(reloaded.to_dense(), bits);
    }

    #[test]
    fn repack_is_lossless_between_any_two_policies(
        seed in any::<u64>(),
        len in 0usize..100_000,
        density in density_ppt(),
    ) {
        let bits = random_bits(len, density, seed);
        let policies = [
            StoragePolicy::Dense,
            StoragePolicy::Roaring,
            StoragePolicy::Wah,
            StoragePolicy::Adaptive,
        ];
        for from in policies {
            let stored = SliceStorage::from_dense(bits.clone(), from);
            for to in policies {
                prop_assert_eq!(
                    stored.repack(to).to_dense(),
                    bits.clone(),
                    "repack {:?} -> {:?}",
                    from,
                    to
                );
            }
        }
    }
}

#[test]
fn window_fill_reports_uniform_runs_without_touching_the_buffer() {
    // A long all-zero prefix then a dense suffix: the zero windows must
    // classify as `Zeros` (run-skipped), charging no per-word work.
    let mut bits = BitVec::zeros(200_000);
    for i in 190_000..200_000 {
        bits.set(i, i % 2 == 0);
    }
    let roaring = RoaringBitmap::from_bitvec(&bits);
    let mut buf = [0u64; 64];
    let fill = roaring.fill_window(0, &mut buf);
    assert_eq!(fill.kind, WindowKind::Zeros);
    let wah = WahBitmap::compress(&bits);
    let mut cursor = WahCursor::new(&wah);
    let fill = cursor.fill_window(0, &mut buf);
    assert_eq!(fill.kind, WindowKind::Zeros);
}
