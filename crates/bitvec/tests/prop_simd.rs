//! Differential property tests proving the SIMD kernel tiers are
//! drop-in replacements for the scalar reference.
//!
//! Every tier the host can run ([`simd::available_paths`]) must
//! produce **bit-identical** output and **identical work counters**
//! for every kernel, over random operand mixes (1–6 literals per
//! term, arbitrary negation patterns), odd tail lengths that leave
//! the 4-word vector blocks ragged, and all-zero / all-one operands
//! that drive the saturation short-circuits. The dense and stored
//! (Dense / Roaring / WAH container) DNF evaluators are checked
//! end-to-end under a forced dispatch override; only the dispatch
//! counters themselves may differ between tiers.

use ebi_bitvec::kernels::{eval_dnf, eval_dnf_stored, Literal, StoredLiteral};
use ebi_bitvec::simd::{self, KernelPath};
use ebi_bitvec::summary::summarize_slices;
use ebi_bitvec::{BitVec, KernelStats, SliceStorage, StoragePolicy};
use proptest::prelude::*;

/// Deterministic xorshift so operand contents derive from one seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Random words with a sprinkling of all-zero and all-one words so the
/// vectorised any/all accumulators see saturated lanes.
fn random_words(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| match next(&mut state) % 8 {
            0 => 0,
            1 => u64::MAX,
            _ => next(&mut state),
        })
        .collect()
}

/// Random bits at `density_ppt` parts-per-thousand ones; 0 and 1000
/// produce genuinely constant vectors.
fn random_bits(len: usize, density_ppt: u64, seed: u64) -> BitVec {
    let mut state = seed;
    BitVec::from_bools((0..len).map(|_| next(&mut state) % 1000 < density_ppt))
}

/// Densities including both constant extremes.
fn density_ppt() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![0u64, 1, 200, 500, 999, 1000])
}

/// Work counters that must be invariant across kernel tiers (the
/// dispatch counters themselves legitimately differ).
fn work_counters(s: &KernelStats) -> (u64, u64, u64, u64, u64) {
    (
        s.words_scanned,
        s.bytes_touched,
        s.compressed_chunks_skipped,
        s.segments_pruned,
        s.segments_short_circuited,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every public word-level pass: each tier bit-identical to the
    /// scalar tier, including the any/saturation boolean returns, at
    /// lengths that leave ragged vector tails.
    #[test]
    fn word_passes_match_scalar_on_every_tier(
        seed in any::<u64>(),
        n in 0usize..300,
        neg1 in any::<bool>(),
        neg2 in any::<bool>(),
    ) {
        let s1 = random_words(n, seed ^ 0x9E37_79B9);
        let s2 = random_words(n, seed ^ 0x6C62_272E);
        let base = random_words(n, seed ^ 0x2545_F491);

        for path in simd::available_paths() {
            // fused_pass2: acc = (±s1) & (±s2)
            let mut want = base.clone();
            let want_any = simd::fused_pass2(KernelPath::Scalar, &mut want, &s1, &s2, neg1, neg2);
            let mut got = base.clone();
            let got_any = simd::fused_pass2(path, &mut got, &s1, &s2, neg1, neg2);
            prop_assert_eq!(&got, &want, "fused_pass2 words on {}", path.name());
            prop_assert_eq!(got_any, want_any, "fused_pass2 any on {}", path.name());

            // init_pass: acc = ±s1
            let mut want = base.clone();
            let want_any = simd::init_pass(KernelPath::Scalar, &mut want, &s1, neg1);
            let mut got = base.clone();
            let got_any = simd::init_pass(path, &mut got, &s1, neg1);
            prop_assert_eq!(&got, &want, "init_pass words on {}", path.name());
            prop_assert_eq!(got_any, want_any, "init_pass any on {}", path.name());

            // and_pass: acc &= ±s1
            let mut want = base.clone();
            let want_any = simd::and_pass(KernelPath::Scalar, &mut want, &s1, neg1);
            let mut got = base.clone();
            let got_any = simd::and_pass(path, &mut got, &s1, neg1);
            prop_assert_eq!(&got, &want, "and_pass words on {}", path.name());
            prop_assert_eq!(got_any, want_any, "and_pass any on {}", path.name());

            // or_into: dst |= src, returns saturation
            let mut want = base.clone();
            let want_sat = simd::or_into(KernelPath::Scalar, &mut want, &s1);
            let mut got = base.clone();
            let got_sat = simd::or_into(path, &mut got, &s1);
            prop_assert_eq!(&got, &want, "or_into words on {}", path.name());
            prop_assert_eq!(got_sat, want_sat, "or_into saturation on {}", path.name());

            // The roaring-container wrappers.
            let mut want = vec![0u64; n];
            simd::and_words(KernelPath::Scalar, &mut want, &s1, &s2);
            let mut got = vec![0u64; n];
            simd::and_words(path, &mut got, &s1, &s2);
            prop_assert_eq!(&got, &want, "and_words on {}", path.name());

            let mut want = vec![0u64; n];
            simd::andnot_words(KernelPath::Scalar, &mut want, &s1, &s2);
            let mut got = vec![0u64; n];
            simd::andnot_words(path, &mut got, &s1, &s2);
            prop_assert_eq!(&got, &want, "andnot_words on {}", path.name());

            for (name, op) in [
                ("and_assign", simd::and_assign as fn(KernelPath, &mut [u64], &[u64])),
                ("andnot_assign", simd::andnot_assign),
                ("or_assign", simd::or_assign),
            ] {
                let mut want = base.clone();
                op(KernelPath::Scalar, &mut want, &s1);
                let mut got = base.clone();
                op(path, &mut got, &s1);
                prop_assert_eq!(&got, &want, "{} on {}", name, path.name());
            }
        }
    }

    /// Constant all-zero / all-one operands in every combination: the
    /// vector tiers must report the exact same any/saturation verdicts
    /// the scalar loops do.
    #[test]
    fn saturated_operands_agree_on_every_tier(
        n in 1usize..200,
        a_kind in 0u8..3,
        b_kind in 0u8..3,
        neg1 in any::<bool>(),
        neg2 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let make = |kind: u8, salt: u64| -> Vec<u64> {
            match kind {
                0 => vec![0u64; n],
                1 => vec![u64::MAX; n],
                _ => random_words(n, seed ^ salt),
            }
        };
        let s1 = make(a_kind, 0xA5A5);
        let s2 = make(b_kind, 0x5A5A);

        for path in simd::available_paths() {
            let mut want = vec![0u64; n];
            let want_any = simd::fused_pass2(KernelPath::Scalar, &mut want, &s1, &s2, neg1, neg2);
            let mut got = vec![0u64; n];
            let got_any = simd::fused_pass2(path, &mut got, &s1, &s2, neg1, neg2);
            prop_assert_eq!(&got, &want, "fused_pass2 on {}", path.name());
            prop_assert_eq!(got_any, want_any, "fused_pass2 any on {}", path.name());

            let mut want = s1.clone();
            let want_sat = simd::or_into(KernelPath::Scalar, &mut want, &s2);
            let mut got = s1.clone();
            let got_sat = simd::or_into(path, &mut got, &s2);
            prop_assert_eq!(got_sat, want_sat, "or_into saturation on {}", path.name());
        }
    }

    /// End-to-end dense DNF evaluation under a forced dispatch
    /// override: bit-identical results, invariant work counters, and
    /// the dispatch report names the forced tier.
    #[test]
    fn dense_dnf_eval_is_tier_invariant(
        seed in any::<u64>(),
        rows in 1usize..40_000,
        densities in prop::collection::vec(density_ppt(), 2..5),
        shape in prop::collection::vec(
            prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 1..6),
            1..4,
        ),
        with_summaries in any::<bool>(),
    ) {
        let slices: Vec<BitVec> = densities
            .iter()
            .enumerate()
            .map(|(i, &d)| random_bits(rows, d, seed ^ (i as u64).wrapping_mul(0x9E37_79B9)))
            .collect();
        let summaries = summarize_slices(&slices);
        let terms: Vec<Vec<Literal<'_>>> = shape
            .iter()
            .map(|term| {
                term.iter()
                    .map(|(idx, neg)| {
                        let i = idx.index(slices.len());
                        if with_summaries {
                            Literal::with_summary(&slices[i], *neg, &summaries[i])
                        } else {
                            Literal::new(&slices[i], *neg)
                        }
                    })
                    .collect()
            })
            .collect();

        let mut ref_stats = KernelStats::new();
        let reference = simd::with_forced_path(KernelPath::Scalar, || {
            eval_dnf(&terms, rows, &mut ref_stats)
        });
        prop_assert_eq!(ref_stats.kernel_path(), "scalar");

        for path in simd::available_paths() {
            let mut stats = KernelStats::new();
            let got = simd::with_forced_path(path, || eval_dnf(&terms, rows, &mut stats));
            prop_assert_eq!(&got, &reference, "dense DNF result on {}", path.name());
            prop_assert_eq!(
                work_counters(&stats),
                work_counters(&ref_stats),
                "work counters on {}",
                path.name()
            );
            prop_assert_eq!(stats.kernel_path(), path.name(), "dispatch report");
        }
    }

    /// End-to-end stored DNF evaluation: every tier × every container
    /// family (Dense, Roaring, WAH) matches the scalar/dense result,
    /// with tier-invariant work counters per family.
    #[test]
    fn stored_dnf_eval_is_tier_invariant_across_containers(
        seed in any::<u64>(),
        rows in 1usize..40_000,
        densities in prop::collection::vec(density_ppt(), 2..4),
        shape in prop::collection::vec(
            prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 1..6),
            1..3,
        ),
    ) {
        let dense: Vec<BitVec> = densities
            .iter()
            .enumerate()
            .map(|(i, &d)| random_bits(rows, d, seed ^ (i as u64).wrapping_mul(0x6C62_272E)))
            .collect();
        let summaries = summarize_slices(&dense);

        let mut reference: Option<BitVec> = None;
        for policy in [StoragePolicy::Dense, StoragePolicy::Roaring, StoragePolicy::Wah] {
            let family: Vec<SliceStorage> = dense
                .iter()
                .map(|b| SliceStorage::from_dense(b.clone(), policy))
                .collect();
            let terms: Vec<Vec<StoredLiteral<'_>>> = shape
                .iter()
                .map(|term| {
                    term.iter()
                        .map(|(idx, neg)| {
                            let i = idx.index(family.len());
                            StoredLiteral::with_summary(&family[i], *neg, &summaries[i])
                        })
                        .collect()
                })
                .collect();

            let mut ref_stats = KernelStats::new();
            let scalar = simd::with_forced_path(KernelPath::Scalar, || {
                eval_dnf_stored(&terms, rows, &mut ref_stats)
            });
            match &reference {
                None => reference = Some(scalar.clone()),
                Some(bits) => prop_assert_eq!(&scalar, bits, "{:?} != dense", policy),
            }

            for path in simd::available_paths() {
                let mut stats = KernelStats::new();
                let got = simd::with_forced_path(path, || {
                    eval_dnf_stored(&terms, rows, &mut stats)
                });
                prop_assert_eq!(
                    &got,
                    &scalar,
                    "stored DNF result for {:?} on {}",
                    policy,
                    path.name()
                );
                prop_assert_eq!(
                    work_counters(&stats),
                    work_counters(&ref_stats),
                    "work counters for {:?} on {}",
                    policy,
                    path.name()
                );
            }
        }
    }
}
