//! Multi-page byte segments.
//!
//! A *segment* is a contiguous run of pages holding one byte blob — the
//! unit in which bitmap vectors and mapping tables are persisted. Reading
//! a segment charges `ceil(len / page_size)` page reads against the
//! pager, which is exactly how the paper converts "bitmap vectors
//! accessed" into disk accesses.

use crate::error::StorageError;
use crate::pager::{PageId, Pager};

/// Handle to a stored segment: first page, page span and exact byte
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHandle {
    /// First page of the segment.
    pub first: PageId,
    /// Number of pages spanned.
    pub pages: u64,
    /// Exact blob length in bytes.
    pub len: usize,
}

impl SegmentHandle {
    /// Pages this segment spans — the per-access read cost.
    #[must_use]
    pub fn page_span(&self) -> u64 {
        self.pages
    }
}

/// Writes `blob` as a new segment, allocating pages as needed.
///
/// # Errors
///
/// Propagates pager write failures (cannot occur for freshly allocated
/// pages, but the signature stays honest).
pub fn write_segment(pager: &Pager, blob: &[u8]) -> Result<SegmentHandle, StorageError> {
    let span = pager.pages_for(blob.len());
    let first = pager.allocate(span.max(1));
    for (i, chunk) in blob.chunks(pager.page_size()).enumerate() {
        pager.write_page(PageId(first.0 + i as u64), chunk)?;
    }
    Ok(SegmentHandle {
        first,
        pages: span.max(1),
        len: blob.len(),
    })
}

/// Reads a segment back, charging one page read per spanned page.
///
/// # Errors
///
/// [`StorageError::PageOutOfRange`] if the handle points outside the
/// pager; [`StorageError::CorruptSegment`] if the handle's length exceeds
/// its page span.
pub fn read_segment(pager: &Pager, handle: &SegmentHandle) -> Result<Vec<u8>, StorageError> {
    if handle.len > (handle.pages as usize) * pager.page_size() {
        return Err(StorageError::CorruptSegment {
            detail: format!(
                "{} bytes cannot fit in {} pages of {}",
                handle.len,
                handle.pages,
                pager.page_size()
            ),
        });
    }
    let mut out = Vec::with_capacity(handle.len);
    for i in 0..handle.pages {
        let page = pager.read_page(PageId(handle.first.0 + i))?;
        let remaining = handle.len - out.len();
        out.extend_from_slice(&page[..remaining.min(page.len())]);
    }
    out.truncate(handle.len);
    Ok(out)
}

/// Reads a segment through a [`crate::buffer::BufferPool`], charging the
/// pager only on cache misses.
///
/// # Errors
///
/// Same failure modes as [`read_segment`].
pub fn read_segment_buffered(
    pool: &crate::buffer::BufferPool<'_>,
    page_size: usize,
    handle: &SegmentHandle,
) -> Result<Vec<u8>, StorageError> {
    if handle.len > (handle.pages as usize) * page_size {
        return Err(StorageError::CorruptSegment {
            detail: format!(
                "{} bytes cannot fit in {} pages of {page_size}",
                handle.len, handle.pages
            ),
        });
    }
    let mut out = Vec::with_capacity(handle.len);
    for i in 0..handle.pages {
        let page = pool.read_page(PageId(handle.first.0 + i))?;
        let remaining = handle.len - out.len();
        out.extend_from_slice(&page[..remaining.min(page.len())]);
    }
    out.truncate(handle.len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_read_matches_direct_and_caches() {
        use crate::buffer::BufferPool;
        let pager = Pager::with_page_size(16);
        let blob: Vec<u8> = (0..80u8).collect();
        let h = write_segment(&pager, &blob).unwrap();
        let pool = BufferPool::new(&pager, 8);
        assert_eq!(
            read_segment_buffered(&pool, pager.page_size(), &h).unwrap(),
            blob
        );
        pager.reset_stats();
        assert_eq!(
            read_segment_buffered(&pool, pager.page_size(), &h).unwrap(),
            blob
        );
        assert_eq!(pager.stats().page_reads, 0, "second read fully cached");
        // Corrupt handles are rejected without touching the pool.
        let bogus = SegmentHandle { len: 1000, ..h };
        assert!(read_segment_buffered(&pool, pager.page_size(), &bogus).is_err());
    }

    #[test]
    fn roundtrip_multi_page_blob() {
        let pager = Pager::with_page_size(16);
        let blob: Vec<u8> = (0..100u8).collect();
        let h = write_segment(&pager, &blob).unwrap();
        assert_eq!(h.pages, 7); // ceil(100/16)
        assert_eq!(read_segment(&pager, &h).unwrap(), blob);
    }

    #[test]
    fn read_charges_one_io_per_page() {
        let pager = Pager::with_page_size(16);
        let h = write_segment(&pager, &[1u8; 40]).unwrap();
        pager.reset_stats();
        let _ = read_segment(&pager, &h).unwrap();
        assert_eq!(pager.stats().page_reads, 3); // ceil(40/16)
    }

    #[test]
    fn empty_blob_still_occupies_one_page() {
        let pager = Pager::with_page_size(16);
        let h = write_segment(&pager, &[]).unwrap();
        assert_eq!(h.pages, 1);
        assert_eq!(h.len, 0);
        assert_eq!(read_segment(&pager, &h).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exact_page_multiple() {
        let pager = Pager::with_page_size(8);
        let blob = vec![7u8; 24];
        let h = write_segment(&pager, &blob).unwrap();
        assert_eq!(h.pages, 3);
        assert_eq!(read_segment(&pager, &h).unwrap(), blob);
    }

    #[test]
    fn corrupt_handle_detected() {
        let pager = Pager::with_page_size(8);
        let h = write_segment(&pager, &[0u8; 8]).unwrap();
        let bogus = SegmentHandle { len: 100, ..h };
        assert!(matches!(
            read_segment(&pager, &bogus),
            Err(StorageError::CorruptSegment { .. })
        ));
    }

    #[test]
    fn segments_are_independent() {
        let pager = Pager::with_page_size(8);
        let a = write_segment(&pager, b"aaaaaaaaaa").unwrap();
        let b = write_segment(&pager, b"bbbb").unwrap();
        assert_eq!(read_segment(&pager, &a).unwrap(), b"aaaaaaaaaa");
        assert_eq!(read_segment(&pager, &b).unwrap(), b"bbbb");
    }
}
