//! Simulated page-based storage substrate.
//!
//! Wu & Buchmann's performance analysis is carried out in units of disk
//! accesses: "comparing with the disk access costs, it is reasonable to
//! ignore the CPU time needed for performing logical operations"
//! (footnote 4). This crate supplies that substrate:
//!
//! * [`pager::Pager`] — an in-memory page store with a configurable page
//!   size and **read/write counters**, so every index can report its cost
//!   in the same unit the paper uses;
//! * [`segment`] — length-prefixed byte blobs spanning pages (bitmap
//!   vectors, B-tree nodes, mapping tables are all stored this way);
//! * [`table`] — row-id addressed column tables with NULL and deletion
//!   tracking, the physical home of fact/dimension data;
//! * [`catalog::Catalog`] — name → table registry;
//! * [`buffer::BufferPool`] — a bounded LRU page cache with hit/miss
//!   accounting, for working-set experiments.
//!
//! The paper used an analytical model rather than a real disk; this pager
//! preserves the observable quantity (pages touched) while keeping
//! everything deterministic and laptop-scale. See `DESIGN.md` §2.

pub mod buffer;
pub mod catalog;
pub mod error;
pub mod pager;
pub mod segment;
pub mod table;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::Catalog;
pub use error::StorageError;
pub use pager::{IoStats, PageId, Pager, DEFAULT_PAGE_SIZE};
pub use segment::SegmentHandle;
pub use table::{Cell, Column, Table};
