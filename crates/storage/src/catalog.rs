//! Name → table registry.

use crate::error::StorageError;
use crate::table::Table;
use std::collections::BTreeMap;

/// A flat catalog of tables, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name.
    ///
    /// # Errors
    ///
    /// [`StorageError::Catalog`] if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<(), StorageError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::Catalog {
                detail: format!("table {name:?} already registered"),
            });
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Looks up a table.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable lookup (for appends/deletes).
    #[must_use]
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Removes a table, returning it.
    ///
    /// # Errors
    ///
    /// [`StorageError::Catalog`] if the table does not exist.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, StorageError> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::Catalog {
                detail: format!("no table {name:?}"),
            })
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    #[test]
    fn register_lookup_drop_cycle() {
        let mut cat = Catalog::new();
        cat.register(Table::new("facts", &["a"])).unwrap();
        cat.register(Table::new("dim", &["b"])).unwrap();
        assert_eq!(cat.table_names(), vec!["dim", "facts"]);
        assert!(cat.table("facts").is_some());
        assert!(cat.table("nope").is_none());
        let t = cat.drop_table("dim").unwrap();
        assert_eq!(t.name(), "dim");
        assert!(cat.drop_table("dim").is_err());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut cat = Catalog::new();
        cat.register(Table::new("t", &["a"])).unwrap();
        assert!(matches!(
            cat.register(Table::new("t", &["x"])),
            Err(StorageError::Catalog { .. })
        ));
    }

    #[test]
    fn mutation_through_catalog() {
        let mut cat = Catalog::new();
        cat.register(Table::new("t", &["a"])).unwrap();
        cat.table_mut("t")
            .unwrap()
            .append_row(&[Cell::Value(7)])
            .unwrap();
        assert_eq!(cat.table("t").unwrap().row_count(), 1);
        assert!(cat.table_mut("missing").is_none());
    }
}
