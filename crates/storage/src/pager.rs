//! In-memory pager with I/O accounting.

use crate::error::StorageError;
use parking_lot::Mutex;

/// Mirrors one pager event into the global metrics registry when the
/// observability subscriber is on. Off path: one relaxed atomic load.
#[inline]
fn publish(name: &'static str, n: u64) {
    if ebi_obs::enabled() {
        ebi_obs::metrics::global().counter(name, &[]).add(n);
    }
}

/// Default page size: 4 KiB, the `p = 4K` of the paper's §2.1 cost
/// analysis.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of one page inside a [`Pager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Cumulative I/O counters.
///
/// These are the observable quantities of the paper's cost model: query
/// cost is dominated by pages read, build cost by pages written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched via [`Pager::read_page`].
    pub page_reads: u64,
    /// Pages stored via [`Pager::write_page`].
    pub page_writes: u64,
    /// Pages ever allocated.
    pub pages_allocated: u64,
}

/// An in-memory page store with a fixed page size and read/write counters.
///
/// Counters use interior mutability so reads can be counted through
/// shared references, mirroring how a buffer manager observes traffic.
#[derive(Debug)]
// LINT_LOCK_ORDER: pages < stats  (registry copy: lint.toml [[lock_domain]] storage.pager; see DESIGN.md §12)
pub struct Pager {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
    stats: Mutex<IoStats>,
}

impl Pager {
    /// Creates a pager with the default 4 KiB page size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates a pager with a custom page size (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    #[must_use]
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Mutex::new(Vec::new()),
            stats: Mutex::new(IoStats::default()),
        }
    }

    /// The page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    /// Total bytes of allocated storage.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.pages.lock().len() * self.page_size
    }

    /// Allocates `n` zeroed pages, returning the id of the first.
    pub fn allocate(&self, n: u64) -> PageId {
        let mut pages = self.pages.lock();
        let first = pages.len() as u64;
        for _ in 0..n {
            pages.push(vec![0u8; self.page_size].into_boxed_slice());
        }
        self.stats.lock().pages_allocated += n;
        publish("ebi_pager_pages_allocated_total", n);
        PageId(first)
    }

    /// Writes `data` into page `id` starting at offset 0. Shorter payloads
    /// leave the page's tail untouched.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfRange`] for unallocated ids,
    /// [`StorageError::PayloadTooLarge`] if `data` exceeds the page size.
    pub fn write_page(&self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() > self.page_size {
            return Err(StorageError::PayloadTooLarge {
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let mut pages = self.pages.lock();
        let allocated = pages.len() as u64;
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: id.0,
                allocated,
            })?;
        page[..data.len()].copy_from_slice(data);
        self.stats.lock().page_writes += 1;
        publish("ebi_pager_page_writes_total", 1);
        Ok(())
    }

    /// Reads page `id`, counting one page read.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfRange`] for unallocated ids.
    pub fn read_page(&self, id: PageId) -> Result<Vec<u8>, StorageError> {
        let pages = self.pages.lock();
        let page = pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: id.0,
                allocated: pages.len() as u64,
            })?;
        self.stats.lock().page_reads += 1;
        publish("ebi_pager_page_reads_total", 1);
        Ok(page.to_vec())
    }

    /// Snapshot of the I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        *self.stats.lock()
    }

    /// Resets the I/O counters (allocation count included).
    pub fn reset_stats(&self) {
        *self.stats.lock() = IoStats::default();
    }

    /// Pages needed to store `bytes` bytes at this page size.
    #[must_use]
    pub fn pages_for(&self, bytes: usize) -> u64 {
        (bytes.div_ceil(self.page_size)) as u64
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let pager = Pager::with_page_size(64);
        let first = pager.allocate(3);
        assert_eq!(first, PageId(0));
        assert_eq!(pager.page_count(), 3);
        pager.write_page(PageId(1), b"hello").unwrap();
        let back = pager.read_page(PageId(1)).unwrap();
        assert_eq!(&back[..5], b"hello");
        assert_eq!(back.len(), 64);
        // Unwritten page reads back zeroed.
        assert!(pager.read_page(PageId(2)).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn io_stats_count_operations() {
        let pager = Pager::with_page_size(32);
        pager.allocate(2);
        pager.write_page(PageId(0), b"x").unwrap();
        pager.write_page(PageId(1), b"y").unwrap();
        let _ = pager.read_page(PageId(0)).unwrap();
        let s = pager.stats();
        assert_eq!(s.pages_allocated, 2);
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.page_reads, 1);
        pager.reset_stats();
        assert_eq!(pager.stats(), IoStats::default());
    }

    #[test]
    fn out_of_range_access_fails() {
        let pager = Pager::with_page_size(32);
        assert!(matches!(
            pager.read_page(PageId(0)),
            Err(StorageError::PageOutOfRange { .. })
        ));
        pager.allocate(1);
        assert!(pager.write_page(PageId(5), b"z").is_err());
    }

    #[test]
    fn oversized_payload_rejected() {
        let pager = Pager::with_page_size(4);
        pager.allocate(1);
        assert!(matches!(
            pager.write_page(PageId(0), b"12345"),
            Err(StorageError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn pages_for_rounds_up() {
        let pager = Pager::with_page_size(100);
        assert_eq!(pager.pages_for(0), 0);
        assert_eq!(pager.pages_for(1), 1);
        assert_eq!(pager.pages_for(100), 1);
        assert_eq!(pager.pages_for(101), 2);
    }

    #[test]
    fn allocation_is_contiguous() {
        let pager = Pager::with_page_size(16);
        let a = pager.allocate(2);
        let b = pager.allocate(1);
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(2));
        assert_eq!(pager.storage_bytes(), 48);
    }
}
