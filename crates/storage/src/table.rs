//! Row-id addressed column tables.
//!
//! Bitmap indexes address tuples by their *position* in the table, so the
//! table keeps rows in append order and never compacts: deleted rows stay
//! as tombstones (the paper's "non-existing (or deleted), void tuples"),
//! and NULL attribute values are first-class. Both conditions feed the
//! index layer's `NotExist` / `NULL` encoding (Theorem 2.1).

use crate::error::StorageError;
use std::collections::BTreeMap;

/// One attribute value: either a dictionary-encoded value id or NULL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cell {
    /// A concrete value (dictionary id, category ordinal, …).
    Value(u64),
    /// SQL NULL / missing information.
    Null,
}

impl Cell {
    /// The contained value, or `None` for NULL.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        match self {
            Self::Value(v) => Some(*v),
            Self::Null => None,
        }
    }

    /// `true` for [`Cell::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Self::Value(v)
    }
}

/// One column of a table, in row order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    cells: Vec<Cell>,
}

impl Column {
    /// Empty column.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a column from cells.
    #[must_use]
    pub fn from_cells(cells: Vec<Cell>) -> Self {
        Self { cells }
    }

    /// Builds a column of non-NULL values.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        Self {
            cells: values.into_iter().map(Cell::Value).collect(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell at `row`, if in range.
    #[must_use]
    pub fn get(&self, row: usize) -> Option<Cell> {
        self.cells.get(row).copied()
    }

    /// All cells in row order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Overwrites the cell at `row`.
    ///
    /// # Errors
    ///
    /// [`StorageError::RowOutOfRange`] when `row` is out of range.
    pub fn set(&mut self, row: usize, cell: Cell) -> Result<(), StorageError> {
        let rows = self.cells.len();
        let slot = self
            .cells
            .get_mut(row)
            .ok_or(StorageError::RowOutOfRange { row, rows })?;
        *slot = cell;
        Ok(())
    }

    /// Distinct non-NULL values, sorted — the *active domain* whose size
    /// is the paper's attribute cardinality `|A| = m`.
    #[must_use]
    pub fn distinct_values(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.cells.iter().filter_map(Cell::value).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// An append-only table of named columns with tombstone deletion.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: BTreeMap<String, Column>,
    column_order: Vec<String>,
    deleted: Vec<bool>,
    rows: usize,
}

impl Table {
    /// Creates an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        let mut map = BTreeMap::new();
        for &c in columns {
            let prev = map.insert(c.to_string(), Column::new());
            assert!(prev.is_none(), "duplicate column {c:?}");
        }
        Self {
            name: name.to_string(),
            columns: map,
            column_order: columns.iter().map(|s| (*s).to_string()).collect(),
            deleted: Vec::new(),
            rows: 0,
        }
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names in declaration order.
    #[must_use]
    pub fn column_names(&self) -> &[String] {
        &self.column_order
    }

    /// Total rows, including tombstoned ones (bitmap indexes address by
    /// physical position).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Rows that are not tombstoned.
    #[must_use]
    pub fn live_row_count(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// A column by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.get(name)
    }

    /// Appends one row; cells are matched to columns by declaration order.
    ///
    /// # Errors
    ///
    /// [`StorageError::Schema`] on arity mismatch.
    pub fn append_row(&mut self, cells: &[Cell]) -> Result<usize, StorageError> {
        if cells.len() != self.column_order.len() {
            return Err(StorageError::Schema {
                detail: format!(
                    "row with {} cells for table {:?} with {} columns",
                    cells.len(),
                    self.name,
                    self.column_order.len()
                ),
            });
        }
        for (name, &cell) in self.column_order.iter().zip(cells) {
            self.columns
                .get_mut(name)
                .expect("column registered")
                .push(cell);
        }
        self.deleted.push(false);
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// Tombstones row `row`; its slot remains addressable.
    ///
    /// # Errors
    ///
    /// [`StorageError::RowOutOfRange`] when `row` is out of range.
    pub fn delete_row(&mut self, row: usize) -> Result<(), StorageError> {
        let rows = self.rows;
        let slot = self
            .deleted
            .get_mut(row)
            .ok_or(StorageError::RowOutOfRange { row, rows })?;
        *slot = true;
        Ok(())
    }

    /// `true` if the row exists and is tombstoned.
    #[must_use]
    pub fn is_deleted(&self, row: usize) -> bool {
        self.deleted.get(row).copied().unwrap_or(false)
    }

    /// The cell at (`row`, `column`).
    ///
    /// # Errors
    ///
    /// [`StorageError::Schema`] for unknown columns,
    /// [`StorageError::RowOutOfRange`] for bad rows.
    pub fn cell(&self, row: usize, column: &str) -> Result<Cell, StorageError> {
        let col = self
            .columns
            .get(column)
            .ok_or_else(|| StorageError::Schema {
                detail: format!("no column {column:?} in table {:?}", self.name),
            })?;
        col.get(row).ok_or(StorageError::RowOutOfRange {
            row,
            rows: self.rows,
        })
    }

    /// Full scan of one column: yields `(row_id, cell, deleted)`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is unknown.
    pub fn scan<'a>(&'a self, column: &str) -> impl Iterator<Item = (usize, Cell, bool)> + 'a {
        let col = self
            .columns
            .get(column)
            .unwrap_or_else(|| panic!("no column {column:?} in table {:?}", self.name));
        col.cells()
            .iter()
            .enumerate()
            .map(move |(row, &cell)| (row, cell, self.deleted[row]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        let mut t = Table::new("sales", &["product", "region"]);
        t.append_row(&[Cell::Value(1), Cell::Value(10)]).unwrap();
        t.append_row(&[Cell::Value(2), Cell::Null]).unwrap();
        t.append_row(&[Cell::Value(1), Cell::Value(11)]).unwrap();
        t
    }

    #[test]
    fn append_and_read_back() {
        let t = two_col_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.cell(0, "product").unwrap(), Cell::Value(1));
        assert_eq!(t.cell(1, "region").unwrap(), Cell::Null);
        assert_eq!(t.column_names(), &["product", "region"]);
        assert_eq!(t.name(), "sales");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        assert!(matches!(
            t.append_row(&[Cell::Value(1)]),
            Err(StorageError::Schema { .. })
        ));
    }

    #[test]
    fn deletion_is_a_tombstone_not_compaction() {
        let mut t = two_col_table();
        t.delete_row(1).unwrap();
        assert_eq!(t.row_count(), 3, "physical row ids stay stable");
        assert_eq!(t.live_row_count(), 2);
        assert!(t.is_deleted(1));
        assert!(!t.is_deleted(0));
        // The cell is still addressable (void tuples keep their slot).
        assert_eq!(t.cell(1, "product").unwrap(), Cell::Value(2));
        assert!(t.delete_row(9).is_err());
    }

    #[test]
    fn scan_reports_deletion_flags() {
        let mut t = two_col_table();
        t.delete_row(2).unwrap();
        let scanned: Vec<(usize, Cell, bool)> = t.scan("product").collect();
        assert_eq!(
            scanned,
            vec![
                (0, Cell::Value(1), false),
                (1, Cell::Value(2), false),
                (2, Cell::Value(1), true),
            ]
        );
    }

    #[test]
    fn distinct_values_skip_nulls() {
        let t = two_col_table();
        assert_eq!(t.column("product").unwrap().distinct_values(), vec![1, 2]);
        assert_eq!(t.column("region").unwrap().distinct_values(), vec![10, 11]);
    }

    #[test]
    fn unknown_column_is_a_schema_error() {
        let t = two_col_table();
        assert!(matches!(
            t.cell(0, "nope"),
            Err(StorageError::Schema { .. })
        ));
    }

    #[test]
    fn column_set_and_bounds() {
        let mut c = Column::from_values([5, 6]);
        c.set(0, Cell::Null).unwrap();
        assert!(c.get(0).unwrap().is_null());
        assert!(c.set(2, Cell::Value(1)).is_err());
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(Cell::from(9u64), Cell::Value(9));
        assert_eq!(Cell::Value(9).value(), Some(9));
        assert_eq!(Cell::Null.value(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = Table::new("t", &["a", "a"]);
    }
}
