//! Storage error type.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id outside the allocated range was referenced.
    PageOutOfRange {
        /// The offending page id.
        page: u64,
        /// Number of pages currently allocated.
        allocated: u64,
    },
    /// A write did not fit in one page.
    PayloadTooLarge {
        /// Bytes attempted.
        len: usize,
        /// Page capacity.
        page_size: usize,
    },
    /// A segment's stored length is inconsistent with its page span.
    CorruptSegment {
        /// Description of the inconsistency.
        detail: String,
    },
    /// A named table already exists / does not exist.
    Catalog {
        /// Description of the catalog violation.
        detail: String,
    },
    /// A row id outside the table was referenced.
    RowOutOfRange {
        /// The offending row id.
        row: usize,
        /// Number of rows in the table.
        rows: usize,
    },
    /// Column shape violation (unknown column, arity mismatch, …).
    Schema {
        /// Description of the schema violation.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PageOutOfRange { page, allocated } => {
                write!(f, "page {page} out of range ({allocated} allocated)")
            }
            Self::PayloadTooLarge { len, page_size } => {
                write!(f, "payload of {len} bytes exceeds page size {page_size}")
            }
            Self::CorruptSegment { detail } => write!(f, "corrupt segment: {detail}"),
            Self::Catalog { detail } => write!(f, "catalog error: {detail}"),
            Self::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range ({rows} rows)")
            }
            Self::Schema { detail } => write!(f, "schema error: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::PageOutOfRange {
            page: 9,
            allocated: 3
        }
        .to_string()
        .contains("page 9"));
        assert!(StorageError::PayloadTooLarge {
            len: 10,
            page_size: 4
        }
        .to_string()
        .contains("exceeds"));
        assert!(StorageError::RowOutOfRange { row: 5, rows: 2 }
            .to_string()
            .contains("row 5"));
    }
}
