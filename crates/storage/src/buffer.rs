//! An LRU buffer pool over the pager.
//!
//! The paper's cost unit is *disk* accesses; a real system shields the
//! disk with a buffer manager. [`BufferPool`] caches a bounded number of
//! pages with LRU eviction and counts hits and misses, so experiments
//! can show how the encoded index's smaller working set (`log m`
//! vectors instead of `m`) turns into cache hits once the pool is
//! smaller than the simple index's footprint.

use crate::error::StorageError;
use crate::pager::{PageId, Pager};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Mirrors one buffer-pool event into the global metrics registry when
/// the observability subscriber is on. Off path: one relaxed load.
#[inline]
fn publish(name: &'static str) {
    if ebi_obs::enabled() {
        ebi_obs::metrics::global().counter(name, &[]).inc();
    }
}

/// Hit/miss counters for a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Reads served from the pool.
    pub hits: u64,
    /// Reads that went to the pager.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was read.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct PoolInner {
    /// page → (contents, last-use tick).
    cached: HashMap<u64, (Vec<u8>, u64)>,
    tick: u64,
    stats: BufferStats,
}

/// A bounded LRU page cache in front of a [`Pager`].
///
/// ```
/// use ebi_storage::{BufferPool, PageId, Pager};
///
/// let pager = Pager::with_page_size(64);
/// pager.allocate(2);
/// let pool = BufferPool::new(&pager, 2);
/// pool.read_page(PageId(0)).unwrap(); // miss
/// pool.read_page(PageId(0)).unwrap(); // hit
/// assert_eq!(pool.stats().hits, 1);
/// assert_eq!(pager.stats().page_reads, 1, "disk touched once");
/// ```
pub struct BufferPool<'a> {
    pager: &'a Pager,
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl<'a> BufferPool<'a> {
    /// Creates a pool caching at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(pager: &'a Pager, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            pager,
            capacity,
            inner: Mutex::new(PoolInner {
                cached: HashMap::with_capacity(capacity),
                tick: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Number of frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reads a page through the pool.
    ///
    /// # Errors
    ///
    /// Propagates pager errors on a miss.
    pub fn read_page(&self, id: PageId) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((data, last)) = inner.cached.get_mut(&id.0) {
            *last = tick;
            let out = data.clone();
            inner.stats.hits += 1;
            drop(inner);
            publish("ebi_buffer_hits_total");
            return Ok(out);
        }
        drop(inner); // do not hold the lock across the pager read
        let data = self.pager.read_page(id)?;
        publish("ebi_buffer_misses_total");
        let mut inner = self.inner.lock();
        inner.stats.misses += 1;
        if inner.cached.len() >= self.capacity {
            // Evict the least recently used frame.
            if let Some((&victim, _)) = inner.cached.iter().min_by_key(|(_, (_, last))| *last) {
                inner.cached.remove(&victim);
                inner.stats.evictions += 1;
                publish("ebi_buffer_evictions_total");
            }
        }
        let tick = inner.tick;
        inner.cached.insert(id.0, (data.clone(), tick));
        Ok(data)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Resets counters (cached pages stay resident).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    /// Drops every cached page.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.cached.clear();
    }

    /// Pages currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.inner.lock().cached.len()
    }
}

impl std::fmt::Debug for BufferPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager_with_pages(n: u64) -> Pager {
        let pager = Pager::with_page_size(16);
        pager.allocate(n);
        for i in 0..n {
            pager.write_page(PageId(i), &[i as u8; 16]).unwrap();
        }
        pager
    }

    #[test]
    fn hits_after_first_read() {
        let pager = pager_with_pages(4);
        let pool = BufferPool::new(&pager, 4);
        let a1 = pool.read_page(PageId(1)).unwrap();
        let a2 = pool.read_page(PageId(1)).unwrap();
        assert_eq!(a1, a2);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let pager = pager_with_pages(3);
        let pool = BufferPool::new(&pager, 2);
        pool.read_page(PageId(0)).unwrap(); // miss
        pool.read_page(PageId(1)).unwrap(); // miss
        pool.read_page(PageId(0)).unwrap(); // hit → 0 is warm
        pool.read_page(PageId(2)).unwrap(); // miss, evicts 1
        pool.read_page(PageId(0)).unwrap(); // still cached → hit
        pool.read_page(PageId(1)).unwrap(); // evicted → miss
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
        assert!(s.evictions >= 2);
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn working_set_within_capacity_reaches_full_hits() {
        let pager = pager_with_pages(8);
        let pool = BufferPool::new(&pager, 4);
        // Touch pages 0..4 repeatedly: after the cold pass, all hits.
        for _ in 0..10 {
            for p in 0..4u64 {
                pool.read_page(PageId(p)).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4, "only the cold pass misses");
        assert_eq!(s.hits, 36);
    }

    #[test]
    fn pager_only_sees_misses() {
        let pager = pager_with_pages(2);
        pager.reset_stats();
        let pool = BufferPool::new(&pager, 2);
        for _ in 0..5 {
            pool.read_page(PageId(0)).unwrap();
        }
        assert_eq!(pager.stats().page_reads, 1, "disk touched once");
    }

    #[test]
    fn clear_and_reset() {
        let pager = pager_with_pages(2);
        let pool = BufferPool::new(&pager, 2);
        pool.read_page(PageId(0)).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), BufferStats::default());
        assert_eq!(pool.capacity(), 2);
        // After clear, reading misses again.
        pool.read_page(PageId(0)).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn missing_page_error_propagates() {
        let pager = Pager::with_page_size(16);
        let pool = BufferPool::new(&pager, 1);
        assert!(pool.read_page(PageId(9)).is_err());
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn global_metrics_mirror_traffic_when_enabled() {
        let reg = ebi_obs::metrics::global();
        let hits0 = reg.counter("ebi_buffer_hits_total", &[]).get();
        let miss0 = reg.counter("ebi_buffer_misses_total", &[]).get();
        let reads0 = reg.counter("ebi_pager_page_reads_total", &[]).get();

        let pager = pager_with_pages(2);
        let pool = BufferPool::new(&pager, 2);
        // Disabled: the registry must not move for these reads.
        ebi_obs::set_enabled(false);
        pool.read_page(PageId(0)).unwrap();
        assert_eq!(reg.counter("ebi_buffer_misses_total", &[]).get(), miss0);

        ebi_obs::set_enabled(true);
        pool.read_page(PageId(0)).unwrap(); // hit
        pool.read_page(PageId(1)).unwrap(); // miss → pager read
        ebi_obs::set_enabled(false);

        // Deltas are >= because parallel tests may also publish.
        assert!(reg.counter("ebi_buffer_hits_total", &[]).get() > hits0);
        assert!(reg.counter("ebi_buffer_misses_total", &[]).get() > miss0);
        assert!(reg.counter("ebi_pager_page_reads_total", &[]).get() > reads0);
    }
}
